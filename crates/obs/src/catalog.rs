//! The declared metrics catalog: every metric name the workspace may
//! emit, with its kind and meaning.
//!
//! This module is the single source of truth for the `/metrics` surface.
//! `cargo xtask lint` (rule **metrics-catalog**) statically extracts
//! every metric-name literal passed to a registry call workspace-wide
//! and checks it against [`CATALOG`]: an undeclared name (typo, drift),
//! a kind mismatch, overlapping declarations, or a declaration nothing
//! emits all fail the gate. Keep this list sorted by name.
//!
//! Name grammar: dotted lowercase segments; a `*` segment stands for
//! exactly one dynamic segment (e.g. `server.requests.*` covers
//! `server.requests.ql`, `server.requests.rank`, …).

/// What a declared metric counts or measures.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum MetricKind {
    /// Monotonic event count (`inc` / `add` / `counter`).
    Counter,
    /// Point-in-time level (`gauge`).
    Gauge,
    /// Value distribution, typically latency in ns (`histogram` / `span`).
    Histogram,
}

/// One declared metric.
#[derive(Debug, Clone, Copy)]
pub struct MetricDecl {
    /// Dotted name; `*` segments are dynamic (exactly one segment each).
    pub name: &'static str,
    pub kind: MetricKind,
    /// One-line meaning, for dashboards and code review.
    pub help: &'static str,
}

impl MetricDecl {
    /// True when `name` (a concrete emitted name) falls under this
    /// declaration: equal segment count, literal segments equal, `*`
    /// segments match anything.
    pub fn matches(&self, name: &str) -> bool {
        let mut decl = self.name.split('.');
        let mut given = name.split('.');
        loop {
            match (decl.next(), given.next()) {
                (None, None) => return true,
                (Some(d), Some(g)) => {
                    if d != "*" && d != g {
                        return false;
                    }
                }
                _ => return false,
            }
        }
    }
}

/// Looks up the declaration covering a concrete metric name.
pub fn find(name: &str) -> Option<&'static MetricDecl> {
    CATALOG.iter().find(|d| d.matches(name))
}

/// Every metric the workspace emits. Sorted by name.
pub const CATALOG: &[MetricDecl] = &[
    MetricDecl {
        name: "core.align.calls",
        kind: MetricKind::Counter,
        help: "ontology alignment runs",
    },
    MetricDecl {
        name: "core.align.candidates",
        kind: MetricKind::Counter,
        help: "alignment candidate pairs generated (and scored)",
    },
    MetricDecl {
        name: "core.align.latency",
        kind: MetricKind::Histogram,
        help: "alignment wall time (ns)",
    },
    MetricDecl {
        name: "core.align.matches",
        kind: MetricKind::Counter,
        help: "alignment correspondences proposed",
    },
    MetricDecl {
        name: "core.align.proposals",
        kind: MetricKind::Counter,
        help: "alignment matching-phase pair inspections",
    },
    MetricDecl {
        name: "core.build.latency",
        kind: MetricKind::Histogram,
        help: "ontology build/ingest wall time (ns)",
    },
    MetricDecl {
        name: "core.cache.evictions",
        kind: MetricKind::Counter,
        help: "similarity-cache entries evicted",
    },
    MetricDecl {
        name: "core.cache.hits",
        kind: MetricKind::Counter,
        help: "similarity-cache hits",
    },
    MetricDecl {
        name: "core.cache.misses",
        kind: MetricKind::Counter,
        help: "similarity-cache misses",
    },
    MetricDecl {
        name: "core.cluster.calls",
        kind: MetricKind::Counter,
        help: "concept clustering runs",
    },
    MetricDecl {
        name: "core.cluster.latency",
        kind: MetricKind::Histogram,
        help: "clustering wall time (ns)",
    },
    MetricDecl {
        name: "core.matrix.calls.*",
        kind: MetricKind::Counter,
        help: "similarity-matrix runs, per measure",
    },
    MetricDecl {
        name: "core.matrix.latency.*",
        kind: MetricKind::Histogram,
        help: "similarity-matrix wall time per measure (ns)",
    },
    MetricDecl {
        name: "core.matrix.pairs",
        kind: MetricKind::Counter,
        help: "concept pairs scored in matrix runs",
    },
    MetricDecl {
        name: "core.pair.calls.*",
        kind: MetricKind::Counter,
        help: "pairwise similarity calls, per measure",
    },
    MetricDecl {
        name: "core.pair.latency.*",
        kind: MetricKind::Histogram,
        help: "pairwise similarity wall time per measure (ns)",
    },
    MetricDecl {
        name: "core.prepare.concepts",
        kind: MetricKind::Counter,
        help: "concepts captured in prepared contexts",
    },
    MetricDecl {
        name: "core.prepare.latency",
        kind: MetricKind::Histogram,
        help: "prepared-context construction wall time (ns)",
    },
    MetricDecl {
        name: "core.rank.calls.*",
        kind: MetricKind::Counter,
        help: "rank-query runs, per measure",
    },
    MetricDecl {
        name: "core.rank.latency.*",
        kind: MetricKind::Histogram,
        help: "rank-query wall time per measure (ns)",
    },
    MetricDecl {
        name: "core.sched.imbalance",
        kind: MetricKind::Gauge,
        help: "last scheduler run's max/mean worker busy time (permille)",
    },
    MetricDecl {
        name: "core.sched.steals",
        kind: MetricKind::Counter,
        help: "successful work-stealing deque steals",
    },
    MetricDecl {
        name: "core.sched.tiles",
        kind: MetricKind::Counter,
        help: "tiles executed by the work-stealing scheduler",
    },
    MetricDecl {
        name: "core.vector.approx.latency",
        kind: MetricKind::Histogram,
        help: "approximate (graph) vector rank wall time (ns)",
    },
    MetricDecl {
        name: "core.vector.approx.queries",
        kind: MetricKind::Counter,
        help: "approximate (graph) vector rank queries",
    },
    MetricDecl {
        name: "core.vector.build.latency",
        kind: MetricKind::Histogram,
        help: "embedding + proximity-graph build wall time (ns)",
    },
    MetricDecl {
        name: "core.vector.concepts",
        kind: MetricKind::Counter,
        help: "concepts embedded into the vector store",
    },
    MetricDecl {
        name: "core.vector.exact.latency",
        kind: MetricKind::Histogram,
        help: "exact vector-store rank wall time (ns)",
    },
    MetricDecl {
        name: "core.vector.exact.queries",
        kind: MetricKind::Counter,
        help: "exact vector-store rank queries",
    },
    MetricDecl {
        name: "core.vector.probed",
        kind: MetricKind::Counter,
        help: "candidate rows scanned by approximate vector queries",
    },
    MetricDecl {
        name: "index.docs",
        kind: MetricKind::Counter,
        help: "documents added to the token index",
    },
    MetricDecl {
        name: "index.search.calls",
        kind: MetricKind::Counter,
        help: "index searches",
    },
    MetricDecl {
        name: "index.search.latency",
        kind: MetricKind::Histogram,
        help: "index search wall time (ns)",
    },
    MetricDecl {
        name: "index.terms",
        kind: MetricKind::Counter,
        help: "distinct terms in the index",
    },
    MetricDecl {
        name: "index.tokens",
        kind: MetricKind::Counter,
        help: "tokens ingested by the index",
    },
    MetricDecl {
        name: "rdf.rdfxml.bytes",
        kind: MetricKind::Counter,
        help: "RDF/XML bytes parsed",
    },
    MetricDecl {
        name: "rdf.rdfxml.documents",
        kind: MetricKind::Counter,
        help: "RDF/XML documents parsed",
    },
    MetricDecl {
        name: "rdf.rdfxml.limit.*",
        kind: MetricKind::Counter,
        help: "RDF/XML parses rejected, per limit kind",
    },
    MetricDecl {
        name: "rdf.rdfxml.parse.latency",
        kind: MetricKind::Histogram,
        help: "RDF/XML parse wall time (ns)",
    },
    MetricDecl {
        name: "rdf.rdfxml.triples",
        kind: MetricKind::Counter,
        help: "triples produced by the RDF/XML parser",
    },
    MetricDecl {
        name: "rdf.turtle.bytes",
        kind: MetricKind::Counter,
        help: "Turtle bytes parsed",
    },
    MetricDecl {
        name: "rdf.turtle.documents",
        kind: MetricKind::Counter,
        help: "Turtle documents parsed",
    },
    MetricDecl {
        name: "rdf.turtle.limit.*",
        kind: MetricKind::Counter,
        help: "Turtle parses rejected, per limit kind",
    },
    MetricDecl {
        name: "rdf.turtle.parse.latency",
        kind: MetricKind::Histogram,
        help: "Turtle parse wall time (ns)",
    },
    MetricDecl {
        name: "rdf.turtle.triples",
        kind: MetricKind::Counter,
        help: "triples produced by the Turtle parser",
    },
    MetricDecl {
        name: "server.accepted",
        kind: MetricKind::Counter,
        help: "TCP connections accepted",
    },
    MetricDecl {
        name: "server.align.correspondences",
        kind: MetricKind::Counter,
        help: "correspondences returned by /align",
    },
    MetricDecl {
        name: "server.align.mode.*",
        kind: MetricKind::Counter,
        help: "/align requests per matching mode (greedy|stable)",
    },
    MetricDecl {
        name: "server.deadline_hits",
        kind: MetricKind::Counter,
        help: "requests cut off at the per-request deadline",
    },
    MetricDecl {
        name: "server.http.write_failures",
        kind: MetricKind::Counter,
        help: "HTTP responses the peer never received (write error)",
    },
    MetricDecl {
        name: "server.latency.*",
        kind: MetricKind::Histogram,
        help: "request wall time per endpoint (ns)",
    },
    MetricDecl {
        name: "server.rank.approx.latency",
        kind: MetricKind::Histogram,
        help: "approximate /rank request wall time (ns)",
    },
    MetricDecl {
        name: "server.rank.approx.requests",
        kind: MetricKind::Counter,
        help: "/rank requests served by the approximate vector path",
    },
    MetricDecl {
        name: "server.requests.*",
        kind: MetricKind::Counter,
        help: "requests routed, per endpoint",
    },
    MetricDecl {
        name: "server.responses.2xx",
        kind: MetricKind::Counter,
        help: "successful responses",
    },
    MetricDecl {
        name: "server.responses.4xx",
        kind: MetricKind::Counter,
        help: "client-error responses",
    },
    MetricDecl {
        name: "server.responses.5xx",
        kind: MetricKind::Counter,
        help: "server-error responses",
    },
    MetricDecl {
        name: "server.shed",
        kind: MetricKind::Counter,
        help: "connections shed under overload",
    },
    MetricDecl {
        name: "server.tenant.corpora",
        kind: MetricKind::Gauge,
        help: "corpora registered in the tenancy registry",
    },
    MetricDecl {
        name: "server.tenant.default",
        kind: MetricKind::Counter,
        help: "requests served by the default corpus",
    },
    MetricDecl {
        name: "server.tenant.named",
        kind: MetricKind::Counter,
        help: "requests routed to a named corpus",
    },
    MetricDecl {
        name: "server.tenant.swaps",
        kind: MetricKind::Counter,
        help: "hot swaps of a live corpus name",
    },
    MetricDecl {
        name: "server.tenant.unknown",
        kind: MetricKind::Counter,
        help: "corpus selectors naming no registered corpus (404)",
    },
    MetricDecl {
        name: "sexpr.bytes",
        kind: MetricKind::Counter,
        help: "s-expression bytes parsed",
    },
    MetricDecl {
        name: "sexpr.documents",
        kind: MetricKind::Counter,
        help: "s-expression documents parsed",
    },
    MetricDecl {
        name: "sexpr.forms",
        kind: MetricKind::Counter,
        help: "forms produced by the s-expression parser",
    },
    MetricDecl {
        name: "sexpr.limit.*",
        kind: MetricKind::Counter,
        help: "s-expression parses rejected, per limit kind",
    },
    MetricDecl {
        name: "sexpr.parse.latency",
        kind: MetricKind::Histogram,
        help: "s-expression parse wall time (ns)",
    },
    MetricDecl {
        name: "soqa.ql.errors",
        kind: MetricKind::Counter,
        help: "SOQA-QL queries that returned an error",
    },
    MetricDecl {
        name: "soqa.ql.eval.latency",
        kind: MetricKind::Histogram,
        help: "SOQA-QL evaluation wall time (ns)",
    },
    MetricDecl {
        name: "soqa.ql.limit.*",
        kind: MetricKind::Counter,
        help: "SOQA-QL evaluations rejected, per limit kind",
    },
    MetricDecl {
        name: "soqa.ql.parse.latency",
        kind: MetricKind::Histogram,
        help: "SOQA-QL parse wall time (ns)",
    },
    MetricDecl {
        name: "soqa.ql.queries",
        kind: MetricKind::Counter,
        help: "SOQA-QL queries evaluated",
    },
];

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn exact_names_resolve() {
        let decl = find("server.accepted").expect("declared");
        assert_eq!(decl.kind, MetricKind::Counter);
        assert!(find("server.acepted").is_none());
    }

    #[test]
    fn wildcard_covers_exactly_one_segment() {
        assert!(find("server.requests.ql").is_some());
        assert!(find("server.requests.a.b").is_none());
        assert!(find("server.requests").is_none());
        let latency = find("core.pair.latency.levenshtein").expect("declared");
        assert_eq!(latency.kind, MetricKind::Histogram);
    }

    #[test]
    fn catalog_is_sorted_and_collision_free() {
        for pair in CATALOG.windows(2) {
            if let [a, b] = pair {
                assert!(a.name < b.name, "{} !< {}", a.name, b.name);
                // Same-length patterns whose segments all unify would let
                // one emission match two declarations.
                let collide = a.name.split('.').count() == b.name.split('.').count()
                    && a.name
                        .split('.')
                        .zip(b.name.split('.'))
                        .all(|(x, y)| x == "*" || y == "*" || x == y);
                assert!(!collide, "{} overlaps {}", a.name, b.name);
            }
        }
    }

    #[test]
    fn names_are_lowercase_dotted() {
        for decl in CATALOG {
            assert!(decl.name.contains('.'), "{}", decl.name);
            assert!(
                decl.name
                    .chars()
                    .all(|c| c.is_ascii_lowercase() || c.is_ascii_digit() || "._*".contains(c)),
                "{}",
                decl.name
            );
            assert!(!decl.help.is_empty(), "{}", decl.name);
        }
    }
}

//! Exposition: point-in-time snapshots rendered as sorted text (for the
//! browser's `stats` pane) or JSON (for `SstToolkit::metrics_report()` and
//! the bench exports). JSON is emitted by hand — the crate stays
//! dependency-free — and every number uses `f64`'s `Display`, which never
//! produces exponent notation, so the output is valid JSON.

use crate::histogram::Histogram;

/// Frozen state of one histogram.
#[derive(Debug, Clone, PartialEq)]
pub struct HistogramSnapshot {
    /// Ascending upper bounds in seconds (overflow bucket excluded).
    pub bounds: Vec<f64>,
    /// Per-bucket counts; one entry per bound plus the trailing overflow.
    pub bucket_counts: Vec<u64>,
    /// Total observations.
    pub count: u64,
    /// Sum of observed durations in seconds.
    pub sum_seconds: f64,
}

impl HistogramSnapshot {
    pub(crate) fn of(h: &Histogram) -> HistogramSnapshot {
        HistogramSnapshot {
            bounds: h.bounds().to_vec(),
            bucket_counts: h.bucket_counts(),
            count: h.count(),
            sum_seconds: h.sum_seconds(),
        }
    }

    /// Mean observed duration in seconds (0.0 when empty).
    pub fn mean_seconds(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.sum_seconds / self.count as f64
        }
    }

    /// Bucket-resolution quantile estimate in seconds: the upper bound of
    /// the bucket containing the `q`-quantile observation (`q` in [0, 1]).
    /// Overflow-bucket hits report the last finite bound; empty histograms
    /// report 0.
    pub fn quantile_seconds(&self, q: f64) -> f64 {
        if self.count == 0 {
            return 0.0;
        }
        let rank = (q.clamp(0.0, 1.0) * self.count as f64).ceil().max(1.0) as u64;
        let mut seen = 0u64;
        for (i, &c) in self.bucket_counts.iter().enumerate() {
            seen = seen.saturating_add(c);
            if seen >= rank {
                return self
                    .bounds
                    .get(i)
                    .or_else(|| self.bounds.last())
                    .copied()
                    .unwrap_or(0.0);
            }
        }
        self.bounds.last().copied().unwrap_or(0.0)
    }
}

/// A point-in-time copy of a whole registry, name-sorted.
#[derive(Debug, Clone, PartialEq)]
pub struct MetricsSnapshot {
    pub counters: Vec<(String, u64)>,
    pub gauges: Vec<(String, i64)>,
    pub histograms: Vec<(String, HistogramSnapshot)>,
}

impl MetricsSnapshot {
    /// The value of the counter named `name`, if registered.
    pub fn counter(&self, name: &str) -> Option<u64> {
        self.counters
            .iter()
            .find(|(n, _)| n == name)
            .map(|&(_, v)| v)
    }

    /// The value of the gauge named `name`, if registered.
    pub fn gauge(&self, name: &str) -> Option<i64> {
        self.gauges.iter().find(|(n, _)| n == name).map(|&(_, v)| v)
    }

    /// The snapshot of the histogram named `name`, if registered.
    pub fn histogram(&self, name: &str) -> Option<&HistogramSnapshot> {
        self.histograms
            .iter()
            .find(|(n, _)| n == name)
            .map(|(_, h)| h)
    }

    /// Human-readable exposition: one line per metric, sorted by name
    /// within each section. Histograms show count / mean / p50 / p99.
    pub fn render_text(&self) -> String {
        let mut out = String::new();
        if !self.counters.is_empty() {
            out.push_str("counters:\n");
            for (name, value) in &self.counters {
                out.push_str(&format!("  {name:<44} {value}\n"));
            }
        }
        if !self.gauges.is_empty() {
            out.push_str("gauges:\n");
            for (name, value) in &self.gauges {
                out.push_str(&format!("  {name:<44} {value}\n"));
            }
        }
        if !self.histograms.is_empty() {
            out.push_str("latency histograms (count · mean · p50 · p99):\n");
            for (name, h) in &self.histograms {
                out.push_str(&format!(
                    "  {name:<44} {:>8} · {} · {} · {}\n",
                    h.count,
                    humanize_seconds(h.mean_seconds()),
                    humanize_seconds(h.quantile_seconds(0.5)),
                    humanize_seconds(h.quantile_seconds(0.99)),
                ));
            }
        }
        if out.is_empty() {
            out.push_str("(no metrics recorded)\n");
        }
        out
    }

    /// JSON exposition:
    /// `{"counters":{…},"gauges":{…},"histograms":{name:{count,sum_seconds,buckets:[{le,count},…],overflow}}}`.
    pub fn to_json(&self) -> String {
        let mut out = String::from("{");
        out.push_str("\"counters\":{");
        push_entries(&mut out, &self.counters, |out, v| {
            out.push_str(&v.to_string())
        });
        out.push_str("},\"gauges\":{");
        push_entries(&mut out, &self.gauges, |out, v| {
            out.push_str(&v.to_string())
        });
        out.push_str("},\"histograms\":{");
        push_entries(&mut out, &self.histograms, |out, h| {
            out.push_str(&format!(
                "{{\"count\":{},\"sum_seconds\":{},\"buckets\":[",
                h.count, h.sum_seconds
            ));
            let mut first = true;
            for (&le, &count) in h.bounds.iter().zip(&h.bucket_counts) {
                if !first {
                    out.push(',');
                }
                first = false;
                out.push_str(&format!("{{\"le\":{le},\"count\":{count}}}"));
            }
            let overflow = h.bucket_counts.last().copied().unwrap_or(0);
            out.push_str(&format!("],\"overflow\":{overflow}}}"));
        });
        out.push_str("}}");
        out
    }
}

fn push_entries<T>(out: &mut String, entries: &[(String, T)], render: impl Fn(&mut String, &T)) {
    let mut first = true;
    for (name, value) in entries {
        if !first {
            out.push(',');
        }
        first = false;
        out.push_str(&format!("\"{}\":", escape_json(name)));
        render(out, value);
    }
}

fn escape_json(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out
}

/// `1.5ms`-style rendering for the text pane.
fn humanize_seconds(s: f64) -> String {
    if s <= 0.0 {
        "0".to_owned()
    } else if s < 1e-6 {
        format!("{:.0}ns", s * 1e9)
    } else if s < 1e-3 {
        format!("{:.1}µs", s * 1e6)
    } else if s < 1.0 {
        format!("{:.1}ms", s * 1e3)
    } else {
        format!("{s:.2}s")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_histogram() -> HistogramSnapshot {
        HistogramSnapshot {
            bounds: vec![0.001, 0.01, 0.1],
            bucket_counts: vec![2, 1, 0, 1],
            count: 4,
            sum_seconds: 0.5,
        }
    }

    #[test]
    fn quantiles_resolve_to_bucket_bounds() {
        let h = sample_histogram();
        assert_eq!(h.quantile_seconds(0.0), 0.001);
        assert_eq!(h.quantile_seconds(0.5), 0.001);
        assert_eq!(h.quantile_seconds(0.75), 0.01);
        // The p99 observation sits in the overflow bucket → last bound.
        assert_eq!(h.quantile_seconds(0.99), 0.1);
        assert_eq!(h.mean_seconds(), 0.125);
    }

    #[test]
    fn empty_histogram_quantile_is_zero() {
        let h = HistogramSnapshot {
            bounds: vec![1.0],
            bucket_counts: vec![0, 0],
            count: 0,
            sum_seconds: 0.0,
        };
        assert_eq!(h.quantile_seconds(0.5), 0.0);
        assert_eq!(h.mean_seconds(), 0.0);
    }

    #[test]
    fn json_escapes_names() {
        let snap = MetricsSnapshot {
            counters: vec![("weird\"name".to_owned(), 1)],
            gauges: vec![],
            histograms: vec![],
        };
        assert!(snap.to_json().contains("weird\\\"name"));
    }
}

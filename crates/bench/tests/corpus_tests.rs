//! Corpus sanity: the five-ontology scenario matches the paper's setup.

use sst_bench::{load_corpus, names, PAPER_CONCEPT_COUNT};
use sst_core::TreeMode;

#[test]
fn corpus_has_the_papers_943_concepts() {
    let sst = load_corpus(TreeMode::SuperThing, false);
    assert_eq!(sst.soqa().ontology_count(), 5);
    assert_eq!(sst.soqa().total_concept_count(), PAPER_CONCEPT_COUNT);
}

#[test]
fn table1_concepts_are_present() {
    let sst = load_corpus(TreeMode::SuperThing, false);
    for (concept, ontology) in [
        ("Professor", names::DAML_UNIV),
        ("AssistantProfessor", names::UNIV_BENCH),
        ("EMPLOYEE", names::COURSES),
        ("Human", names::SUMO),
        ("Mammal", names::SUMO),
        ("Person", names::UNIV_BENCH),
    ] {
        assert!(
            sst.soqa().resolve(ontology, concept).is_ok(),
            "missing {ontology}:{concept}"
        );
    }
}

#[test]
fn languages_are_heterogeneous() {
    let sst = load_corpus(TreeMode::SuperThing, true);
    let langs: Vec<String> = sst
        .soqa()
        .ontology_names()
        .iter()
        .map(|n| sst.soqa().ontology(n).unwrap().metadata.language.clone())
        .collect();
    assert!(langs.contains(&"OWL".to_owned()));
    assert!(langs.contains(&"DAML+OIL".to_owned()));
    assert!(langs.contains(&"PowerLoom".to_owned()));
    assert!(langs.contains(&"WordNet".to_owned()));
}

#[test]
fn wordnet_researcher_is_comparable_with_powerloom_student() {
    // The paper's §3 cross-language example: Student (PowerLoom) vs
    // Researcher (WordNet).
    let sst = load_corpus(TreeMode::SuperThing, true);
    let sim = sst
        .get_similarity(
            "STUDENT",
            names::COURSES,
            "researcher",
            names::WORDNET,
            sst_core::measure_ids::SHORTEST_PATH_MEASURE,
        )
        .expect("cross-language similarity");
    assert!(sim > 0.0 && sim < 1.0, "got {sim}");
}

#[test]
fn wordnet_index_file_resolves_synonyms() {
    let index = sst_wrappers::WordNetIndex::parse(
        &std::fs::read_to_string(sst_bench::data_dir().join("wordnet/index.noun"))
            .expect("index.noun"),
    )
    .expect("parse index");
    assert!(index.len() > 40);
    // "prof" is a synonym in the professor synset; both resolve to the
    // same offset.
    assert_eq!(
        index.primary_synset("prof"),
        index.primary_synset("professor")
    );
    assert!(index.primary_synset("professor").is_some());
    // Multi-word lemma with a space normalizes to the underscore form.
    assert_eq!(
        index.primary_synset("living thing"),
        index.primary_synset("living_thing")
    );
}

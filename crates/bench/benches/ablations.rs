//! Ablation benches (A1/A2 in DESIGN.md) plus the Super-Thing vs
//! merged-Thing tree comparison. These measure the *performance* side of
//! the design choices; the correctness side is asserted in the integration
//! tests (`tests/design_ablations.rs`).

use sst_bench::harness::Criterion;
use sst_bench::{criterion_group, criterion_main};
use sst_bench::{load_corpus, names};
use sst_core::{measure_ids as m, TreeMode};
use sst_simpack::{sequence_similarity, CostModel, InformationContent, ProbabilityMode, Taxonomy};

/// A1: the Eq. 4 cost model — unit costs vs a discounted-replace model vs
/// the constraint-violating model (replace > delete + insert).
fn bench_cost_models(c: &mut Criterion) {
    let x: Vec<String> = (0..40).map(|i| format!("token{}", i % 13)).collect();
    let y: Vec<String> = (0..40).map(|i| format!("token{}", (i * 7) % 17)).collect();
    let mut group = c.benchmark_group("ablation/cost_model");
    for (label, costs) in [
        ("unit", CostModel::UNIT),
        ("cheap_replace", CostModel::new(1.0, 1.0, 0.5).unwrap()),
        ("violating", CostModel::unchecked(1.0, 1.0, 3.0)),
    ] {
        group.bench_function(label, |b| b.iter(|| sequence_similarity(&x, &y, costs)));
    }
    group.finish();
}

/// A2: IC probability sources — subclass counts vs instance corpus.
fn bench_ic_modes(c: &mut Criterion) {
    // A deep binary taxonomy with instances on the leaves.
    let n = 1023u32;
    let mut taxonomy = Taxonomy::new(n as usize, 0);
    for i in 1..n {
        taxonomy.add_edge(i, (i - 1) / 2);
    }
    let counts: Vec<usize> = (0..n).map(|i| if i >= n / 2 { 3 } else { 0 }).collect();
    let mut group = c.benchmark_group("ablation/ic_mode");
    group.bench_function("subclass_count", |b| {
        b.iter(|| InformationContent::for_mode(&taxonomy, ProbabilityMode::SubclassCount, &counts))
    });
    group.bench_function("instance_corpus", |b| {
        b.iter(|| InformationContent::for_mode(&taxonomy, ProbabilityMode::InstanceCorpus, &counts))
    });
    group.finish();
}

/// Tree mode: does the merged-Thing tree (fewer nodes, flatter) change
/// distance-query cost?
fn bench_tree_modes(c: &mut Criterion) {
    let mut group = c.benchmark_group("ablation/tree_mode");
    group.sample_size(10);
    for (label, mode) in [
        ("super_thing", TreeMode::SuperThing),
        ("merged_thing", TreeMode::MergedThing),
    ] {
        let sst = load_corpus(mode, false);
        group.bench_function(format!("{label}/shortest_path"), |b| {
            b.iter(|| {
                sst.get_similarity(
                    "Professor",
                    names::DAML_UNIV,
                    "Human",
                    names::SUMO,
                    m::SHORTEST_PATH_MEASURE,
                )
                .unwrap()
            })
        });
    }
    group.finish();
}

/// Ranking-backend ablation: the paper's TF-IDF cosine vs Okapi BM25 over
/// the same index of SUMO concept descriptions.
fn bench_text_rankers(c: &mut Criterion) {
    use sst_index::{Bm25, Bm25Params, IndexBuilder};
    let sumo = std::fs::read_to_string(sst_bench::data_dir().join("ontologies/sumo.owl"))
        .expect("sumo.owl");
    let onto = sst_wrappers::parse_owl(&sumo, "sumo", "http://sumo").expect("parse");
    let mut builder = IndexBuilder::new();
    for id in onto.concept_ids() {
        let concept = onto.concept(id);
        builder.add_document(
            concept.name.clone(),
            concept.documentation.as_deref().unwrap_or(""),
        );
    }
    let index = builder.build();
    let bm25 = Bm25::new(&index, Bm25Params::default());
    let mut group = c.benchmark_group("ablation/text_ranker");
    group.bench_function("tfidf_cosine", |b| {
        b.iter(|| index.search("warm blooded vertebrate mammal primate", 10))
    });
    group.bench_function("bm25", |b| {
        b.iter(|| bm25.search("warm blooded vertebrate mammal primate", 10))
    });
    group.finish();
}

criterion_group! {
    name = benches;
    config = sst_bench::harness::Criterion::default().sample_size(30);
    targets = bench_cost_models, bench_ic_modes, bench_tree_modes, bench_text_rankers
}
criterion_main!(benches);

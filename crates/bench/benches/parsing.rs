//! P2 (DESIGN.md): parser and index throughput — the substrate costs behind
//! toolkit construction.

use sst_bench::data_dir;
use sst_bench::harness::{Criterion, Throughput};
use sst_bench::{criterion_group, criterion_main};
use sst_index::IndexBuilder;

fn read(name: &str) -> String {
    std::fs::read_to_string(data_dir().join(name)).expect("data file")
}

fn bench_parsers(c: &mut Criterion) {
    let sumo = read("ontologies/sumo.owl");
    let course = read("ontologies/course.ploom");
    let wordnet = read("wordnet/data.noun");

    let mut group = c.benchmark_group("parse");
    group.throughput(Throughput::Bytes(sumo.len() as u64));
    group.bench_function("rdfxml/sumo.owl", |b| b.iter(|| sst_rdf_parse(&sumo)));
    group.throughput(Throughput::Bytes(course.len() as u64));
    group.bench_function("powerloom/course.ploom", |b| {
        b.iter(|| sst_wrappers::parse_powerloom(&course, "COURSES").unwrap())
    });
    group.throughput(Throughput::Bytes(wordnet.len() as u64));
    group.bench_function("wordnet/data.noun", |b| {
        b.iter(|| sst_wrappers::parse_wordnet(&wordnet, "wn").unwrap())
    });
    group.finish();

    // Turtle + N-Triples round-trip on the SUMO graph.
    let graph = sst_rdf_parse(&sumo);
    let turtle = sst_rdf::write_turtle(&graph);
    let ntriples = sst_rdf::write_ntriples(&graph);
    let mut group = c.benchmark_group("parse_rdf_text");
    group.throughput(Throughput::Bytes(turtle.len() as u64));
    group.bench_function("turtle/sumo", |b| {
        b.iter(|| sst_rdf::parse_turtle(&turtle, "http://sumo").unwrap())
    });
    group.throughput(Throughput::Bytes(ntriples.len() as u64));
    group.bench_function("ntriples/sumo", |b| {
        b.iter(|| sst_rdf::parse_ntriples(&ntriples).unwrap())
    });
    group.finish();
}

fn sst_rdf_parse(text: &str) -> sst_rdf::Graph {
    sst_rdf::parse_rdfxml(text, "http://reliant.teknowledge.com/DAML/SUMO.owl").unwrap()
}

fn bench_indexing(c: &mut Criterion) {
    // Index the SUMO comments — the TFIDF measure's setup cost.
    let sumo = read("ontologies/sumo.owl");
    let onto = sst_wrappers::parse_owl(&sumo, "sumo", "http://sumo").unwrap();
    let docs: Vec<(String, String)> = onto
        .concept_ids()
        .map(|id| {
            let concept = onto.concept(id);
            (
                concept.name.clone(),
                concept.documentation.clone().unwrap_or_default(),
            )
        })
        .collect();
    let total: usize = docs.iter().map(|(_, d)| d.len()).sum();
    let mut group = c.benchmark_group("index");
    group.throughput(Throughput::Bytes(total as u64));
    group.bench_function("build/sumo-descriptions", |b| {
        b.iter(|| {
            let mut builder = IndexBuilder::new();
            for (key, text) in &docs {
                builder.add_document(key.clone(), text);
            }
            builder.build()
        })
    });
    let index = {
        let mut builder = IndexBuilder::new();
        for (key, text) in &docs {
            builder.add_document(key.clone(), text);
        }
        builder.build()
    };
    group.bench_function("search/top10", |b| {
        b.iter(|| index.search("warm blooded vertebrate mammal", 10))
    });
    group.finish();
}

criterion_group! {
    name = benches;
    config = sst_bench::harness::Criterion::default().sample_size(20);
    targets = bench_parsers, bench_indexing
}
criterion_main!(benches);

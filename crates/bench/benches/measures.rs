//! P1 (DESIGN.md): pairwise similarity latency for every registered
//! measure, on the paper's 943-concept corpus — one in-ontology pair and
//! one cross-ontology pair per measure.

use sst_bench::harness::Criterion;
use sst_bench::{criterion_group, criterion_main};
use sst_bench::{load_corpus, names};
use sst_core::TreeMode;

fn bench_pairwise(c: &mut Criterion) {
    let sst = load_corpus(TreeMode::SuperThing, false);
    let mut group = c.benchmark_group("pairwise");
    for (id, info) in sst.measures().into_iter().enumerate() {
        group.bench_function(format!("{}/in-ontology", info.name), |b| {
            b.iter(|| {
                sst.get_similarity(
                    "Professor",
                    names::DAML_UNIV,
                    "Student",
                    names::DAML_UNIV,
                    id,
                )
                .unwrap()
            })
        });
        group.bench_function(format!("{}/cross-ontology", info.name), |b| {
            b.iter(|| {
                sst.get_similarity("Professor", names::DAML_UNIV, "Human", names::SUMO, id)
                    .unwrap()
            })
        });
    }
    group.finish();
}

criterion_group! {
    name = benches;
    config = sst_bench::harness::Criterion::default().sample_size(30);
    targets = bench_pairwise
}
criterion_main!(benches);

//! P1 (DESIGN.md): service-level scaling — k-most-similar over the full
//! corpus per measure family, and over generated taxonomies of growing
//! size; plus the pairwise similarity matrix on a subtree.

use sst_bench::harness::{BenchmarkId, Criterion};
use sst_bench::{criterion_group, criterion_main};
use sst_bench::{generate_taxonomy, load_corpus, names, TaxonomySpec};
use sst_core::{measure_ids as m, ConceptSet, SstBuilder, TreeMode};

fn bench_most_similar_corpus(c: &mut Criterion) {
    let sst = load_corpus(TreeMode::SuperThing, false);
    let mut group = c.benchmark_group("most_similar/corpus943");
    for (label, measure) in [
        ("wu_palmer", m::CONCEPTUAL_SIMILARITY_MEASURE),
        ("shortest_path", m::SHORTEST_PATH_MEASURE),
        ("lin", m::LIN_MEASURE),
        ("tfidf", m::TFIDF_MEASURE),
        ("levenshtein", m::LEVENSHTEIN_MEASURE),
    ] {
        group.bench_function(label, |b| {
            b.iter(|| {
                sst.most_similar("Professor", names::DAML_UNIV, &ConceptSet::All, 10, measure)
                    .unwrap()
            })
        });
    }
    group.finish();
}

fn bench_most_similar_scaling(c: &mut Criterion) {
    let mut group = c.benchmark_group("most_similar/scaling");
    group.sample_size(10);
    for n in [100usize, 400, 1600] {
        let ontology = generate_taxonomy(TaxonomySpec {
            concepts: n,
            seed: 3,
            ..Default::default()
        });
        let name = ontology.name().to_owned();
        let query = ontology
            .concept(ontology.concept_ids().last().unwrap())
            .name
            .clone();
        let sst = SstBuilder::new()
            .register_ontology(ontology)
            .unwrap()
            .build();
        group.bench_with_input(BenchmarkId::new("wu_palmer", n), &n, |b, _| {
            b.iter(|| {
                sst.most_similar(
                    &query,
                    &name,
                    &ConceptSet::All,
                    10,
                    m::CONCEPTUAL_SIMILARITY_MEASURE,
                )
                .unwrap()
            })
        });
        group.bench_with_input(BenchmarkId::new("tfidf", n), &n, |b, _| {
            b.iter(|| {
                sst.most_similar(&query, &name, &ConceptSet::All, 10, m::TFIDF_MEASURE)
                    .unwrap()
            })
        });
    }
    group.finish();
}

fn bench_similarity_matrix(c: &mut Criterion) {
    let sst = load_corpus(TreeMode::SuperThing, false);
    let subtree = ConceptSet::Subtree(sst_core::ConceptRef::new("Person", names::UNIV_BENCH));
    c.bench_function("similarity_matrix/univ-bench-person-subtree", |b| {
        b.iter(|| {
            sst.similarity_matrix(&subtree, m::CONCEPTUAL_SIMILARITY_MEASURE)
                .unwrap()
        })
    });
}

fn bench_parallel_matrix(c: &mut Criterion) {
    let sst = load_corpus(TreeMode::SuperThing, false);
    let subtree = ConceptSet::Subtree(sst_core::ConceptRef::new("Person", names::SWRC));
    let mut group = c.benchmark_group("similarity_matrix_parallel");
    group.sample_size(10);
    for threads in [1usize, 2, 4] {
        group.bench_with_input(BenchmarkId::from_parameter(threads), &threads, |b, &t| {
            b.iter(|| {
                sst.similarity_matrix_parallel(&subtree, m::TFIDF_MEASURE, t)
                    .unwrap()
            })
        });
    }
    group.finish();
}

fn bench_cached_most_similar(c: &mut Criterion) {
    use sst_core::CachedSimilarity;
    let sst = load_corpus(TreeMode::SuperThing, false);
    let mut group = c.benchmark_group("most_similar_cached");
    group.bench_function("cold_vs_warm/warm", |b| {
        let cache = CachedSimilarity::new(&sst);
        // Warm the cache once.
        cache
            .most_similar(
                "Professor",
                names::DAML_UNIV,
                &ConceptSet::All,
                10,
                m::CONCEPTUAL_SIMILARITY_MEASURE,
            )
            .unwrap();
        b.iter(|| {
            cache
                .most_similar(
                    "Professor",
                    names::DAML_UNIV,
                    &ConceptSet::All,
                    10,
                    m::CONCEPTUAL_SIMILARITY_MEASURE,
                )
                .unwrap()
        })
    });
    group.bench_function("cold_vs_warm/uncached", |b| {
        b.iter(|| {
            sst.most_similar(
                "Professor",
                names::DAML_UNIV,
                &ConceptSet::All,
                10,
                m::CONCEPTUAL_SIMILARITY_MEASURE,
            )
            .unwrap()
        })
    });
    group.finish();
}

fn bench_toolkit_build(c: &mut Criterion) {
    let mut group = c.benchmark_group("toolkit_build");
    group.sample_size(10);
    group.bench_function("corpus943", |b| {
        b.iter(|| load_corpus(TreeMode::SuperThing, false))
    });
    group.finish();
}

criterion_group! {
    name = benches;
    config = sst_bench::harness::Criterion::default().sample_size(20);
    targets = bench_most_similar_corpus, bench_most_similar_scaling,
              bench_similarity_matrix, bench_parallel_matrix, bench_cached_most_similar,
              bench_toolkit_build
}
criterion_main!(benches);

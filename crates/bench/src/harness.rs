//! Minimal in-repo benchmark harness with a Criterion-shaped API.
//!
//! The workspace builds offline, so the Criterion dependency is replaced
//! by this thin harness: same call surface (`benchmark_group`,
//! `bench_function`, `bench_with_input`, `throughput`, the
//! `criterion_group!`/`criterion_main!` macros), adaptive per-sample
//! iteration counts, and median-of-samples reporting.
//!
//! Runs in two modes, keyed off the command line cargo passes:
//! `cargo bench` invokes bench binaries with `--bench`, which selects the
//! full measurement loop; any other invocation (notably `cargo test`,
//! which runs `harness = false` bench targets as plain executables) gets
//! a smoke run — every benchmark body executes exactly once so the code
//! path is exercised without minutes of sampling.

use std::time::{Duration, Instant};

/// How long one measured sample should take, at minimum, in full mode.
const TARGET_SAMPLE: Duration = Duration::from_millis(2);

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Mode {
    /// `cargo bench`: calibrate, sample, report medians.
    Full,
    /// `cargo test` (or direct execution): run every body once.
    Smoke,
}

fn mode_from_args() -> Mode {
    if std::env::args().any(|a| a == "--bench") {
        Mode::Full
    } else {
        Mode::Smoke
    }
}

/// Units for throughput reporting, mirroring `criterion::Throughput`.
#[derive(Debug, Clone, Copy)]
pub enum Throughput {
    Bytes(u64),
    Elements(u64),
}

/// Benchmark identifier, mirroring `criterion::BenchmarkId`.
#[derive(Debug, Clone)]
pub struct BenchmarkId {
    label: String,
}

impl BenchmarkId {
    pub fn new(function: impl Into<String>, parameter: impl std::fmt::Display) -> Self {
        BenchmarkId {
            label: format!("{}/{}", function.into(), parameter),
        }
    }

    pub fn from_parameter(parameter: impl std::fmt::Display) -> Self {
        BenchmarkId {
            label: parameter.to_string(),
        }
    }
}

impl std::fmt::Display for BenchmarkId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(&self.label)
    }
}

/// Top-level harness state, mirroring `criterion::Criterion`.
#[derive(Debug)]
pub struct Criterion {
    sample_size: usize,
    mode: Mode,
}

impl Default for Criterion {
    fn default() -> Self {
        Criterion {
            sample_size: 20,
            mode: mode_from_args(),
        }
    }
}

impl Criterion {
    /// Builder-style sample-size override (applies to full mode only).
    #[must_use]
    pub fn sample_size(mut self, n: usize) -> Self {
        self.sample_size = n.max(1);
        self
    }

    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchGroup<'_> {
        BenchGroup {
            criterion: self,
            name: name.into(),
            throughput: None,
            sample_override: None,
        }
    }

    /// Ungrouped single benchmark.
    pub fn bench_function<F>(&mut self, name: impl Into<String>, f: F)
    where
        F: FnMut(&mut Bencher),
    {
        let name = name.into();
        let mut group = self.benchmark_group(name.clone());
        group.run(&name, None, f);
    }
}

/// A named group of related benchmarks, mirroring Criterion's
/// `BenchmarkGroup`.
#[derive(Debug)]
pub struct BenchGroup<'c> {
    criterion: &'c mut Criterion,
    name: String,
    throughput: Option<Throughput>,
    sample_override: Option<usize>,
}

impl BenchGroup<'_> {
    /// Sets throughput units reported with each subsequent benchmark.
    pub fn throughput(&mut self, throughput: Throughput) {
        self.throughput = Some(throughput);
    }

    /// Per-group sample-size override.
    pub fn sample_size(&mut self, n: usize) {
        self.sample_override = Some(n.max(1));
    }

    pub fn bench_function<F>(&mut self, id: impl std::fmt::Display, f: F)
    where
        F: FnMut(&mut Bencher),
    {
        let label = format!("{}/{}", self.name, id);
        let throughput = self.throughput;
        self.run(&label, throughput, f);
    }

    pub fn bench_with_input<I, F>(&mut self, id: BenchmarkId, input: &I, mut f: F)
    where
        F: FnMut(&mut Bencher, &I),
    {
        let label = format!("{}/{}", self.name, id);
        let throughput = self.throughput;
        self.run(&label, throughput, |b| f(b, input));
    }

    pub fn finish(self) {}

    fn run<F>(&mut self, label: &str, throughput: Option<Throughput>, mut f: F)
    where
        F: FnMut(&mut Bencher),
    {
        let mut bencher = Bencher {
            iters: 1,
            elapsed: Duration::ZERO,
        };
        if self.criterion.mode == Mode::Smoke {
            f(&mut bencher);
            println!("bench {label}: smoke ok");
            return;
        }

        // Calibrate: grow the per-sample iteration count until one sample
        // takes at least TARGET_SAMPLE.
        f(&mut bencher); // warm-up
        loop {
            f(&mut bencher);
            if bencher.elapsed >= TARGET_SAMPLE || bencher.iters >= (1 << 24) {
                break;
            }
            bencher.iters *= 2;
        }

        let samples = self.sample_override.unwrap_or(self.criterion.sample_size);
        let mut per_iter: Vec<f64> = Vec::with_capacity(samples);
        for _ in 0..samples {
            f(&mut bencher);
            per_iter.push(bencher.elapsed.as_secs_f64() / bencher.iters as f64);
        }
        per_iter.sort_by(f64::total_cmp);
        let median = per_iter.get(per_iter.len() / 2).copied().unwrap_or(0.0);
        let spread = match (per_iter.first(), per_iter.last()) {
            (Some(lo), Some(hi)) => (*lo, *hi),
            _ => (median, median),
        };
        let rate = throughput.map(|t| match t {
            Throughput::Bytes(b) => format!(" ({:.1} MiB/s)", b as f64 / median / (1 << 20) as f64),
            Throughput::Elements(n) => format!(" ({:.0} elem/s)", n as f64 / median),
        });
        println!(
            "bench {label}: median {} [{} .. {}] x{}{}",
            fmt_time(median),
            fmt_time(spread.0),
            fmt_time(spread.1),
            bencher.iters,
            rate.unwrap_or_default(),
        );
    }
}

fn fmt_time(seconds: f64) -> String {
    if seconds >= 1.0 {
        format!("{seconds:.3} s")
    } else if seconds >= 1e-3 {
        format!("{:.3} ms", seconds * 1e3)
    } else if seconds >= 1e-6 {
        format!("{:.3} µs", seconds * 1e6)
    } else {
        format!("{:.1} ns", seconds * 1e9)
    }
}

/// Timing driver handed to each benchmark body, mirroring
/// `criterion::Bencher`.
#[derive(Debug)]
pub struct Bencher {
    iters: u64,
    elapsed: Duration,
}

impl Bencher {
    /// Times `iters` back-to-back calls of `f`, black-boxing each result
    /// so the optimizer cannot elide the work.
    pub fn iter<T, F: FnMut() -> T>(&mut self, mut f: F) {
        let start = Instant::now();
        for _ in 0..self.iters {
            std::hint::black_box(f());
        }
        self.elapsed = start.elapsed();
    }
}

/// Declares a bench group function, mirroring `criterion_group!`.
#[macro_export]
macro_rules! criterion_group {
    (name = $name:ident; config = $config:expr; targets = $($target:path),+ $(,)?) => {
        fn $name() {
            let mut criterion: $crate::harness::Criterion = $config;
            $( $target(&mut criterion); )+
        }
    };
    ($name:ident, $($target:path),+ $(,)?) => {
        $crate::criterion_group! {
            name = $name;
            config = $crate::harness::Criterion::default();
            targets = $($target),+
        }
    };
}

/// Declares the bench entry point, mirroring `criterion_main!`.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $( $group(); )+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn benchmark_id_formats_like_criterion() {
        assert_eq!(
            BenchmarkId::new("wu_palmer", 400).to_string(),
            "wu_palmer/400"
        );
        assert_eq!(BenchmarkId::from_parameter(4).to_string(), "4");
    }

    #[test]
    fn smoke_mode_runs_body_once() {
        let mut c = Criterion {
            sample_size: 5,
            mode: Mode::Smoke,
        };
        let mut calls = 0;
        let mut group = c.benchmark_group("g");
        group.bench_function("once", |b| {
            b.iter(|| calls += 1);
        });
        group.finish();
        assert_eq!(calls, 1);
    }

    #[test]
    fn full_mode_reports_and_samples() {
        let mut c = Criterion {
            sample_size: 3,
            mode: Mode::Full,
        };
        let mut calls = 0u64;
        c.bench_function("counting", |b| {
            b.iter(|| {
                calls += 1;
                std::hint::black_box(calls)
            });
        });
        assert!(calls > 3, "full mode should calibrate and sample");
    }
}

//! Measure-quality evaluation — the paper's §6 future work ("a thorough
//! evaluation to find the best performing similarity measures in different
//! task domains"), realized as a matching experiment with synthetic ground
//! truth.
//!
//! A seeded taxonomy is copied and perturbed (name typos, documentation
//! thinning, re-parenting); each measure then tries to re-identify every
//! original concept among the perturbed copies. Precision@1 against the
//! known ground truth scores the measure for that perturbation domain.

use crate::rng::SplitMix64;
use sst_core::{ConceptRef, ConceptSet, SstBuilder};
use sst_soqa::{Ontology, OntologyBuilder, OntologyMetadata};

use crate::workload::{generate_taxonomy, TaxonomySpec};

/// What the perturbation touches — each level is a "task domain" in the
/// paper's sense, favouring a different measure family.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Perturbation {
    /// Typos in concept names (favours string/text measures robustness).
    Names,
    /// Thinned documentation strings (stresses the TFIDF measure).
    Documentation,
    /// Random re-parenting of concepts (stresses graph/IC measures).
    Structure,
    /// All of the above.
    All,
}

impl Perturbation {
    pub const ALL_KINDS: [Perturbation; 4] = [
        Perturbation::Names,
        Perturbation::Documentation,
        Perturbation::Structure,
        Perturbation::All,
    ];

    pub fn label(self) -> &'static str {
        match self {
            Perturbation::Names => "names",
            Perturbation::Documentation => "documentation",
            Perturbation::Structure => "structure",
            Perturbation::All => "all",
        }
    }
}

/// Applies a typo to a name: swaps two *distinct* adjacent interior
/// characters (scanning from a random offset, so the typo position varies).
fn typo(name: &str, rng: &mut SplitMix64) -> String {
    let mut chars: Vec<char> = name.chars().collect();
    if chars.len() >= 4 {
        let start = rng.gen_range(1..chars.len() - 2);
        let positions = (start..chars.len() - 2).chain(1..start);
        for i in positions {
            if chars[i] != chars[i + 1] {
                chars.swap(i, i + 1);
                break;
            }
        }
    }
    chars.into_iter().collect()
}

/// Builds the perturbed copy of `original` under the given perturbation
/// kind and strength (probability each concept is affected).
pub fn perturb(original: &Ontology, kind: Perturbation, strength: f64, seed: u64) -> Ontology {
    let mut rng = SplitMix64::seed_from_u64(seed);
    let mut builder = OntologyBuilder::new(OntologyMetadata {
        name: format!("{}_perturbed", original.name()),
        language: "Synthetic".to_owned(),
        ..OntologyMetadata::default()
    });
    let names_kind = matches!(kind, Perturbation::Names | Perturbation::All);
    let docs_kind = matches!(kind, Perturbation::Documentation | Perturbation::All);
    let structure_kind = matches!(kind, Perturbation::Structure | Perturbation::All);

    // Copy concepts (ids align with the original's by construction).
    let all_ids: Vec<_> = original.concept_ids().collect();
    for &cid in &all_ids {
        let concept = original.concept(cid);
        let name = if names_kind && rng.gen_bool(strength) {
            typo(&concept.name, &mut rng)
        } else {
            concept.name.clone()
        };
        let id = builder.concept(&name);
        let doc = concept.documentation.clone().map(|d| {
            if docs_kind && rng.gen_bool(strength) {
                // Thin the documentation: keep every other word.
                d.split_whitespace()
                    .enumerate()
                    .filter(|(i, _)| i % 2 == 0)
                    .map(|(_, w)| w)
                    .collect::<Vec<_>>()
                    .join(" ")
            } else {
                d
            }
        });
        builder.concept_mut(id).documentation = doc;
    }
    // Copy edges, occasionally re-parenting.
    for &cid in &all_ids {
        for &sup in original.direct_supers(cid) {
            let new_parent = if structure_kind && rng.gen_bool(strength) {
                // Re-parent to a random other concept with a smaller id to
                // preserve acyclicity.
                let upper = cid.0.max(1);
                sst_soqa::ConceptId(rng.gen_range(0..upper as usize) as u32)
            } else {
                sup
            };
            builder.add_subclass(cid, new_parent);
        }
    }
    builder.build()
}

/// One measure's score in one domain.
#[derive(Debug, Clone)]
pub struct EvalResult {
    pub measure: String,
    pub perturbation: &'static str,
    /// Fraction of concepts whose ground-truth counterpart ranked first.
    pub precision_at_1: f64,
}

/// Runs the matching experiment for every registered normalized measure
/// over each perturbation kind. `sample` caps the number of query concepts
/// per run (for speed).
pub fn evaluate_measures(
    concepts: usize,
    strength: f64,
    sample: usize,
    seed: u64,
) -> Vec<EvalResult> {
    let mut results = Vec::new();
    for kind in Perturbation::ALL_KINDS {
        let original = generate_taxonomy(TaxonomySpec {
            concepts,
            seed,
            ..TaxonomySpec::default()
        });
        let perturbed = perturb(&original, kind, strength, seed ^ 0x9e3779b9);
        let original_name = original.name().to_owned();
        let perturbed_name = perturbed.name().to_owned();
        // Ground truth: concept at index i ↔ perturbed concept at index i.
        let source_names: Vec<String> = original
            .concept_ids()
            .map(|id| original.concept(id).name.clone())
            .collect();
        let target_names: Vec<String> = perturbed
            .concept_ids()
            .map(|id| perturbed.concept(id).name.clone())
            .collect();

        let sst = SstBuilder::new()
            .register_ontology(original)
            .expect("register original")
            .register_ontology(perturbed)
            .expect("register perturbed")
            .build();
        let target_set = ConceptSet::Subtree(ConceptRef::new(
            target_names[0].clone(),
            perturbed_name.clone(),
        ));

        let queries: Vec<usize> = (0..source_names.len())
            .step_by((source_names.len() / sample.max(1)).max(1))
            .collect();
        for (measure_id, info) in sst.measures().into_iter().enumerate() {
            if !info.normalized {
                continue; // precision@1 over raw bits is not comparable
            }
            let mut hits = 0usize;
            for &qi in &queries {
                let top = sst
                    .most_similar(
                        &source_names[qi],
                        &original_name,
                        &target_set,
                        1,
                        measure_id,
                    )
                    .expect("most similar");
                if let Some(best) = top.first() {
                    if best.concept == target_names[qi] {
                        hits += 1;
                    }
                }
            }
            results.push(EvalResult {
                measure: info.name,
                perturbation: kind.label(),
                precision_at_1: hits as f64 / queries.len() as f64,
            });
        }
    }
    results
}

/// Renders the results as a measure × domain table.
pub fn render_results(results: &[EvalResult]) -> String {
    let mut measures: Vec<&str> = Vec::new();
    for r in results {
        if !measures.contains(&r.measure.as_str()) {
            measures.push(r.measure.as_str());
        }
    }
    let domains: Vec<&str> = Perturbation::ALL_KINDS.iter().map(|k| k.label()).collect();
    let mut out = format!("{:<18}", "measure");
    for d in &domains {
        out.push_str(&format!("{d:>16}"));
    }
    out.push('\n');
    out.push_str(&"-".repeat(18 + 16 * domains.len()));
    out.push('\n');
    for m in measures {
        out.push_str(&format!("{m:<18}"));
        for d in &domains {
            let v = results
                .iter()
                .find(|r| r.measure == m && r.perturbation == *d)
                .map(|r| r.precision_at_1)
                .unwrap_or(f64::NAN);
            out.push_str(&format!("{v:>16.3}"));
        }
        out.push('\n');
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn perturbation_is_deterministic_and_size_preserving() {
        let o = generate_taxonomy(TaxonomySpec {
            concepts: 40,
            seed: 5,
            ..Default::default()
        });
        let a = perturb(&o, Perturbation::All, 0.5, 9);
        let b = perturb(&o, Perturbation::All, 0.5, 9);
        assert_eq!(a.concept_count(), o.concept_count());
        for (x, y) in a.concept_ids().zip(b.concept_ids()) {
            assert_eq!(a.concept(x).name, b.concept(y).name);
        }
    }

    #[test]
    fn name_perturbation_changes_some_names() {
        let o = generate_taxonomy(TaxonomySpec {
            concepts: 60,
            seed: 5,
            ..Default::default()
        });
        let p = perturb(&o, Perturbation::Names, 0.8, 1);
        let changed = o
            .concept_ids()
            .zip(p.concept_ids())
            .filter(|&(a, b)| o.concept(a).name != p.concept(b).name)
            .count();
        assert!(changed > 10, "only {changed} names changed");
    }

    #[test]
    fn structure_perturbation_keeps_single_root_reachability() {
        let o = generate_taxonomy(TaxonomySpec {
            concepts: 50,
            seed: 3,
            ..Default::default()
        });
        let p = perturb(&o, Perturbation::Structure, 0.5, 2);
        // Every non-root concept still has a parent (acyclic by id order).
        let root = p.roots()[0];
        for id in p.concept_ids() {
            if id != root {
                assert!(
                    !p.direct_supers(id).is_empty(),
                    "orphaned {}",
                    p.concept(id).name
                );
            }
        }
    }

    #[test]
    fn typo_preserves_length() {
        let mut rng = SplitMix64::seed_from_u64(1);
        let t = typo("Professor", &mut rng);
        assert_eq!(t.len(), "Professor".len());
        assert_ne!(t, "Professor");
        assert_eq!(typo("ab", &mut rng), "ab"); // too short to swap
    }
}

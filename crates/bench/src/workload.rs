//! Workload generators: seeded random taxonomies for scaling studies and
//! the synthetic SUMO stand-in (DESIGN.md §3).

use crate::rng::SplitMix64;
use sst_soqa::{Instance, Ontology, OntologyBuilder, OntologyMetadata};

/// Parameters of a generated taxonomy.
#[derive(Debug, Clone, Copy)]
pub struct TaxonomySpec {
    /// Number of concepts (including the generated root).
    pub concepts: usize,
    /// Maximum children preferred per node (soft bound via skewed sampling).
    pub branching: usize,
    /// Instances to scatter over leaf concepts.
    pub instances: usize,
    pub seed: u64,
}

impl Default for TaxonomySpec {
    fn default() -> Self {
        TaxonomySpec {
            concepts: 100,
            branching: 5,
            instances: 0,
            seed: 7,
        }
    }
}

const STEMS: &[&str] = &[
    "Process",
    "Object",
    "Agent",
    "Event",
    "Artifact",
    "Region",
    "Substance",
    "Device",
    "Organism",
    "Motion",
    "Quantity",
    "Relation",
    "Attribute",
    "Structure",
    "Measure",
    "Group",
    "Action",
    "State",
    "Product",
    "System",
];

const MODIFIERS: &[&str] = &[
    "Biological",
    "Chemical",
    "Physical",
    "Abstract",
    "Social",
    "Economic",
    "Geographic",
    "Temporal",
    "Spatial",
    "Industrial",
    "Agricultural",
    "Medical",
    "Legal",
    "Musical",
    "Linguistic",
    "Mechanical",
    "Electrical",
    "Thermal",
    "Optical",
    "Digital",
    "Ancient",
    "Modern",
    "Primary",
    "Secondary",
    "Complex",
    "Simple",
    "Internal",
    "External",
    "Natural",
    "Artificial",
    "Stationary",
    "Mobile",
    "Solid",
    "Liquid",
    "Gaseous",
    "Organic",
    "Inorganic",
    "Composite",
    "Elementary",
    "Terrestrial",
];

/// Generates a random rooted taxonomy for scaling benchmarks. Every concept
/// gets a short documentation string so the TFIDF measure has text to index.
pub fn generate_taxonomy(spec: TaxonomySpec) -> Ontology {
    assert!(spec.concepts >= 1);
    let mut rng = SplitMix64::seed_from_u64(spec.seed);
    let mut builder = OntologyBuilder::new(OntologyMetadata {
        name: format!("synthetic_{}", spec.concepts),
        language: "Synthetic".to_owned(),
        documentation: Some(format!(
            "Seeded random taxonomy with {} concepts (branching {})",
            spec.concepts, spec.branching
        )),
        ..OntologyMetadata::default()
    });

    let root = builder.concept("Root");
    builder.concept_mut(root).documentation = Some("The generated root concept".to_owned());
    let mut ids = vec![root];
    for i in 1..spec.concepts {
        let stem = STEMS[rng.gen_range(0..STEMS.len())];
        let modifier = MODIFIERS[rng.gen_range(0..MODIFIERS.len())];
        let name = format!("{modifier}{stem}{i}");
        let id = builder.concept(&name);
        builder.concept_mut(id).documentation = Some(format!(
            "A {} {} generated as node {} of the synthetic workload",
            modifier.to_lowercase(),
            stem.to_lowercase(),
            i
        ));
        // Attach to a random earlier node, skewed toward recent nodes to get
        // realistic depth; reject parents that already exceed the branching
        // preference with probability proportional to the excess.
        let parent = loop {
            let upper = ids.len();
            let candidate = ids[rng.gen_range(0..upper)];
            let load = builder.concept_ref(candidate).sub_concepts.len();
            if load < spec.branching || rng.gen_bool(0.3) {
                break candidate;
            }
        };
        builder.add_subclass(id, parent);
        ids.push(id);
    }
    // Scatter instances over the deepest half of the concepts.
    for i in 0..spec.instances {
        let concept = ids[rng.gen_range(ids.len() / 2..ids.len())];
        builder.add_instance(Instance {
            name: format!("instance{i}"),
            concept,
            attribute_values: vec![],
            relationship_values: vec![],
        });
    }
    builder.build()
}

/// The hand-modeled upper level of the SUMO stand-in, including the
/// `Entity → … → Mammal → … → Human` chain Table 1 depends on.
/// Entries are `(name, parent, documentation)`.
const SUMO_SKELETON: &[(&str, &str, &str)] = &[
    (
        "Entity",
        "",
        "The universal class of individuals; the root node of the ontology",
    ),
    (
        "Physical",
        "Entity",
        "An entity that has a location in space-time",
    ),
    (
        "Abstract",
        "Entity",
        "Properties or qualities as distinguished from any particular embodiment",
    ),
    (
        "Object",
        "Physical",
        "A physical entity that is spatially extended",
    ),
    (
        "Process",
        "Physical",
        "The class of things that happen and have temporal parts or stages",
    ),
    (
        "SelfConnectedObject",
        "Object",
        "An object that does not consist of two or more disconnected parts",
    ),
    (
        "Collection",
        "Object",
        "An object whose parts have a position relative to one another",
    ),
    ("Region", "Object", "A topographic location"),
    (
        "Agent",
        "Object",
        "Something or someone that can act on its own and produce changes",
    ),
    (
        "Substance",
        "SelfConnectedObject",
        "An object in which every part is similar to every other in every relevant respect",
    ),
    (
        "CorpuscularObject",
        "SelfConnectedObject",
        "A self-connected object whose parts have properties not shared by the whole",
    ),
    (
        "OrganicObject",
        "CorpuscularObject",
        "An object of or derived from living organisms",
    ),
    (
        "Organism",
        "OrganicObject",
        "A living individual, including all parts of the organism",
    ),
    ("Plant", "Organism", "An organism of the vegetable kingdom"),
    (
        "Animal",
        "Organism",
        "An organism with the power of voluntary movement",
    ),
    (
        "Microorganism",
        "Organism",
        "An organism that can be seen only with the aid of a microscope",
    ),
    ("Invertebrate", "Animal", "An animal without a backbone"),
    (
        "Vertebrate",
        "Animal",
        "An animal which has a spinal column",
    ),
    (
        "ColdBloodedVertebrate",
        "Vertebrate",
        "Vertebrates whose body temperature is not internally regulated",
    ),
    (
        "WarmBloodedVertebrate",
        "Vertebrate",
        "Vertebrates whose body temperature is internally regulated",
    ),
    (
        "Fish",
        "ColdBloodedVertebrate",
        "A cold-blooded aquatic vertebrate",
    ),
    (
        "Reptile",
        "ColdBloodedVertebrate",
        "A cold-blooded vertebrate having an external covering of scales",
    ),
    (
        "Bird",
        "WarmBloodedVertebrate",
        "A warm-blooded egg-laying vertebrate characterized by feathers and wings",
    ),
    (
        "Mammal",
        "WarmBloodedVertebrate",
        "A warm-blooded vertebrate having the skin more or less covered with hair",
    ),
    (
        "AquaticMammal",
        "Mammal",
        "The class of mammals that dwell chiefly in the water",
    ),
    (
        "HoofedMammal",
        "Mammal",
        "The class of quadruped mammals with hooves",
    ),
    ("Carnivore", "Mammal", "The class of flesh-eating mammals"),
    (
        "Rodent",
        "Mammal",
        "The class of mammals with continuously growing incisor teeth",
    ),
    (
        "Primate",
        "Mammal",
        "The class of mammals including monkeys, apes, and human beings",
    ),
    (
        "Monkey",
        "Primate",
        "The class of primates that are not hominids",
    ),
    ("Ape", "Primate", "The class of large tailless primates"),
    (
        "Hominid",
        "Primate",
        "The class of great apes and human beings",
    ),
    (
        "Human",
        "Hominid",
        "Modern man, the only remaining species of the Homo genus",
    ),
    ("Man", "Human", "The class of male humans"),
    ("Woman", "Human", "The class of female humans"),
    (
        "GeographicArea",
        "Region",
        "A geographic location of any size",
    ),
    (
        "WaterArea",
        "GeographicArea",
        "A body consisting mainly of water",
    ),
    (
        "LandArea",
        "GeographicArea",
        "An area predominantly of dry land",
    ),
    (
        "Artifact",
        "CorpuscularObject",
        "A corpuscular object that is the product of a making",
    ),
    (
        "Device",
        "Artifact",
        "An artifact whose purpose is to serve as an instrument",
    ),
    (
        "MeasuringDevice",
        "Device",
        "A device whose purpose is to measure a physical quantity",
    ),
    (
        "TransportationDevice",
        "Device",
        "A device whose purpose is to transport people or goods",
    ),
    (
        "Vehicle",
        "TransportationDevice",
        "A transportation device that carries its load",
    ),
    (
        "Machine",
        "Device",
        "A device with moving parts that performs work",
    ),
    (
        "Building",
        "Artifact",
        "An artifact with the purpose of sheltering activities",
    ),
    (
        "Quantity",
        "Abstract",
        "Any specification of how many or how much of something there is",
    ),
    (
        "Number",
        "Quantity",
        "A measure of how many things there are or how much there is",
    ),
    (
        "PhysicalQuantity",
        "Quantity",
        "A measure of some quantifiable aspect of the physical world",
    ),
    (
        "Attribute",
        "Abstract",
        "A quality or property of an entity as distinguished from the entity itself",
    ),
    (
        "Relation",
        "Abstract",
        "The class of relations between entities",
    ),
    (
        "Proposition",
        "Abstract",
        "An abstract entity that expresses a complete thought",
    ),
    (
        "SetOrClass",
        "Abstract",
        "The class of sets and classes, i.e. abstract collections",
    ),
    (
        "Graph",
        "Abstract",
        "A mathematical structure of nodes and arcs",
    ),
    (
        "IntentionalProcess",
        "Process",
        "A process that has a specific purpose for its agent",
    ),
    (
        "BiologicalProcess",
        "Process",
        "A process embodied in an organism",
    ),
    ("Motion", "Process", "Any process of movement"),
    (
        "InternalChange",
        "Process",
        "A process which changes the internal properties of its patient",
    ),
    (
        "SocialInteraction",
        "IntentionalProcess",
        "A process involving two or more agents interacting",
    ),
    (
        "Communication",
        "SocialInteraction",
        "A social interaction that conveys information",
    ),
    (
        "Organization",
        "Agent",
        "A corporate or similar institution recognized as an agent",
    ),
    (
        "GroupOfPeople",
        "Agent",
        "Any collection of humans considered as an agent",
    ),
];

/// Emits the synthetic SUMO OWL document with exactly `class_count` classes
/// (skeleton first, then seeded generated subclasses). Used by the
/// committed `gen_ontologies` binary to produce `data/ontologies/sumo.owl`.
pub fn generate_sumo_owl(class_count: usize, seed: u64) -> String {
    assert!(
        class_count >= SUMO_SKELETON.len(),
        "need at least {} classes",
        SUMO_SKELETON.len()
    );
    let mut rng = SplitMix64::seed_from_u64(seed);
    let mut classes: Vec<(String, String, String)> = SUMO_SKELETON
        .iter()
        .map(|&(n, p, d)| (n.to_owned(), p.to_owned(), d.to_owned()))
        .collect();
    let mut used: std::collections::HashSet<String> =
        classes.iter().map(|(n, _, _)| n.clone()).collect();

    // Expand: pick an existing class, prepend a modifier to derive a child.
    while classes.len() < class_count {
        let parent_idx = rng.gen_range(0..classes.len());
        let (parent_name, _, parent_doc) = classes[parent_idx].clone();
        let modifier = MODIFIERS[rng.gen_range(0..MODIFIERS.len())];
        let name = format!("{modifier}{parent_name}");
        if used.contains(&name) || name.len() > 60 {
            continue;
        }
        used.insert(name.clone());
        let doc = format!(
            "The subclass of {parent_name} that is {} in nature. {}",
            modifier.to_lowercase(),
            parent_doc
        );
        classes.push((name, parent_name, doc));
    }

    let mut out = String::with_capacity(classes.len() * 220);
    out.push_str("<?xml version=\"1.0\"?>\n");
    out.push_str(
        "<rdf:RDF xmlns:rdf=\"http://www.w3.org/1999/02/22-rdf-syntax-ns#\"\n         \
         xmlns:rdfs=\"http://www.w3.org/2000/01/rdf-schema#\"\n         \
         xmlns:owl=\"http://www.w3.org/2002/07/owl#\"\n         \
         xml:base=\"http://reliant.teknowledge.com/DAML/SUMO.owl\">\n",
    );
    out.push_str(
        "  <owl:Ontology rdf:about=\"\">\n    \
         <rdfs:comment>Suggested Upper Merged Ontology (synthetic stand-in generated \
         by sst-bench gen_ontologies; seeded and reproducible)</rdfs:comment>\n    \
         <owl:versionInfo>1.0-synthetic</owl:versionInfo>\n  </owl:Ontology>\n",
    );
    for (name, parent, doc) in &classes {
        out.push_str(&format!("  <owl:Class rdf:ID=\"{name}\">\n"));
        out.push_str(&format!("    <rdfs:label>{name}</rdfs:label>\n"));
        out.push_str(&format!("    <rdfs:comment>{doc}</rdfs:comment>\n"));
        if !parent.is_empty() {
            out.push_str(&format!(
                "    <rdfs:subClassOf rdf:resource=\"#{parent}\"/>\n"
            ));
        }
        out.push_str("  </owl:Class>\n");
    }
    out.push_str("</rdf:RDF>\n");
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn generated_taxonomy_has_requested_size() {
        let o = generate_taxonomy(TaxonomySpec {
            concepts: 200,
            ..Default::default()
        });
        assert_eq!(o.concept_count(), 200);
        assert_eq!(o.roots().len(), 1);
        assert!(o.max_depth() >= 3, "should not be a star");
    }

    #[test]
    fn generation_is_deterministic() {
        let spec = TaxonomySpec {
            concepts: 64,
            seed: 11,
            ..Default::default()
        };
        let a = generate_taxonomy(spec);
        let b = generate_taxonomy(spec);
        assert_eq!(a.concept_count(), b.concept_count());
        for id in a.concept_ids() {
            assert_eq!(a.concept(id).name, b.concept(id).name);
            assert_eq!(a.direct_supers(id), b.direct_supers(id));
        }
    }

    #[test]
    fn instances_land_on_concepts() {
        let o = generate_taxonomy(TaxonomySpec {
            concepts: 50,
            instances: 20,
            ..Default::default()
        });
        assert_eq!(o.instances().len(), 20);
    }

    #[test]
    fn sumo_owl_parses_and_has_exact_count() {
        let owl = generate_sumo_owl(150, 42);
        let onto = sst_wrappers::parse_owl(&owl, "sumo_test", "http://sumo").expect("parse");
        // +1 for the implicit owl:Thing root the wrapper adds.
        assert_eq!(onto.concept_count(), 151);
        assert!(onto.concept_by_name("Human").is_some());
        assert!(onto.concept_by_name("Mammal").is_some());
        let human = onto.concept_by_name("Human").unwrap();
        // Entity chain gives Human a depth of at least 8 under Thing.
        assert!(onto.depth(human) >= 8);
    }

    #[test]
    fn sumo_generation_is_deterministic() {
        assert_eq!(generate_sumo_owl(120, 9), generate_sumo_owl(120, 9));
        assert_ne!(generate_sumo_owl(120, 9), generate_sumo_owl(120, 10));
    }
}

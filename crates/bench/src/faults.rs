//! Deterministic fault-injection harness for the ingestion layer.
//!
//! Takes seed fixtures (the real ontology files under `data/` plus small
//! inline documents), derives hostile mutants from them with the vendored
//! [`SplitMix64`] stream — truncations, byte flips, splices — and adds
//! synthetic attacks the mutators cannot reach from well-formed seeds:
//! pathologically deep nesting and oversized literals. Every case is fed
//! to the matching governed parser under [`Limits`]; the only acceptable
//! outcomes are `Ok` or a structured `Err`. A panic, stack overflow, or
//! runaway allocation fails the suite (the process dies), which is
//! exactly the regression the resource-governance layer exists to
//! prevent. Limit violations are counted into `sst-obs` under
//! `<area>.limit.<kind>` and summarized in the [`FaultReport`].
//!
//! All randomness is seeded, so a failing case can be reproduced from its
//! label alone.

use sst_limits::Limits;
use sst_obs::Metrics;

use crate::rng::SplitMix64;

/// The parser a fault case targets.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Format {
    Turtle,
    NTriples,
    RdfXml,
    Sexpr,
    WordNet,
}

impl Format {
    pub fn name(self) -> &'static str {
        match self {
            Format::Turtle => "turtle",
            Format::NTriples => "ntriples",
            Format::RdfXml => "rdfxml",
            Format::Sexpr => "sexpr",
            Format::WordNet => "wordnet",
        }
    }
}

/// One hostile input: a labelled document plus the parser to aim it at.
#[derive(Debug, Clone)]
pub struct FaultCase {
    pub label: String,
    pub format: Format,
    pub input: String,
}

/// Outcome tally of a fault run.
#[derive(Debug, Clone, Default)]
pub struct FaultReport {
    /// Total cases executed.
    pub cases: usize,
    /// Cases the parser still accepted (mutation left the document valid).
    pub accepted: usize,
    /// Cases rejected with a structured error.
    pub rejected: usize,
    /// `<area>.limit.<kind>` counters observed during the run.
    pub limit_counters: Vec<(String, u64)>,
}

/// Truncates `src` at a seeded byte offset (re-validated as UTF-8).
pub fn truncate(rng: &mut SplitMix64, src: &str) -> String {
    let cut = rng.gen_range(0..src.len().max(1));
    String::from_utf8_lossy(&src.as_bytes()[..cut]).into_owned()
}

/// Flips `n` seeded bytes of `src` to seeded values.
pub fn flip_bytes(rng: &mut SplitMix64, src: &str, n: usize) -> String {
    let mut bytes = src.as_bytes().to_vec();
    if bytes.is_empty() {
        return String::new();
    }
    for _ in 0..n {
        let at = rng.gen_range(0..bytes.len());
        bytes[at] = (rng.next_u64() & 0xff) as u8;
    }
    String::from_utf8_lossy(&bytes).into_owned()
}

/// Copies a seeded chunk of `src` over a seeded position — models a
/// corrupted transfer duplicating a block mid-file.
pub fn splice(rng: &mut SplitMix64, src: &str) -> String {
    if src.len() < 2 {
        return src.to_owned();
    }
    let from = rng.gen_range(0..src.len());
    let len = rng
        .gen_range(1..(src.len() - from).max(2))
        .min(src.len() - from);
    let to = rng.gen_range(0..src.len());
    let mut bytes = src.as_bytes().to_vec();
    let chunk: Vec<u8> = bytes[from..from + len].to_vec();
    let end = (to + len).min(bytes.len());
    bytes.splice(to..end, chunk);
    String::from_utf8_lossy(&bytes).into_owned()
}

/// A document nested `depth` levels deep in the format's recursive
/// construct — the stack-overflow attack the depth limit guards against.
pub fn deep_nesting(format: Format, depth: usize) -> String {
    match format {
        Format::Sexpr => {
            let mut s = "(".repeat(depth);
            s.push('x');
            s.push_str(&")".repeat(depth));
            s
        }
        Format::Turtle => {
            // Nested blank node property lists as the object of one triple.
            let mut s = String::from("<http://e/s> <http://e/p> ");
            s.push_str(&"[ <http://e/q> ".repeat(depth));
            s.push_str("<http://e/o>");
            s.push_str(&" ]".repeat(depth));
            s.push_str(" .\n");
            s
        }
        Format::RdfXml => {
            let mut s = String::from(
                "<rdf:RDF xmlns:rdf=\"http://www.w3.org/1999/02/22-rdf-syntax-ns#\" \
                 xmlns:e=\"http://e/\">",
            );
            s.push_str(&"<e:D>".repeat(depth));
            s.push_str(&"</e:D>".repeat(depth));
            s.push_str("</rdf:RDF>");
            s
        }
        // Line-oriented formats have no recursive construct; stress the
        // tokenizer with a pathological run instead.
        Format::NTriples => format!("<http://e/s> <http://e/p> \"{}\" .\n", "a".repeat(depth)),
        Format::WordNet => format!("00000001 03 n 01 {} 0 000 | deep\n", "x_".repeat(depth)),
    }
}

/// A document holding one literal of `len` bytes — the allocation attack
/// the literal limit guards against.
pub fn long_literal(format: Format, len: usize) -> String {
    let payload = "A".repeat(len);
    match format {
        Format::Turtle => format!("<http://e/s> <http://e/p> \"{payload}\" .\n"),
        Format::NTriples => format!("<http://e/s> <http://e/p> \"{payload}\" .\n"),
        Format::RdfXml => format!(
            "<rdf:RDF xmlns:rdf=\"http://www.w3.org/1999/02/22-rdf-syntax-ns#\" \
             xmlns:e=\"http://e/\"><rdf:Description rdf:about=\"http://e/s\">\
             <e:p>{payload}</e:p></rdf:Description></rdf:RDF>"
        ),
        Format::Sexpr => format!("(doc \"{payload}\")"),
        Format::WordNet => format!("00000001 03 n 01 entity 0 000 | {payload}\n"),
    }
}

/// Derives `per_seed` mutants from each seed fixture (cycling through
/// truncation, byte flips, and splices) and appends the synthetic
/// deep-nesting and long-literal attacks for every format.
pub fn build_corpus(seeds: &[(Format, String)], per_seed: usize, seed: u64) -> Vec<FaultCase> {
    let mut rng = SplitMix64::seed_from_u64(seed);
    let mut cases = Vec::new();
    for (idx, (format, src)) in seeds.iter().enumerate() {
        for round in 0..per_seed {
            let (label, input) = match round % 3 {
                0 => ("truncate", truncate(&mut rng, src)),
                1 => ("flip", flip_bytes(&mut rng, src, 1 + round / 3)),
                _ => ("splice", splice(&mut rng, src)),
            };
            cases.push(FaultCase {
                label: format!("{}/{label}#{round}@seed{idx}", format.name()),
                format: *format,
                input,
            });
        }
    }
    for format in [
        Format::Turtle,
        Format::NTriples,
        Format::RdfXml,
        Format::Sexpr,
        Format::WordNet,
    ] {
        cases.push(FaultCase {
            label: format!("{}/deep-nesting", format.name()),
            format,
            input: deep_nesting(format, 200_000),
        });
        cases.push(FaultCase {
            label: format!("{}/long-literal", format.name()),
            format,
            input: long_literal(format, (4 << 20) + 17),
        });
    }
    cases
}

/// Parses one case under `limits`. `Ok(true)` means the parser accepted
/// the document; `Ok(false)` means it returned a structured error. A
/// panic propagates and fails the whole suite by design.
fn run_case(case: &FaultCase, limits: &Limits, metrics: &Metrics) -> bool {
    const BASE: &str = "http://fault.example/";
    match case.format {
        Format::Turtle => {
            sst_rdf::parse_turtle_with_limits(&case.input, BASE, limits, Some(metrics)).is_ok()
        }
        Format::NTriples => sst_rdf::parse_ntriples_with_limits(&case.input, limits).is_ok(),
        Format::RdfXml => {
            sst_rdf::parse_rdfxml_with_limits(&case.input, BASE, limits, Some(metrics)).is_ok()
        }
        Format::Sexpr => {
            sst_sexpr::parse_all_with_limits(&case.input, limits, Some(metrics)).is_ok()
        }
        Format::WordNet => {
            sst_wrappers::parse_wordnet_with_limits(&case.input, "fault", limits).is_ok()
        }
    }
}

/// Runs every case through its governed parser and tallies the outcomes.
///
/// The contract under test: *no input, however corrupted, may panic,
/// overflow the stack, or allocate past the limits* — parsers must return
/// `Ok` or a structured `Err`. Limit-violation counters recorded by the
/// parsers land in `metrics` and are echoed into the report.
pub fn run_fault_suite(cases: &[FaultCase], limits: &Limits, metrics: &Metrics) -> FaultReport {
    let mut report = FaultReport::default();
    for case in cases {
        report.cases += 1;
        if run_case(case, limits, metrics) {
            report.accepted += 1;
        } else {
            report.rejected += 1;
        }
    }
    let snapshot = metrics.snapshot();
    report.limit_counters = snapshot
        .counters
        .iter()
        .filter(|(name, _)| name.contains(".limit."))
        .cloned()
        .collect();
    report
}

#[cfg(test)]
mod tests {
    use super::*;

    fn seeds() -> Vec<(Format, String)> {
        vec![
            (
                Format::Turtle,
                "@prefix e: <http://e/> .\ne:s e:p \"v\" ; e:q e:o .\n".to_owned(),
            ),
            (
                Format::Sexpr,
                "(defconcept STUDENT (?s PERSON) :documentation \"doc\")".to_owned(),
            ),
        ]
    }

    #[test]
    fn corpus_is_deterministic() {
        let a = build_corpus(&seeds(), 6, 42);
        let b = build_corpus(&seeds(), 6, 42);
        assert_eq!(a.len(), b.len());
        for (x, y) in a.iter().zip(&b) {
            assert_eq!(x.label, y.label);
            assert_eq!(x.input, y.input);
        }
    }

    #[test]
    fn suite_survives_without_panicking() {
        let cases = build_corpus(&seeds(), 9, 7);
        let metrics = Metrics::new();
        let report = run_fault_suite(&cases, &Limits::default(), &metrics);
        assert_eq!(report.cases, cases.len());
        assert_eq!(report.accepted + report.rejected, report.cases);
        // The synthetic attacks must be rejected, and rejected *because of
        // a limit*, not by luck of the syntax error path alone.
        assert!(report.rejected >= 10, "attack cases: {report:?}");
        assert!(
            !report.limit_counters.is_empty(),
            "expected limit-violation counters: {report:?}"
        );
    }
}

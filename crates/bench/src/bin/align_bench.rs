//! Alignment-quality harness: measures precision/recall/F1 of the greedy
//! and stable matching engines against seeded-perturbation ground truth,
//! at several blocking widths, and writes `results/BENCH_align.json`.
//!
//! Ground truth comes from `sst_bench::perturb`: the perturbed copy of a
//! seeded taxonomy keeps concept ids index-aligned with the original, so
//! a correspondence is correct iff its source and target concept ids are
//! equal. Perturbation renames, rewords, and re-parents a seeded fraction
//! of concepts, so near-duplicate names make the matching genuinely
//! ambiguous — the regime where matching discipline matters.
//!
//! Usage:
//! ```text
//! cargo run --release -p sst-bench --bin align_bench            # full run
//! cargo run --release -p sst-bench --bin align_bench -- --smoke # CI gate
//! ```
//!
//! Both modes enforce the subsystem's contract: blocked candidate counts
//! stay well under the full n·m rectangle, no source concept has an empty
//! candidate set, stable-mode precision holds a floor, and stable F1 is
//! at least greedy F1 at every width (strictly better in aggregate).

use sst_bench::{data_dir, generate_taxonomy, perturb, Perturbation, TaxonomySpec};
use sst_core::{
    align_with_limits, measure_ids, AlignStats, Alignment, AlignmentConfig, Amalgamation,
    CandidateGen, MatchMode, SstBuilder, SstToolkit,
};
use sst_limits::Limits;

/// Fraction of concepts the perturbation touches.
const STRENGTH: f64 = 0.45;
/// Minimum acceptable stable-mode precision on the seeded ground truth.
const PRECISION_FLOOR: f64 = 0.55;

struct Run {
    mode: MatchMode,
    width: Option<usize>,
    precision: f64,
    recall: f64,
    f1: f64,
    stats: AlignStats,
    seconds: f64,
}

fn build_toolkit(concepts: usize) -> (SstToolkit, String, String) {
    let original = generate_taxonomy(TaxonomySpec {
        concepts,
        branching: 4,
        instances: 0,
        seed: 2026,
    });
    let perturbed = perturb(&original, Perturbation::All, STRENGTH, 77);
    let source = original.name().to_owned();
    let target = perturbed.name().to_owned();
    let sst = SstBuilder::new()
        .register_ontology(original)
        .expect("register original")
        .register_ontology(perturbed)
        .expect("register perturbed")
        .build();
    (sst, source, target)
}

/// Precision/recall/F1 of an alignment against the index-aligned truth
/// (source concept id == target concept id).
fn score_alignment(alignment: &Alignment, truth_size: usize) -> (f64, f64, f64) {
    let proposed = alignment.correspondences.len();
    let correct = alignment
        .correspondences
        .iter()
        .filter(|c| c.source.concept == c.target.concept)
        .count();
    let precision = if proposed == 0 {
        0.0
    } else {
        correct as f64 / proposed as f64
    };
    let recall = correct as f64 / truth_size as f64;
    let f1 = if precision + recall == 0.0 {
        0.0
    } else {
        2.0 * precision * recall / (precision + recall)
    };
    (precision, recall, f1)
}

fn run_one(
    sst: &SstToolkit,
    source: &str,
    target: &str,
    mode: MatchMode,
    candidates: CandidateGen,
    truth_size: usize,
) -> Run {
    let config = AlignmentConfig {
        // Name + structure signal only: the perturbation's near-duplicate
        // names keep the matching ambiguous, which is the regime this
        // harness is probing. (TF-IDF over the synthetic docs is nearly a
        // perfect key and would saturate both engines.)
        measures: vec![
            measure_ids::CONCEPTUAL_SIMILARITY_MEASURE,
            measure_ids::JARO_WINKLER_MEASURE,
        ],
        strategy: Amalgamation::WeightedAverage,
        threshold: 0.35,
        mode,
        candidates,
    };
    let start = std::time::Instant::now();
    let alignment =
        align_with_limits(sst, source, target, &config, &Limits::default()).expect("align");
    let seconds = start.elapsed().as_secs_f64();
    let (precision, recall, f1) = score_alignment(&alignment, truth_size);
    Run {
        mode,
        width: match candidates {
            CandidateGen::Blocked { width } => Some(width),
            CandidateGen::Exhaustive => None,
        },
        precision,
        recall,
        f1,
        stats: alignment.stats,
        seconds,
    }
}

fn render_json(concepts: usize, mode: &str, runs: &[Run]) -> String {
    let rows: Vec<String> = runs
        .iter()
        .map(|r| {
            format!(
                "{{\"mode\":\"{}\",\"width\":{},\"precision\":{:.4},\"recall\":{:.4},\
                 \"f1\":{:.4},\"candidate_pairs\":{},\"admitted_pairs\":{},\
                 \"proposals\":{},\"matches\":{},\"seconds\":{:.4}}}",
                r.mode.name(),
                r.width
                    .map_or("\"exhaustive\"".to_owned(), |w| w.to_string()),
                r.precision,
                r.recall,
                r.f1,
                r.stats.candidate_pairs,
                r.stats.admitted_pairs,
                r.stats.proposals,
                r.stats.matches,
                r.seconds
            )
        })
        .collect();
    let mean = |m: MatchMode| {
        let sel: Vec<f64> = runs
            .iter()
            .filter(|r| r.mode == m && r.width.is_some())
            .map(|r| r.f1)
            .collect();
        sel.iter().sum::<f64>() / sel.len() as f64
    };
    let stable_f1 = mean(MatchMode::Stable);
    let greedy_f1 = mean(MatchMode::Greedy);
    format!(
        "{{\"workload\":{{\"concepts\":{concepts},\"strength\":{STRENGTH},\
         \"perturbation\":\"all\",\"mode\":\"{mode}\"}},\
         \"runs\":[{}],\
         \"mean_greedy_f1\":{greedy_f1:.4},\"mean_stable_f1\":{stable_f1:.4},\
         \"stable_beats_greedy\":{}}}",
        rows.join(","),
        stable_f1 > greedy_f1
    )
}

fn main() {
    let smoke = std::env::args().any(|a| a == "--smoke");
    let (concepts, widths): (usize, &[usize]) = if smoke {
        (150, &[4, 8])
    } else {
        (500, &[4, 8, 16, 32])
    };
    let (sst, source, target) = build_toolkit(concepts);
    println!(
        "align_bench: {concepts} concepts, strength {STRENGTH}, widths {widths:?} ({})",
        if smoke { "smoke" } else { "full" }
    );

    let mut runs = Vec::new();
    for &width in widths {
        for mode in [MatchMode::Greedy, MatchMode::Stable] {
            let run = run_one(
                &sst,
                &source,
                &target,
                mode,
                CandidateGen::Blocked { width },
                concepts,
            );
            println!(
                "  {:>6} width {width:>2}: P {:.4}  R {:.4}  F1 {:.4}  candidates {} ({:.1}% of n*m)  {:.3}s",
                run.mode.name(),
                run.precision,
                run.recall,
                run.f1,
                run.stats.candidate_pairs,
                100.0 * run.stats.candidate_pairs as f64 / (concepts * concepts) as f64,
                run.seconds
            );
            // The blocked generator must never materialize the rectangle,
            // and every source concept must get candidates.
            assert!(
                run.stats.candidate_pairs < concepts * concepts,
                "blocked candidate count reached n*m"
            );
            assert!(run.stats.candidate_pairs > 0, "empty candidate generation");
            assert_eq!(
                run.stats.sources_without_candidates, 0,
                "source concepts with empty candidate sets at width {width}"
            );
            runs.push(run);
        }
    }
    if !smoke {
        for mode in [MatchMode::Greedy, MatchMode::Stable] {
            let run = run_one(
                &sst,
                &source,
                &target,
                mode,
                CandidateGen::Exhaustive,
                concepts,
            );
            println!(
                "  {:>6} exhaustive: P {:.4}  R {:.4}  F1 {:.4}  {:.3}s",
                run.mode.name(),
                run.precision,
                run.recall,
                run.f1,
                run.seconds
            );
            runs.push(run);
        }
    }

    // Quality gates.
    for &width in widths {
        let f1_of = |m: MatchMode| {
            runs.iter()
                .find(|r| r.mode == m && r.width == Some(width))
                .map(|r| r.f1)
                .expect("run recorded")
        };
        assert!(
            f1_of(MatchMode::Stable) >= f1_of(MatchMode::Greedy),
            "stable F1 below greedy F1 at width {width}"
        );
    }
    let mean = |m: MatchMode| {
        let sel: Vec<f64> = runs
            .iter()
            .filter(|r| r.mode == m && r.width.is_some())
            .map(|r| r.f1)
            .collect();
        sel.iter().sum::<f64>() / sel.len() as f64
    };
    let (greedy_f1, stable_f1) = (mean(MatchMode::Greedy), mean(MatchMode::Stable));
    println!("  mean F1: greedy {greedy_f1:.4}  stable {stable_f1:.4}");
    assert!(
        stable_f1 > greedy_f1,
        "stable mean F1 {stable_f1:.4} does not beat greedy {greedy_f1:.4}"
    );
    let stable_precision = runs
        .iter()
        .filter(|r| r.mode == MatchMode::Stable && r.width.is_some())
        .map(|r| r.precision)
        .fold(f64::INFINITY, f64::min);
    assert!(
        stable_precision >= PRECISION_FLOOR,
        "stable precision {stable_precision:.4} below the {PRECISION_FLOOR} floor"
    );

    let results = data_dir().join("../results");
    std::fs::create_dir_all(&results).expect("results dir");
    std::fs::write(
        results.join("BENCH_align.json"),
        render_json(concepts, if smoke { "smoke" } else { "full" }, &runs),
    )
    .expect("write BENCH_align");
    println!("(written to results/BENCH_align.json)");
}

//! Per-measure latency table from the observability layer: drives the
//! Table 1 workload (plus one ranking pass per measure) against the bundled
//! corpus and exports what the `sst-obs` registry recorded as
//! `results/BENCH_obs.json` — call counts, mean / p50 / p99 latency, and
//! the full bucket histograms, one entry per measure in Table 1's shape.
//!
//! Usage:
//! ```text
//! cargo run --release -p sst-bench --bin obs_table
//! ```

use sst_bench::{data_dir, load_corpus, names};
use sst_core::{measure_ids as m, ConceptSet, SstToolkit};
use sst_obs::HistogramSnapshot;

const QUERY: (&str, &str) = ("Professor", names::DAML_UNIV);

const ROWS: &[(&str, &str)] = &[
    ("Professor", names::DAML_UNIV),
    ("AssistantProfessor", names::UNIV_BENCH),
    ("EMPLOYEE", names::COURSES),
    ("Human", names::SUMO),
    ("Mammal", names::SUMO),
];

const MEASURES: &[usize] = &[
    m::CONCEPTUAL_SIMILARITY_MEASURE,
    m::LEVENSHTEIN_MEASURE,
    m::LIN_MEASURE,
    m::RESNIK_MEASURE,
    m::SHORTEST_PATH_MEASURE,
    m::TFIDF_MEASURE,
];

/// How many times the Table 1 pairwise workload is repeated so the latency
/// histograms have enough observations for stable quantiles.
const REPEATS: usize = 50;

fn drive_workload(sst: &SstToolkit) {
    for _ in 0..REPEATS {
        for &(concept, ontology) in ROWS {
            sst.get_similarities(QUERY.0, QUERY.1, concept, ontology, MEASURES)
                .expect("similarity");
        }
    }
    // One whole-operation ranking pass per measure (the paper's S2 service).
    for &mid in MEASURES {
        sst.most_similar(QUERY.0, QUERY.1, &ConceptSet::All, 10, mid)
            .expect("most similar");
    }
}

fn histogram_json(h: &HistogramSnapshot) -> String {
    let buckets: Vec<String> = h
        .bounds
        .iter()
        .zip(&h.bucket_counts)
        .map(|(le, count)| format!("{{\"le\":{le},\"count\":{count}}}"))
        .collect();
    format!(
        "{{\"count\":{},\"mean_seconds\":{},\"p50_seconds\":{},\"p99_seconds\":{},\"buckets\":[{}]}}",
        h.count,
        h.mean_seconds(),
        h.quantile_seconds(0.5),
        h.quantile_seconds(0.99),
        buckets.join(",")
    )
}

fn render_json(sst: &SstToolkit) -> String {
    let snap = sst.metrics().snapshot();
    let mut measures = Vec::new();
    for &mid in MEASURES {
        let info = sst.measure_info(mid).expect("measure info");
        let name = info.name;
        let pair_calls = snap
            .counter(&format!("core.pair.calls.{name}"))
            .unwrap_or(0);
        let pair = snap
            .histogram(&format!("core.pair.latency.{name}"))
            .expect("pair latency recorded");
        let rank = snap
            .histogram(&format!("core.rank.latency.{name}"))
            .expect("rank latency recorded");
        measures.push(format!(
            "{{\"measure\":\"{name}\",\"display\":\"{}\",\"pair_calls\":{pair_calls},\
             \"pair_latency\":{},\"rank_latency\":{}}}",
            info.display,
            histogram_json(pair),
            histogram_json(rank)
        ));
    }
    format!(
        "{{\"workload\":{{\"query\":\"{}:{}\",\"rows\":{},\"repeats\":{REPEATS}}},\
         \"measures\":[{}]}}",
        QUERY.1,
        QUERY.0,
        ROWS.len(),
        measures.join(",")
    )
}

fn render_text(sst: &SstToolkit) -> String {
    let snap = sst.metrics().snapshot();
    let mut out = String::from(
        "Per-measure latency (Table 1 workload)\n\n\
         Measure                 calls      mean        p50        p99\n",
    );
    out.push_str(&"-".repeat(64));
    out.push('\n');
    for &mid in MEASURES {
        let info = sst.measure_info(mid).expect("measure info");
        let pair = snap
            .histogram(&format!("core.pair.latency.{}", info.name))
            .expect("pair latency recorded");
        out.push_str(&format!(
            "{:<20} {:>8} {:>10.2e} {:>10.2e} {:>10.2e}\n",
            info.display,
            pair.count,
            pair.mean_seconds(),
            pair.quantile_seconds(0.5),
            pair.quantile_seconds(0.99),
        ));
    }
    out
}

fn main() {
    let sst = load_corpus(sst_core::TreeMode::SuperThing, false);
    drive_workload(&sst);
    println!("{}", render_text(&sst));

    let results = data_dir().join("../results");
    std::fs::create_dir_all(&results).expect("results dir");
    std::fs::write(results.join("BENCH_obs.json"), render_json(&sst)).expect("write BENCH_obs");
    println!("(written to results/BENCH_obs.json)");
}

//! Snapshot persistence self-audit: times a cold corpus build (OWL/RDF
//! parse + toolkit preparation) against an `SSTSNAP1` snapshot load,
//! verifies that the loaded toolkit scores *bit-identically* to the cold
//! one on every registered measure, and writes
//! `results/BENCH_snapshot.json` with an honest `identity` flag.
//!
//! Usage:
//! ```text
//! cargo run --release -p sst-bench --bin snapshot_bench                   # full run (archives JSON)
//! cargo run --release -p sst-bench --bin snapshot_bench -- --smoke        # CI gate (asserts, no JSON)
//! cargo run --release -p sst-bench --bin snapshot_bench -- --build PATH   # write a snapshot file
//! cargo run --release -p sst-bench --bin snapshot_bench -- --load PATH    # load + verify a snapshot file
//! ```
//!
//! Both bench modes enforce the subsystem's contract: round-trip
//! bit-identity on every measure over a cross-ontology concept set, and
//! a snapshot load faster than the cold parse (the whole point of
//! persisting the prepared store).

use std::time::Instant;

use sst_bench::{data_dir, load_corpus, names};
use sst_core::{BatchMode, ConceptRef, ConceptSet, SstToolkit, TreeMode};

/// Timing repetitions per path; the median is reported.
const REPEATS: usize = 5;

fn cold_build() -> SstToolkit {
    load_corpus(TreeMode::SuperThing, false)
}

/// The cross-ontology probe set from the identity suites: taxonomy
/// positions, names, feature sets, documentation, and instances.
fn mixed_set() -> ConceptSet {
    ConceptSet::List(vec![
        ConceptRef::new("Professor", names::DAML_UNIV),
        ConceptRef::new("AssistantProfessor", names::UNIV_BENCH),
        ConceptRef::new("FullProfessor", names::UNIV_BENCH),
        ConceptRef::new("Student", names::UNIV_BENCH),
        ConceptRef::new("GraduateStudent", names::UNIV_BENCH),
        ConceptRef::new("Publication", names::UNIV_BENCH),
        ConceptRef::new("EMPLOYEE", names::COURSES),
        ConceptRef::new("COURSE", names::COURSES),
        ConceptRef::new("Human", names::SUMO),
        ConceptRef::new("Mammal", names::SUMO),
        ConceptRef::new("Publication", names::SWRC),
        ConceptRef::new("PhDStudent", names::SWRC),
    ])
}

/// True iff both toolkits score identical IEEE 754 bits on every measure
/// over the probe set.
fn bit_identical(a: &SstToolkit, b: &SstToolkit) -> bool {
    if a.measure_count() != b.measure_count() {
        return false;
    }
    let set = mixed_set();
    for measure in 0..a.measure_count() {
        let (la, ma) = match a.similarity_matrix_mode(&set, measure, BatchMode::Prepared) {
            Ok(m) => m,
            Err(_) => return false,
        };
        let (lb, mb) = match b.similarity_matrix_mode(&set, measure, BatchMode::Prepared) {
            Ok(m) => m,
            Err(_) => return false,
        };
        if la != lb {
            return false;
        }
        for (ra, rb) in ma.iter().zip(&mb) {
            for (va, vb) in ra.iter().zip(rb) {
                if va.to_bits() != vb.to_bits() {
                    return false;
                }
            }
        }
    }
    true
}

fn median_secs(mut samples: Vec<f64>) -> f64 {
    samples.sort_by(|x, y| x.total_cmp(y));
    samples[samples.len() / 2]
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();

    // Subcommands for `cargo xtask snapshot build|load`.
    if let Some(i) = args.iter().position(|a| a == "--build") {
        let path = args.get(i + 1).expect("--build requires a PATH");
        let sst = cold_build();
        let bytes = sst.export_snapshot();
        std::fs::write(path, &bytes).expect("write snapshot");
        println!(
            "snapshot_bench --build: wrote {} bytes ({} measures) to {path}",
            bytes.len(),
            sst.measure_count()
        );
        return;
    }
    if let Some(i) = args.iter().position(|a| a == "--load") {
        let path = args.get(i + 1).expect("--load requires a PATH");
        let bytes = std::fs::read(path).expect("read snapshot");
        let started = Instant::now();
        let sst = SstToolkit::import_snapshot(&bytes, &sst_limits::Limits::default())
            .expect("import snapshot");
        let elapsed = started.elapsed().as_secs_f64();
        assert!(
            bit_identical(&sst, &cold_build()),
            "loaded snapshot must score bit-identically to a cold build"
        );
        println!(
            "snapshot_bench --load: {} bytes -> {} measures in {elapsed:.3}s, \
             bit-identical to cold build",
            bytes.len(),
            sst.measure_count()
        );
        return;
    }

    let smoke = args.iter().any(|a| a == "--smoke");
    let repeats = if smoke { 2 } else { REPEATS };
    let limits = sst_limits::Limits::default();

    // Cold path: full OWL/RDF parse + toolkit preparation, repeated.
    let mut cold_samples = Vec::with_capacity(repeats);
    let mut cold = None;
    for _ in 0..repeats {
        let started = Instant::now();
        let sst = cold_build();
        cold_samples.push(started.elapsed().as_secs_f64());
        cold = Some(sst);
    }
    let cold_sst = cold.expect("at least one cold build");
    let cold_s = median_secs(cold_samples);

    let bytes = cold_sst.export_snapshot();

    // Snapshot path: decode + rebuild from the persisted arenas.
    let mut load_samples = Vec::with_capacity(repeats);
    let mut loaded = None;
    for _ in 0..repeats {
        let started = Instant::now();
        let sst = SstToolkit::import_snapshot(&bytes, &limits).expect("import snapshot");
        load_samples.push(started.elapsed().as_secs_f64());
        loaded = Some(sst);
    }
    let loaded_sst = loaded.expect("at least one snapshot load");
    let load_s = median_secs(load_samples);

    let identity = bit_identical(&cold_sst, &loaded_sst);
    let speedup = cold_s / load_s.max(1e-9);

    println!(
        "snapshot_bench: cold parse {cold_s:.3}s, snapshot load {load_s:.3}s \
         ({speedup:.1}x), {} bytes, identity={identity}",
        bytes.len()
    );

    assert!(
        identity,
        "snapshot round trip must be bit-identical on every measure"
    );
    assert!(
        load_s < cold_s,
        "snapshot load ({load_s:.3}s) must beat the cold parse ({cold_s:.3}s)"
    );

    if smoke {
        println!("snapshot_bench --smoke: persistence contract holds");
        return;
    }

    let results = data_dir().join("../results");
    std::fs::create_dir_all(&results).expect("results dir");
    let json = format!(
        "{{\n  \"snapshot_bytes\": {},\n  \"measures\": {},\n  \
         \"cold_parse_s\": {cold_s:.4},\n  \"snapshot_load_s\": {load_s:.4},\n  \
         \"speedup\": {speedup:.2},\n  \"identity\": {identity}\n}}\n",
        bytes.len(),
        cold_sst.measure_count(),
    );
    std::fs::write(results.join("BENCH_snapshot.json"), json).expect("write BENCH_snapshot");
    println!("(written to results/BENCH_snapshot.json)");
}

//! Fault-injection gate: mutates the seed ontology fixtures under
//! `data/` into hostile inputs and drives every governed parser over
//! them, asserting the ingestion layer's robustness contract — any
//! input yields `Ok` or a structured `Err`; never a panic, stack
//! overflow, or runaway allocation.
//!
//! Usage:
//! ```text
//! cargo run --release -p sst-bench --bin fault_smoke             # full run
//! cargo run --release -p sst-bench --bin fault_smoke -- --smoke  # CI gate
//! ```
//!
//! `--smoke` derives fewer mutants per fixture so the gate stays fast;
//! both modes run the synthetic deep-nesting and long-literal attacks.
//! The fault corpus is seeded, so any failure reproduces exactly.

use sst_bench::{build_corpus, data_dir, run_fault_suite, Format};
use sst_limits::Limits;
use sst_obs::Metrics;

/// Mutants derived per seed fixture (cycling truncate/flip/splice).
const FULL_MUTANTS: usize = 120;
const SMOKE_MUTANTS: usize = 18;
/// The corpus stream seed; bump to explore a fresh mutation stream.
const SEED: u64 = 0x5357_4F51_4121;

fn read_fixture(rel: &str) -> String {
    let path = data_dir().join(rel);
    std::fs::read_to_string(&path).unwrap_or_else(|e| panic!("cannot read {}: {e}", path.display()))
}

fn main() {
    let smoke = std::env::args().any(|a| a == "--smoke");
    let per_seed = if smoke { SMOKE_MUTANTS } else { FULL_MUTANTS };

    // Seed fixtures: the real corpus files, plus inline Turtle/N-Triples
    // seeds (the checked-in ontologies are RDF/XML, PowerLoom, WordNet).
    let mut seeds = vec![
        (Format::RdfXml, read_fixture("ontologies/univ-bench.owl")),
        (Format::RdfXml, read_fixture("ontologies/swrc.owl")),
        (Format::RdfXml, read_fixture("ontologies/univ1.0.daml")),
        (Format::Sexpr, read_fixture("ontologies/course.ploom")),
        (Format::WordNet, read_fixture("wordnet/data.noun")),
        (Format::WordNet, read_fixture("wordnet/index.noun")),
        (
            Format::Turtle,
            "@prefix owl: <http://www.w3.org/2002/07/owl#> .\n\
             @prefix rdfs: <http://www.w3.org/2000/01/rdf-schema#> .\n\
             @prefix : <http://e/#> .\n\
             :A a owl:Class ; rdfs:comment \"root \\u00e9class\" .\n\
             :B a owl:Class ; rdfs:subClassOf :A ; :rel ( :A [ :p :A ] ) .\n"
                .to_owned(),
        ),
        (
            Format::NTriples,
            "<http://e/s> <http://e/p> \"v\" .\n\
             <http://e/s> <http://e/q> _:b0 .\n\
             _:b0 <http://e/r> \"\\u0041 tail\"@en .\n"
                .to_owned(),
        ),
    ];
    // The generated SUMO fixture is optional (produced by gen_ontologies).
    let sumo = data_dir().join("ontologies/sumo.owl");
    if sumo.exists() {
        seeds.push((Format::RdfXml, read_fixture("ontologies/sumo.owl")));
    }

    let cases = build_corpus(&seeds, per_seed, SEED);
    let metrics = Metrics::new();
    let report = run_fault_suite(&cases, &Limits::default(), &metrics);

    println!(
        "fault corpus: {} cases from {} seeds ({} mutants each + synthetic attacks)",
        report.cases,
        seeds.len(),
        per_seed
    );
    println!(
        "  accepted: {:>5}  (mutation left the document parseable)",
        report.accepted
    );
    println!(
        "  rejected: {:>5}  (structured error returned)",
        report.rejected
    );
    println!("  limit violations by counter:");
    if report.limit_counters.is_empty() {
        println!("    (none)");
    } else {
        for (name, value) in &report.limit_counters {
            println!("    {name:<32} {value}");
        }
    }

    // Gate conditions. Reaching this line at all means no parser panicked
    // or overflowed the stack; beyond that, the synthetic attacks must
    // have tripped the limits rather than slipped through.
    assert_eq!(report.accepted + report.rejected, report.cases);
    assert!(
        !report.limit_counters.is_empty(),
        "synthetic attacks failed to trip any resource limit"
    );
    println!("fault smoke: OK");
}

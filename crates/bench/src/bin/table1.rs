//! Reproduces **Table 1** of the paper: similarity of
//! `base1_0_daml:Professor` to concepts from the other ontologies under six
//! measures (Conceptual Similarity / Wu-Palmer, Levenshtein, Lin, Resnik,
//! Shortest Path, TFIDF).
//!
//! Usage:
//! ```text
//! cargo run -p sst-bench --bin table1              # the paper's table
//! cargo run -p sst-bench --bin table1 -- --dissimilar   # §3's k-most-dissimilar service
//! ```
//!
//! Absolute values differ from the paper (synthetic stand-in ontologies;
//! see DESIGN.md §3) — the *shape* is what is reproduced: self-comparison
//! maximal (Resnik unnormalized ≫ 1), cross-ontology Lin/Resnik collapsing
//! to 0 through the Super-Thing root, and TFIDF ranking
//! `AssistantProfessor` far above `Human`/`Mammal`.

use sst_bench::{data_dir, load_corpus, names};
use sst_core::{measure_ids as m, ConceptSet, SstToolkit, TreeMode};

const QUERY: (&str, &str) = ("Professor", names::DAML_UNIV);

const ROWS: &[(&str, &str)] = &[
    ("Professor", names::DAML_UNIV),
    ("AssistantProfessor", names::UNIV_BENCH),
    ("EMPLOYEE", names::COURSES),
    ("Human", names::SUMO),
    ("Mammal", names::SUMO),
];

const MEASURES: &[usize] = &[
    m::CONCEPTUAL_SIMILARITY_MEASURE,
    m::LEVENSHTEIN_MEASURE,
    m::LIN_MEASURE,
    m::RESNIK_MEASURE,
    m::SHORTEST_PATH_MEASURE,
    m::TFIDF_MEASURE,
];

/// The values printed in the paper's Table 1, for side-by-side comparison.
const PAPER_VALUES: &[[f64; 6]] = &[
    [0.7778, 1.0, 0.8792, 12.7006, 1.0, 1.0],
    [0.1111, 0.1029, 0.0, 0.0, 0.0588, 0.3224],
    [0.1176, 0.0294, 0.0, 0.0, 0.0625, 0.0475],
    [0.1, 0.0028, 0.0, 0.0, 0.0526, 0.0151],
    [0.0909, 0.0032, 0.0, 0.0, 0.0476, 0.0184],
];

fn render_table(sst: &SstToolkit) -> String {
    let mut out = String::new();
    out.push_str(&format!(
        "Table 1 — comparisons of {}:{} with concepts from other ontologies\n\n",
        QUERY.1, QUERY.0
    ));
    let headers: Vec<String> = MEASURES
        .iter()
        .map(|&mid| sst.measure_info(mid).unwrap().display)
        .collect();
    out.push_str(&format!("{:<38}", "Concept"));
    for h in &headers {
        out.push_str(&format!("{h:>14}"));
    }
    out.push('\n');
    out.push_str(&"-".repeat(38 + 14 * headers.len()));
    out.push('\n');
    for (ri, &(concept, ontology)) in ROWS.iter().enumerate() {
        let values = sst
            .get_similarities(QUERY.0, QUERY.1, concept, ontology, MEASURES)
            .expect("similarity");
        out.push_str(&format!("{:<38}", format!("{ontology}:{concept}")));
        for v in &values {
            out.push_str(&format!("{v:>14.4}"));
        }
        out.push('\n');
        out.push_str(&format!("{:<38}", "  (paper)"));
        for p in &PAPER_VALUES[ri] {
            out.push_str(&format!("{p:>14.4}"));
        }
        out.push('\n');
    }
    out
}

fn render_dissimilar(sst: &SstToolkit) -> String {
    let mut out = String::new();
    out.push_str(&format!(
        "\n§3 service — the 5 most dissimilar concepts for {}:{} (Conceptual Similarity):\n",
        QUERY.1, QUERY.0
    ));
    let rows = sst
        .most_dissimilar(
            QUERY.0,
            QUERY.1,
            &ConceptSet::All,
            5,
            m::CONCEPTUAL_SIMILARITY_MEASURE,
        )
        .expect("most dissimilar");
    for r in rows {
        out.push_str(&format!(
            "  {:<40} {:.4}\n",
            format!("{}:{}", r.ontology, r.concept),
            r.similarity
        ));
    }
    out
}

fn main() {
    let dissimilar = std::env::args().any(|a| a == "--dissimilar");
    let sst = load_corpus(TreeMode::SuperThing, false);
    let mut report = render_table(&sst);
    if dissimilar {
        report.push_str(&render_dissimilar(&sst));
    }
    println!("{report}");

    let results = data_dir().join("../results");
    std::fs::create_dir_all(&results).expect("results dir");
    std::fs::write(results.join("table1.txt"), &report).expect("write table1.txt");
    println!("(written to results/table1.txt)");
}

//! Reproduces **Figure 3** of the paper: the comparison of the two ways to
//! build a single tree for a set of ontologies.
//!
//! Setup (exactly the figure's): a university ontology (`Student`,
//! `Professor` under `Thing`) and an ornithology ontology (`Blackbird`,
//! `Sparrow` under `Thing`). Under the rejected *merged-Thing* design the
//! graph distance from `Student` to `Professor` equals the distance from
//! `Student` to `Blackbird`, so every distance-based measure scores a
//! professor and a blackbird as equally similar to a student. The paper's
//! *Super-Thing* design keeps the domains separated.
//!
//! Usage: `cargo run -p sst-bench --bin figure3`

use sst_bench::data_dir;
use sst_core::{measure_ids as m, SstBuilder, SstToolkit, TreeMode};
use sst_soqa::{Ontology, OntologyBuilder, OntologyMetadata};

fn university() -> Ontology {
    let mut b = OntologyBuilder::new(OntologyMetadata {
        name: "ontology1".into(),
        language: "OWL".into(),
        documentation: Some("The university domain of Figure 3".into()),
        ..OntologyMetadata::default()
    });
    let thing = b.concept("Thing");
    for name in ["Student", "Professor"] {
        let c = b.concept(name);
        b.add_subclass(c, thing);
    }
    b.build()
}

fn ornithology() -> Ontology {
    let mut b = OntologyBuilder::new(OntologyMetadata {
        name: "ontology2".into(),
        language: "OWL".into(),
        documentation: Some("The ornithology domain of Figure 3".into()),
        ..OntologyMetadata::default()
    });
    let thing = b.concept("Thing");
    for name in ["Blackbird", "Sparrow"] {
        let c = b.concept(name);
        b.add_subclass(c, thing);
    }
    b.build()
}

fn toolkit(mode: TreeMode) -> SstToolkit {
    SstBuilder::new()
        .register_ontology(university())
        .expect("register university")
        .register_ontology(ornithology())
        .expect("register ornithology")
        .tree_mode(mode)
        .build()
}

fn report(sst: &SstToolkit, label: &str, out: &mut String) {
    out.push_str(&format!("\n{label}\n{}\n", "-".repeat(label.len())));
    let pairs = [
        ("Student", "ontology1", "Professor", "ontology1"),
        ("Student", "ontology1", "Blackbird", "ontology2"),
    ];
    for measure in [
        m::SHORTEST_PATH_MEASURE,
        m::EDGE_MEASURE,
        m::CONCEPTUAL_SIMILARITY_MEASURE,
    ] {
        let info = sst.measure_info(measure).unwrap();
        out.push_str(&format!("  {:<24}", info.display));
        for (c1, o1, c2, o2) in pairs {
            let v = sst.get_similarity(c1, o1, c2, o2, measure).unwrap();
            out.push_str(&format!("  sim({c1}, {c2}) = {v:.4}"));
        }
        out.push('\n');
    }
    // Raw graph distances, the quantity Fig. 3 argues about.
    let d = |c1: &str, o1: &str, c2: &str, o2: &str| {
        let a = sst.soqa().resolve(o1, c1).unwrap();
        let b = sst.soqa().resolve(o2, c2).unwrap();
        sst.tree()
            .taxonomy()
            .shortest_path(sst.tree().node(a), sst.tree().node(b))
            .unwrap()
    };
    out.push_str(&format!(
        "  graph distance          d(Student, Professor) = {}   d(Student, Blackbird) = {}\n",
        d("Student", "ontology1", "Professor", "ontology1"),
        d("Student", "ontology1", "Blackbird", "ontology2"),
    ));
}

fn main() {
    let mut out =
        String::from("Figure 3 — approaches to building a single tree for a set of ontologies\n");
    report(
        &toolkit(TreeMode::SuperThing),
        "(a) Super-Thing tree (the paper's design: domains stay separated)",
        &mut out,
    );
    report(
        &toolkit(TreeMode::MergedThing),
        "(b) merged-Thing tree (rejected: Student as similar to Blackbird as to Professor)",
        &mut out,
    );
    out.push_str(
        "\nUnder (b) the distances coincide, so distance-based measures cannot\n\
         distinguish in-domain from cross-domain concepts — the paper's argument\n\
         for introducing the Super Thing root.\n",
    );
    println!("{out}");

    let results = data_dir().join("../results");
    std::fs::create_dir_all(&results).expect("results dir");
    std::fs::write(results.join("figure3.txt"), &out).expect("write figure3.txt");
    println!("(written to results/figure3.txt)");
}

//! Prepared-context batch engine benchmark: times the full-registry
//! similarity-matrix workload (`similarity_matrix` and
//! `similarity_matrix_parallel`) in `Naive` vs `Prepared` batch mode on a
//! seeded synthetic two-ontology corpus, verifying bit-identity of every
//! cell on every measure, and writes `results/BENCH_matrix.json`.
//!
//! Usage:
//! ```text
//! cargo run --release -p sst-bench --bin matrix_bench                  # full run
//! cargo run --release -p sst-bench --bin matrix_bench -- --smoke       # CI gate
//! cargo run --release -p sst-bench --bin matrix_bench -- --threads 1,2,4,8
//! ```
//!
//! `--smoke` skips the timing loops (and the JSON export) and only checks
//! correctness — prepared serial and parallel matrices must reproduce the
//! naive path bit-for-bit on a smaller fixture. `--threads` sets the
//! thread counts of the scaling sweep (default `1,2,4,8`); the first
//! sweep entry is the baseline the per-count speedup is measured against.
//!
//! Bit-identity is *recorded*, not assumed: every measure row carries a
//! `bit_identical` flag computed by comparing all four paths cell by cell,
//! and `ci.sh` fails the build when any flag is false.

use std::time::Instant;

use sst_bench::{data_dir, generate_taxonomy, TaxonomySpec};
use sst_core::{BatchMode, ConceptSet, SchedStats, SstBuilder, SstToolkit};

/// Worker threads for the headline parallel-matrix comparison.
const THREADS: usize = 4;
/// Timing repetitions per (measure, mode); the median is reported.
const REPEATS: usize = 3;
/// Corpus for the thread-scaling sweep. Larger than the per-measure
/// comparison corpus so the O(n²) scoring work dominates the serial
/// per-call prepare and thread scaling is actually measurable.
const SWEEP_PRIMARY: usize = 320;
const SWEEP_SECONDARY: usize = 160;

fn build_toolkit(primary: usize, secondary: usize) -> SstToolkit {
    // Two ontologies so the matrix crosses ontology boundaries (lowest
    // common ancestors through Super Thing, distinct documentation
    // vocabularies). Instances feed the IC corpus.
    let a = generate_taxonomy(TaxonomySpec {
        concepts: primary,
        branching: 4,
        instances: primary / 2,
        seed: 41,
    });
    let b = generate_taxonomy(TaxonomySpec {
        concepts: secondary,
        branching: 6,
        instances: secondary / 4,
        seed: 97,
    });
    SstBuilder::new()
        .register_ontology(a)
        .expect("register primary")
        .register_ontology(b)
        .expect("register secondary")
        .build()
}

/// Whether `a` and `b` agree bit-for-bit; prints the first divergence.
fn check_identical(name: &str, what: &str, a: &[Vec<f64>], b: &[Vec<f64>]) -> bool {
    for (i, (ra, rb)) in a.iter().zip(b).enumerate() {
        for (j, (va, vb)) in ra.iter().zip(rb).enumerate() {
            if va.to_bits() != vb.to_bits() {
                println!("  !! {name}: {what} diverges at [{i}][{j}]: {va} vs {vb}");
                return false;
            }
        }
    }
    true
}

/// Median wall-clock seconds of `REPEATS` runs of `f`.
fn time_median(mut f: impl FnMut()) -> f64 {
    let mut samples: Vec<f64> = (0..REPEATS)
        .map(|_| {
            let start = Instant::now();
            f();
            start.elapsed().as_secs_f64()
        })
        .collect();
    samples.sort_by(f64::total_cmp);
    samples[samples.len() / 2]
}

struct Row {
    name: String,
    naive_s: f64,
    prepared_s: f64,
    naive_par_s: f64,
    prepared_par_s: f64,
    bit_identical: bool,
}

impl Row {
    fn speedup(&self) -> f64 {
        self.naive_s / self.prepared_s
    }

    fn speedup_par(&self) -> f64 {
        self.naive_par_s / self.prepared_par_s
    }
}

/// One measure: record bit-identity across all four paths, then time them.
fn bench_measure(sst: &SstToolkit, measure: usize, timed: bool) -> Row {
    let set = ConceptSet::All;
    let info = sst.measure_info(measure).expect("measure info");

    let (_, naive) = sst
        .similarity_matrix_mode(&set, measure, BatchMode::Naive)
        .expect("naive matrix");
    let (_, prepared) = sst
        .similarity_matrix_mode(&set, measure, BatchMode::Prepared)
        .expect("prepared matrix");
    let (_, prepared_par) = sst
        .similarity_matrix_parallel_mode(&set, measure, THREADS, BatchMode::Prepared)
        .expect("prepared parallel matrix");
    let (_, naive_par) = sst
        .similarity_matrix_parallel_mode(&set, measure, THREADS, BatchMode::Naive)
        .expect("naive parallel matrix");
    let bit_identical = check_identical(&info.name, "prepared vs naive", &naive, &prepared)
        & check_identical(&info.name, "prepared parallel", &naive, &prepared_par)
        & check_identical(&info.name, "naive parallel", &naive, &naive_par);

    let mut row = Row {
        name: info.name.clone(),
        naive_s: 0.0,
        prepared_s: 0.0,
        naive_par_s: 0.0,
        prepared_par_s: 0.0,
        bit_identical,
    };
    if !timed {
        return row;
    }
    row.naive_s = time_median(|| {
        std::hint::black_box(sst.similarity_matrix_mode(&set, measure, BatchMode::Naive))
            .expect("naive matrix");
    });
    row.prepared_s = time_median(|| {
        std::hint::black_box(sst.similarity_matrix_mode(&set, measure, BatchMode::Prepared))
            .expect("prepared matrix");
    });
    row.naive_par_s = time_median(|| {
        std::hint::black_box(sst.similarity_matrix_parallel_mode(
            &set,
            measure,
            THREADS,
            BatchMode::Naive,
        ))
        .expect("naive parallel matrix");
    });
    row.prepared_par_s = time_median(|| {
        std::hint::black_box(sst.similarity_matrix_parallel_mode(
            &set,
            measure,
            THREADS,
            BatchMode::Prepared,
        ))
        .expect("prepared parallel matrix");
    });
    row
}

/// One sweep entry: the full-registry prepared parallel matrix workload at
/// a fixed worker count.
struct SweepPoint {
    threads: usize,
    seconds: f64,
    workers_used: usize,
    steals: u64,
    imbalance: f64,
}

/// Times the whole prepared parallel registry at each thread count and
/// captures the scheduler stats of the final run per count.
fn run_sweep(sst: &SstToolkit, thread_counts: &[usize]) -> Vec<SweepPoint> {
    let set = ConceptSet::All;
    thread_counts
        .iter()
        .map(|&threads| {
            let seconds = time_median(|| {
                for measure in 0..sst.measure_count() {
                    std::hint::black_box(sst.similarity_matrix_parallel_mode(
                        &set,
                        measure,
                        threads,
                        BatchMode::Prepared,
                    ))
                    .expect("sweep matrix");
                }
            });
            let stats = sst.last_sched_stats().unwrap_or_default();
            SweepPoint {
                threads,
                seconds,
                workers_used: stats.workers.len(),
                steals: stats.steals(),
                imbalance: stats.imbalance(),
            }
        })
        .collect()
}

fn render_sched_json(stats: &SchedStats, threads: usize) -> String {
    let workers: Vec<String> = stats
        .workers
        .iter()
        .map(|w| {
            format!(
                "{{\"tiles\":{},\"steals\":{},\"busy_ns\":{}}}",
                w.tiles, w.steals, w.busy_ns
            )
        })
        .collect();
    format!(
        "{{\"threads_requested\":{threads},\"workers_used\":{},\"steals\":{},\
         \"imbalance\":{:.3},\"workers\":[{}]}}",
        stats.workers.len(),
        stats.steals(),
        stats.imbalance(),
        workers.join(",")
    )
}

fn render_json(
    concepts: usize,
    rows: &[Row],
    sweep_concepts: usize,
    sweep: &[SweepPoint],
    sched: &SchedStats,
    sched_threads: usize,
) -> String {
    let total_naive: f64 = rows.iter().map(|r| r.naive_s).sum();
    let total_prepared: f64 = rows.iter().map(|r| r.prepared_s).sum();
    let total_naive_par: f64 = rows.iter().map(|r| r.naive_par_s).sum();
    let total_prepared_par: f64 = rows.iter().map(|r| r.prepared_par_s).sum();
    let measures: Vec<String> = rows
        .iter()
        .map(|r| {
            format!(
                "{{\"measure\":\"{}\",\"naive_seconds\":{},\"prepared_seconds\":{},\
                 \"speedup\":{:.2},\"naive_parallel_seconds\":{},\
                 \"prepared_parallel_seconds\":{},\"parallel_speedup\":{:.2},\
                 \"bit_identical\":{}}}",
                r.name,
                r.naive_s,
                r.prepared_s,
                r.speedup(),
                r.naive_par_s,
                r.prepared_par_s,
                r.speedup_par(),
                r.bit_identical
            )
        })
        .collect();
    let base_seconds = sweep.first().map(|p| p.seconds).unwrap_or(0.0);
    let sweep_json: Vec<String> = sweep
        .iter()
        .map(|p| {
            format!(
                "{{\"threads\":{},\"seconds\":{},\"speedup_vs_first\":{:.2},\
                 \"workers_used\":{},\"steals\":{},\"imbalance\":{:.3}}}",
                p.threads,
                p.seconds,
                if p.seconds > 0.0 {
                    base_seconds / p.seconds
                } else {
                    0.0
                },
                p.workers_used,
                p.steals,
                p.imbalance
            )
        })
        .collect();
    let cores = sst_core::default_workers();
    format!(
        "{{\"workload\":{{\"concepts\":{concepts},\"set\":\"All\",\"threads\":{THREADS},\
         \"repeats\":{REPEATS},\"available_parallelism\":{cores},\"measure_count\":{}}},\
         \"totals\":{{\"naive_seconds\":{total_naive},\"prepared_seconds\":{total_prepared},\
         \"speedup\":{:.2},\"naive_parallel_seconds\":{total_naive_par},\
         \"prepared_parallel_seconds\":{total_prepared_par},\"parallel_speedup\":{:.2}}},\
         \"scheduler\":{},\
         \"thread_sweep\":{{\"concepts\":{sweep_concepts},\"points\":[{}]}},\
         \"measures\":[{}]}}",
        rows.len(),
        total_naive / total_prepared,
        total_naive_par / total_prepared_par,
        render_sched_json(sched, sched_threads),
        sweep_json.join(","),
        measures.join(",")
    )
}

/// Parses `--threads a,b,c` from the CLI (default `1,2,4,8`).
fn sweep_threads(args: &[String]) -> Vec<usize> {
    let mut counts: Vec<usize> = Vec::new();
    for window in args.windows(2) {
        if window[0] == "--threads" {
            counts = window[1]
                .split(',')
                .filter_map(|t| t.trim().parse().ok())
                .filter(|&t| t > 0)
                .collect();
        }
    }
    if counts.is_empty() {
        counts = vec![1, 2, 4, 8];
    }
    counts
}

fn main() {
    let args: Vec<String> = std::env::args().collect();
    let smoke = args.iter().any(|a| a == "--smoke");
    let (primary, secondary) = if smoke { (48, 24) } else { (140, 70) };
    let sst = build_toolkit(primary, secondary);
    let concepts = sst.tree().all_concepts().len();
    println!(
        "matrix_bench: {} measures on {} concepts ({})",
        sst.measure_count(),
        concepts,
        if smoke { "smoke" } else { "full" }
    );

    let mut rows = Vec::new();
    for measure in 0..sst.measure_count() {
        let row = bench_measure(&sst, measure, !smoke);
        if smoke {
            println!(
                "  {:<18} bit-identical {}",
                row.name,
                if row.bit_identical { "ok" } else { "FAILED" }
            );
        } else {
            println!(
                "  {:<18} naive {:>8.4}s  prepared {:>8.4}s  speedup {:>5.2}x  (parallel {:>5.2}x){}",
                row.name,
                row.naive_s,
                row.prepared_s,
                row.speedup(),
                row.speedup_par(),
                if row.bit_identical { "" } else { "  BIT-MISMATCH" }
            );
        }
        rows.push(row);
    }

    let all_identical = rows.iter().all(|r| r.bit_identical);
    if smoke {
        if all_identical {
            println!("matrix_bench --smoke: all measures bit-identical across batch modes");
            return;
        }
        println!("matrix_bench --smoke: BIT-IDENTITY FAILURE");
        std::process::exit(1);
    }

    let total_naive: f64 = rows.iter().map(|r| r.naive_s).sum();
    let total_prepared: f64 = rows.iter().map(|r| r.prepared_s).sum();
    println!(
        "total: naive {total_naive:.3}s prepared {total_prepared:.3}s speedup {:.2}x",
        total_naive / total_prepared
    );

    // Thread-scaling sweep over the whole registry on a dedicated larger
    // corpus (O(n²) scoring must dominate the serial per-call prepare for
    // scaling to be visible); scheduler introspection comes from the last
    // parallel run on that corpus, where the tile count is meaningful.
    let sweep_sst = build_toolkit(SWEEP_PRIMARY, SWEEP_SECONDARY);
    let sweep_concepts = sweep_sst.tree().all_concepts().len();
    let counts = sweep_threads(&args);
    println!(
        "sweep corpus: {sweep_concepts} concepts ({} hardware threads available — \
         counts above that timeslice one core and stay flat)",
        sst_core::default_workers()
    );
    let sweep = run_sweep(&sweep_sst, &counts);
    for p in &sweep {
        println!(
            "sweep: {} threads -> {:.3}s (workers {}, steals {}, imbalance {:.2})",
            p.threads, p.seconds, p.workers_used, p.steals, p.imbalance
        );
    }
    let sched = sweep_sst.last_sched_stats().unwrap_or_default();
    let sched_threads = counts.last().copied().unwrap_or(THREADS);

    let results = data_dir().join("../results");
    std::fs::create_dir_all(&results).expect("results dir");
    std::fs::write(
        results.join("BENCH_matrix.json"),
        render_json(
            concepts,
            &rows,
            sweep_concepts,
            &sweep,
            &sched,
            sched_threads,
        ),
    )
    .expect("write BENCH_matrix");
    println!("(written to results/BENCH_matrix.json)");
    if !all_identical {
        println!("matrix_bench: BIT-IDENTITY FAILURE");
        std::process::exit(1);
    }
}

//! Prepared-context batch engine benchmark: times the full-registry
//! similarity-matrix workload (`similarity_matrix` and
//! `similarity_matrix_parallel`) in `Naive` vs `Prepared` batch mode on a
//! seeded synthetic two-ontology corpus, verifying bit-identity of every
//! cell on every measure, and writes `results/BENCH_matrix.json`.
//!
//! Usage:
//! ```text
//! cargo run --release -p sst-bench --bin matrix_bench            # full run
//! cargo run --release -p sst-bench --bin matrix_bench -- --smoke # CI gate
//! ```
//!
//! `--smoke` skips the timing loops (and the JSON export) and only checks
//! correctness — prepared serial and parallel matrices must reproduce the
//! naive path bit-for-bit on a smaller fixture.

use std::time::Instant;

use sst_bench::{data_dir, generate_taxonomy, TaxonomySpec};
use sst_core::{BatchMode, ConceptSet, SstBuilder, SstToolkit};

/// Worker threads for the parallel-matrix comparison.
const THREADS: usize = 4;
/// Timing repetitions per (measure, mode); the median is reported.
const REPEATS: usize = 3;

fn build_toolkit(primary: usize, secondary: usize) -> SstToolkit {
    // Two ontologies so the matrix crosses ontology boundaries (lowest
    // common ancestors through Super Thing, distinct documentation
    // vocabularies). Instances feed the IC corpus.
    let a = generate_taxonomy(TaxonomySpec {
        concepts: primary,
        branching: 4,
        instances: primary / 2,
        seed: 41,
    });
    let b = generate_taxonomy(TaxonomySpec {
        concepts: secondary,
        branching: 6,
        instances: secondary / 4,
        seed: 97,
    });
    SstBuilder::new()
        .register_ontology(a)
        .expect("register primary")
        .register_ontology(b)
        .expect("register secondary")
        .build()
}

fn assert_identical(name: &str, what: &str, a: &[Vec<f64>], b: &[Vec<f64>]) {
    for (i, (ra, rb)) in a.iter().zip(b).enumerate() {
        for (j, (va, vb)) in ra.iter().zip(rb).enumerate() {
            assert!(
                va.to_bits() == vb.to_bits(),
                "{name}: {what} diverges at [{i}][{j}]: {va} vs {vb}"
            );
        }
    }
}

/// Median wall-clock seconds of `REPEATS` runs of `f`.
fn time_median(mut f: impl FnMut()) -> f64 {
    let mut samples: Vec<f64> = (0..REPEATS)
        .map(|_| {
            let start = Instant::now();
            f();
            start.elapsed().as_secs_f64()
        })
        .collect();
    samples.sort_by(f64::total_cmp);
    samples[samples.len() / 2]
}

struct Row {
    name: String,
    naive_s: f64,
    prepared_s: f64,
    naive_par_s: f64,
    prepared_par_s: f64,
}

impl Row {
    fn speedup(&self) -> f64 {
        self.naive_s / self.prepared_s
    }

    fn speedup_par(&self) -> f64 {
        self.naive_par_s / self.prepared_par_s
    }
}

/// One measure: verify bit-identity across all four paths, then time them.
fn bench_measure(sst: &SstToolkit, measure: usize, timed: bool) -> Row {
    let set = ConceptSet::All;
    let info = sst.measure_info(measure).expect("measure info");

    let (_, naive) = sst
        .similarity_matrix_mode(&set, measure, BatchMode::Naive)
        .expect("naive matrix");
    let (_, prepared) = sst
        .similarity_matrix_mode(&set, measure, BatchMode::Prepared)
        .expect("prepared matrix");
    assert_identical(&info.name, "prepared vs naive", &naive, &prepared);
    let (_, prepared_par) = sst
        .similarity_matrix_parallel_mode(&set, measure, THREADS, BatchMode::Prepared)
        .expect("prepared parallel matrix");
    assert_identical(&info.name, "prepared parallel", &naive, &prepared_par);
    let (_, naive_par) = sst
        .similarity_matrix_parallel_mode(&set, measure, THREADS, BatchMode::Naive)
        .expect("naive parallel matrix");
    assert_identical(&info.name, "naive parallel", &naive, &naive_par);

    let mut row = Row {
        name: info.name.clone(),
        naive_s: 0.0,
        prepared_s: 0.0,
        naive_par_s: 0.0,
        prepared_par_s: 0.0,
    };
    if !timed {
        return row;
    }
    row.naive_s = time_median(|| {
        std::hint::black_box(sst.similarity_matrix_mode(&set, measure, BatchMode::Naive))
            .expect("naive matrix");
    });
    row.prepared_s = time_median(|| {
        std::hint::black_box(sst.similarity_matrix_mode(&set, measure, BatchMode::Prepared))
            .expect("prepared matrix");
    });
    row.naive_par_s = time_median(|| {
        std::hint::black_box(sst.similarity_matrix_parallel_mode(
            &set,
            measure,
            THREADS,
            BatchMode::Naive,
        ))
        .expect("naive parallel matrix");
    });
    row.prepared_par_s = time_median(|| {
        std::hint::black_box(sst.similarity_matrix_parallel_mode(
            &set,
            measure,
            THREADS,
            BatchMode::Prepared,
        ))
        .expect("prepared parallel matrix");
    });
    row
}

fn render_json(concepts: usize, rows: &[Row]) -> String {
    let total_naive: f64 = rows.iter().map(|r| r.naive_s).sum();
    let total_prepared: f64 = rows.iter().map(|r| r.prepared_s).sum();
    let total_naive_par: f64 = rows.iter().map(|r| r.naive_par_s).sum();
    let total_prepared_par: f64 = rows.iter().map(|r| r.prepared_par_s).sum();
    let measures: Vec<String> = rows
        .iter()
        .map(|r| {
            format!(
                "{{\"measure\":\"{}\",\"naive_seconds\":{},\"prepared_seconds\":{},\
                 \"speedup\":{:.2},\"naive_parallel_seconds\":{},\
                 \"prepared_parallel_seconds\":{},\"parallel_speedup\":{:.2},\
                 \"bit_identical\":true}}",
                r.name,
                r.naive_s,
                r.prepared_s,
                r.speedup(),
                r.naive_par_s,
                r.prepared_par_s,
                r.speedup_par()
            )
        })
        .collect();
    format!(
        "{{\"workload\":{{\"concepts\":{concepts},\"set\":\"All\",\"threads\":{THREADS},\
         \"repeats\":{REPEATS},\"measure_count\":{}}},\
         \"totals\":{{\"naive_seconds\":{total_naive},\"prepared_seconds\":{total_prepared},\
         \"speedup\":{:.2},\"naive_parallel_seconds\":{total_naive_par},\
         \"prepared_parallel_seconds\":{total_prepared_par},\"parallel_speedup\":{:.2}}},\
         \"measures\":[{}]}}",
        rows.len(),
        total_naive / total_prepared,
        total_naive_par / total_prepared_par,
        measures.join(",")
    )
}

fn main() {
    let smoke = std::env::args().any(|a| a == "--smoke");
    let (primary, secondary) = if smoke { (48, 24) } else { (140, 70) };
    let sst = build_toolkit(primary, secondary);
    let concepts = sst.tree().all_concepts().len();
    println!(
        "matrix_bench: {} measures on {} concepts ({})",
        sst.measure_count(),
        concepts,
        if smoke { "smoke" } else { "full" }
    );

    let mut rows = Vec::new();
    for measure in 0..sst.measure_count() {
        let row = bench_measure(&sst, measure, !smoke);
        if smoke {
            println!("  {:<18} bit-identical ok", row.name);
        } else {
            println!(
                "  {:<18} naive {:>8.4}s  prepared {:>8.4}s  speedup {:>5.2}x  (parallel {:>5.2}x)",
                row.name,
                row.naive_s,
                row.prepared_s,
                row.speedup(),
                row.speedup_par()
            );
        }
        rows.push(row);
    }

    if smoke {
        println!("matrix_bench --smoke: all measures bit-identical across batch modes");
        return;
    }

    let total_naive: f64 = rows.iter().map(|r| r.naive_s).sum();
    let total_prepared: f64 = rows.iter().map(|r| r.prepared_s).sum();
    println!(
        "total: naive {total_naive:.3}s prepared {total_prepared:.3}s speedup {:.2}x",
        total_naive / total_prepared
    );

    let results = data_dir().join("../results");
    std::fs::create_dir_all(&results).expect("results dir");
    std::fs::write(
        results.join("BENCH_matrix.json"),
        render_json(concepts, &rows),
    )
    .expect("write BENCH_matrix");
    println!("(written to results/BENCH_matrix.json)");
}

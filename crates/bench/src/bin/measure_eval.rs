//! The paper's §6 future-work experiment: which measures perform best in
//! which task domain? A synthetic-ground-truth matching study — each
//! normalized measure re-identifies perturbed copies of concepts, scored
//! by precision@1 per perturbation domain.
//!
//! Usage:
//! ```text
//! cargo run -p sst-bench --bin measure_eval [-- <concepts> <strength> <sample>]
//! cargo run -p sst-bench --bin measure_eval -- 150 0.4 40
//! ```

use sst_bench::{data_dir, evaluate_measures, render_results};

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let concepts: usize = args
        .first()
        .map(|a| a.parse().expect("concepts"))
        .unwrap_or(120);
    let strength: f64 = args
        .get(1)
        .map(|a| a.parse().expect("strength"))
        .unwrap_or(0.4);
    let sample: usize = args
        .get(2)
        .map(|a| a.parse().expect("sample"))
        .unwrap_or(30);

    println!(
        "Measure evaluation: {concepts} concepts, perturbation strength {strength}, \
         {sample} queries per domain\n"
    );
    let results = evaluate_measures(concepts, strength, sample, 42);
    let table = render_results(&results);
    println!("{table}");
    println!("precision@1: fraction of concepts whose perturbed counterpart ranks first.");

    let out = data_dir().join("../results");
    std::fs::create_dir_all(&out).expect("results dir");
    std::fs::write(out.join("measure_eval.txt"), table).expect("write results");
    println!("(written to results/measure_eval.txt)");
}

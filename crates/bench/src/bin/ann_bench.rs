//! ANN recall/latency self-audit: times the exact brute-force vector
//! scan (`most_similar_dense`) against the approximate graph path
//! (`most_similar_approx`) on a seeded synthetic corpus, measures
//! recall@10 of the approximate ranking against the exact one, and
//! writes `results/BENCH_ann.json`.
//!
//! Usage:
//! ```text
//! cargo run --release -p sst-bench --bin ann_bench            # full run (n≈10k, 1000 queries)
//! cargo run --release -p sst-bench --bin ann_bench -- --smoke # CI gate (small corpus)
//! cargo run --release -p sst-bench --bin ann_bench -- --tune  # probe-width sweep (dev aid)
//! ```
//!
//! Both modes enforce the subsystem's contract: exact-store rankings
//! bit-identical to the naive facade scan under the `dense_vector`
//! measure, recall@10 ≥ 0.95 at the default probe width, and (full mode
//! only, where the corpus is large enough for timing to mean anything)
//! a > 5x speedup of the approximate path over the exact scan.

use std::collections::HashSet;
use std::time::Instant;

use sst_bench::{data_dir, generate_taxonomy, SplitMix64, TaxonomySpec};
use sst_core::{measure_ids, ConceptAndSimilarity, ConceptSet, SstBuilder, SstToolkit};

/// Ranking depth audited by the recall measurement.
const K: usize = 10;
/// Timing repetitions per path; the median is reported.
const REPEATS: usize = 3;

fn build_toolkit(primary: usize, secondary: usize) -> SstToolkit {
    let a = generate_taxonomy(TaxonomySpec {
        concepts: primary,
        branching: 4,
        instances: primary / 2,
        seed: 41,
    });
    let b = generate_taxonomy(TaxonomySpec {
        concepts: secondary,
        branching: 6,
        instances: secondary / 4,
        seed: 97,
    });
    SstBuilder::new()
        .register_ontology(a)
        .expect("register primary")
        .register_ontology(b)
        .expect("register secondary")
        .build()
}

/// Seeded sample of query `(concept, ontology)` names from the store.
fn sample_queries(sst: &SstToolkit, count: usize, seed: u64) -> Vec<(String, String)> {
    let store = sst.vector_store();
    let mut rng = SplitMix64::seed_from_u64(seed);
    (0..count)
        .map(|_| {
            let row = rng.gen_range(0..store.len());
            let label = store.label(row).expect("sampled row exists");
            let (ontology, concept) = label.split_once(':').expect("qualified label");
            (concept.to_owned(), ontology.to_owned())
        })
        .collect()
}

/// Median wall-clock seconds of `REPEATS` runs of `f`.
fn time_median(mut f: impl FnMut()) -> f64 {
    let mut samples: Vec<f64> = (0..REPEATS)
        .map(|_| {
            let start = Instant::now();
            f();
            start.elapsed().as_secs_f64()
        })
        .collect();
    samples.sort_by(f64::total_cmp);
    samples[samples.len() / 2]
}

fn key_set(ranked: &[ConceptAndSimilarity]) -> HashSet<(String, String)> {
    ranked
        .iter()
        .map(|r| (r.ontology.clone(), r.concept.clone()))
        .collect()
}

/// Recall@K of the approximate path at probe width `probe` against the exact scan.
fn recall_at_k(sst: &SstToolkit, queries: &[(String, String)], probe: usize) -> f64 {
    let mut hits = 0usize;
    let mut total = 0usize;
    for (concept, ontology) in queries {
        let exact = sst.most_similar_dense(concept, ontology, K).expect("exact");
        let approx = sst
            .most_similar_approx_with(concept, ontology, K, probe)
            .expect("approx");
        let truth = key_set(&exact);
        hits += approx
            .iter()
            .filter(|r| truth.contains(&(r.ontology.clone(), r.concept.clone())))
            .count();
        total += exact.len();
    }
    hits as f64 / total as f64
}

/// Exact-store top-K must reproduce the naive facade scan bit for bit.
fn assert_exact_identity(sst: &SstToolkit, queries: &[(String, String)]) {
    for (concept, ontology) in queries {
        let naive = sst
            .most_similar(
                concept,
                ontology,
                &ConceptSet::All,
                K,
                measure_ids::DENSE_VECTOR_MEASURE,
            )
            .expect("naive rank");
        let dense = sst.most_similar_dense(concept, ontology, K).expect("dense");
        assert_eq!(naive.len(), dense.len(), "{ontology}:{concept}");
        for (a, b) in naive.iter().zip(&dense) {
            assert!(
                a.concept == b.concept
                    && a.ontology == b.ontology
                    && a.similarity.to_bits() == b.similarity.to_bits(),
                "{ontology}:{concept}: exact store diverges from naive scan"
            );
        }
    }
}

fn render_json(
    concepts: usize,
    queries: usize,
    probe: usize,
    recall: f64,
    exact_s: f64,
    approx_s: f64,
    mode: &str,
) -> String {
    format!(
        "{{\"workload\":{{\"concepts\":{concepts},\"queries\":{queries},\"k\":{K},\
         \"probe\":{probe},\"repeats\":{REPEATS},\"mode\":\"{mode}\"}},\
         \"recall_at_10\":{recall:.4},\
         \"exact_seconds\":{exact_s},\"approx_seconds\":{approx_s},\
         \"speedup\":{:.2},\"exact_bit_identical\":true}}",
        exact_s / approx_s
    )
}

fn main() {
    let smoke = std::env::args().any(|a| a == "--smoke");
    let tune = std::env::args().any(|a| a == "--tune");
    let (primary, secondary, query_count) = if smoke {
        (700, 300, 150)
    } else {
        (7000, 3000, 1000)
    };
    let sst = build_toolkit(primary, secondary);
    let store = sst.vector_store();
    let concepts = store.len();
    let probe = store.default_probe();
    let queries = sample_queries(&sst, query_count, 0x5EED);
    println!(
        "ann_bench: {concepts} concepts, {query_count} queries, default probe {probe} ({})",
        if smoke { "smoke" } else { "full" }
    );

    if tune {
        for width in [8, 16, 24, 32, 48, 64, 96, 128, 192, 256] {
            if width >= concepts {
                break;
            }
            let recall = recall_at_k(&sst, &queries, width);
            let approx_s = time_median(|| {
                for (concept, ontology) in &queries {
                    std::hint::black_box(sst.most_similar_approx_with(concept, ontology, K, width))
                        .expect("approx");
                }
            });
            println!("  probe {width:>3}  recall@10 {recall:.4}  {approx_s:.4}s");
        }
        return;
    }

    // The naive facade scan embeds per pair, so it is O(n·terms) per
    // query — audit a bounded sample here; the `ann_identity` suite owns
    // exhaustive identity coverage.
    let identity_sample = queries.len().min(50);
    assert_exact_identity(&sst, &queries[..identity_sample]);
    println!("  exact store bit-identical to naive scan on {identity_sample} queries");

    let recall = recall_at_k(&sst, &queries, probe);
    let exact_s = time_median(|| {
        for (concept, ontology) in &queries {
            std::hint::black_box(sst.most_similar_dense(concept, ontology, K)).expect("exact");
        }
    });
    let approx_s = time_median(|| {
        for (concept, ontology) in &queries {
            std::hint::black_box(sst.most_similar_approx(concept, ontology, K)).expect("approx");
        }
    });
    let speedup = exact_s / approx_s;
    println!(
        "  recall@10 {recall:.4}  exact {exact_s:.4}s  approx {approx_s:.4}s  speedup {speedup:.2}x"
    );

    assert!(
        recall >= 0.95,
        "recall@10 {recall:.4} below the 0.95 floor at default probe {probe}"
    );
    if !smoke {
        assert!(
            speedup > 5.0,
            "approximate path speedup {speedup:.2}x is not > 5x at n={concepts}"
        );
    }

    let results = data_dir().join("../results");
    std::fs::create_dir_all(&results).expect("results dir");
    std::fs::write(
        results.join("BENCH_ann.json"),
        render_json(
            concepts,
            query_count,
            probe,
            recall,
            exact_s,
            approx_s,
            if smoke { "smoke" } else { "full" },
        ),
    )
    .expect("write BENCH_ann");
    println!("(written to results/BENCH_ann.json)");
}

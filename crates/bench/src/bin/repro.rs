//! One-shot reproduction driver: regenerates every experiment artifact
//! (Table 1, Figures 3 and 5, the measure evaluation) into `results/`.
//!
//! Usage: `cargo run -p sst-bench --bin repro`

use std::process::Command;

fn run(bin: &str, args: &[&str]) {
    println!("==> {bin} {}", args.join(" "));
    let status = Command::new(env!("CARGO"))
        .args(["run", "--quiet", "-p", "sst-bench", "--bin", bin, "--"])
        .args(args)
        .status()
        .unwrap_or_else(|e| panic!("failed to launch {bin}: {e}"));
    assert!(status.success(), "{bin} failed with {status}");
}

fn main() {
    run("gen_ontologies", &[]);
    run("table1", &["--dissimilar"]);
    run("figure5", &[]);
    run("figure3", &[]);
    run("measure_eval", &["100", "0.4", "25"]);
    println!("\nAll experiment artifacts regenerated under results/.");
}

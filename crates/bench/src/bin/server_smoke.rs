//! Server smoke gate: boots the `sst-server` query service on an
//! ephemeral port, hammers it from concurrent client threads with a
//! scripted mix of `/ql`, `/similarity`, `/rank`, `/healthz` and
//! `/metrics` traffic, and asserts the service contract:
//!
//! - every request is answered `200` or shed `429` — no hangs, no `5xx`;
//! - the `/metrics` exposition accounts for exactly the traffic sent
//!   (accepted == dispatched + shed, zero 5xx counters);
//! - shutdown drains cleanly and `Server::run` returns `Ok`.
//!
//! Usage:
//! ```text
//! cargo run --release -p sst-bench --bin server_smoke             # full run
//! cargo run --release -p sst-bench --bin server_smoke -- --smoke  # CI gate
//! ```
//!
//! The full run writes `results/BENCH_server.json` with throughput and
//! the final counter values; `--smoke` keeps the same request mix at a
//! smaller round count and skips the file.

use std::io::{Read, Write};
use std::net::{SocketAddr, TcpStream};
use std::time::{Duration, Instant};

use sst_bench::{data_dir, load_corpus, names};
use sst_core::TreeMode;
use sst_server::{Corpora, Server, ServerConfig};

/// Client threads (the acceptance floor is ≥ 4).
const CLIENTS: usize = 6;
/// Requests per client: ≥ 1k total even in smoke mode.
const SMOKE_ROUNDS: usize = 200;
const FULL_ROUNDS: usize = 1_000;

fn request(addr: SocketAddr, raw: &[u8]) -> (u16, String) {
    let mut stream = TcpStream::connect(addr).expect("connect");
    stream
        .set_read_timeout(Some(Duration::from_secs(30)))
        .expect("set client timeout");
    stream.write_all(raw).expect("write request");
    let mut response = String::new();
    stream.read_to_string(&mut response).expect("read response");
    let status: u16 = response
        .split(' ')
        .nth(1)
        .and_then(|s| s.parse().ok())
        .unwrap_or_else(|| panic!("no status line in {response:?}"));
    (status, response)
}

fn get(addr: SocketAddr, target: &str) -> (u16, String) {
    request(
        addr,
        format!("GET {target} HTTP/1.1\r\nhost: smoke\r\n\r\n").as_bytes(),
    )
}

fn post(addr: SocketAddr, target: &str, body: &str) -> (u16, String) {
    request(
        addr,
        format!(
            "POST {target} HTTP/1.1\r\nhost: smoke\r\ncontent-length: {}\r\n\r\n{body}",
            body.len()
        )
        .as_bytes(),
    )
}

/// One scripted request from the mix; returns its status code.
fn scripted(addr: SocketAddr, step: usize) -> u16 {
    match step % 5 {
        0 => get(addr, "/healthz").0,
        1 => {
            get(
                addr,
                &format!(
                    "/similarity?first=Professor&first_ontology={o}\
                     &second=EMPLOYEE&second_ontology={c}&measure=levenshtein",
                    o = names::DAML_UNIV,
                    c = names::COURSES
                ),
            )
            .0
        }
        2 => {
            get(
                addr,
                &format!(
                    "/rank?concept=Professor&ontology={}&k=3&measure=levenshtein",
                    names::DAML_UNIV
                ),
            )
            .0
        }
        3 => post(addr, "/ql", "SELECT name, concept_count FROM ontology").0,
        _ => get(addr, "/metrics").0,
    }
}

/// Reads one counter from the `/metrics` text exposition.
fn counter(metrics_body: &str, name: &str) -> u64 {
    metrics_body
        .lines()
        .find_map(|line| {
            let (n, v) = line.trim_start().split_once(char::is_whitespace)?;
            (n == name).then(|| v.trim().parse().ok())?
        })
        .unwrap_or(0)
}

fn main() {
    let smoke = std::env::args().any(|a| a == "--smoke");
    let rounds = if smoke { SMOKE_ROUNDS } else { FULL_ROUNDS };

    let sst = std::sync::Arc::new(load_corpus(TreeMode::SuperThing, false));
    let corpora = Corpora::new("default", std::sync::Arc::clone(&sst));
    let server = Server::bind(ServerConfig {
        workers: 4,
        queue_capacity: 32,
        ..ServerConfig::default()
    })
    .expect("bind server");
    let addr = server.local_addr();
    let handle = server.shutdown_handle();

    let started = Instant::now();
    let (ok, shed) = std::thread::scope(|scope| {
        let running = scope.spawn(|| server.run(&corpora));

        let clients: Vec<_> = (0..CLIENTS)
            .map(|c| {
                scope.spawn(move || {
                    let (mut ok, mut shed) = (0u64, 0u64);
                    for r in 0..rounds {
                        match scripted(addr, c + r) {
                            200 => ok += 1,
                            429 => shed += 1,
                            other => panic!(
                                "request {r} of client {c}: status {other}; \
                                 only 200/429 are legal under well-formed load"
                            ),
                        }
                    }
                    (ok, shed)
                })
            })
            .collect();

        let (mut ok, mut shed) = (0u64, 0u64);
        for client in clients {
            let (o, s) = client.join().expect("client thread");
            ok += o;
            shed += s;
        }

        handle.shutdown();
        running
            .join()
            .expect("server thread")
            .expect("server run result");
        (ok, shed)
    });
    let elapsed = started.elapsed().as_secs_f64();

    let total = (CLIENTS * rounds) as u64;
    assert_eq!(ok + shed, total, "every request must be answered");
    assert!(ok > 0, "some traffic must get through");

    // The exposition must account for exactly the traffic sent.
    let metrics = sst.metrics().render_text();
    let dispatched: u64 = ["ql", "similarity", "rank", "metrics", "healthz", "other"]
        .iter()
        .map(|ep| counter(&metrics, &format!("server.requests.{ep}")))
        .sum();
    let accepted = counter(&metrics, "server.accepted");
    let shed_counter = counter(&metrics, "server.shed");
    assert_eq!(dispatched, ok, "dispatched == 200s the clients saw");
    assert_eq!(shed_counter, shed, "shed == 429s the clients saw");
    assert_eq!(
        accepted,
        dispatched + shed_counter,
        "accepted == dispatched + shed"
    );
    assert_eq!(
        counter(&metrics, "server.responses.5xx"),
        0,
        "no 5xx under well-formed load"
    );

    println!(
        "server_smoke: {CLIENTS} clients x {rounds} requests = {total} total; \
         {ok} ok, {shed} shed, {:.0} req/s, zero 5xx",
        total as f64 / elapsed
    );

    if smoke {
        println!("server_smoke --smoke: service contract holds");
        return;
    }

    let results = data_dir().join("../results");
    std::fs::create_dir_all(&results).expect("results dir");
    let json = format!(
        "{{\n  \"clients\": {CLIENTS},\n  \"rounds_per_client\": {rounds},\n  \
         \"requests\": {total},\n  \"ok\": {ok},\n  \"shed\": {shed},\n  \
         \"elapsed_s\": {elapsed:.3},\n  \"requests_per_s\": {:.1},\n  \
         \"accepted\": {accepted},\n  \"cache_hits\": {},\n  \"cache_misses\": {},\n  \
         \"cache_evictions\": {}\n}}\n",
        total as f64 / elapsed,
        counter(&metrics, "core.cache.hits"),
        counter(&metrics, "core.cache.misses"),
        counter(&metrics, "core.cache.evictions"),
    );
    std::fs::write(results.join("BENCH_server.json"), json).expect("write BENCH_server");
    println!("(written to results/BENCH_server.json)");
}

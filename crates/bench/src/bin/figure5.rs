//! Reproduces **Figure 5** of the paper: a bar chart of the ten most
//! similar concepts for `base1_0_daml:Professor`, computed over all
//! concepts of all five scenario ontologies.
//!
//! Like the original toolkit, the chart is produced as Gnuplot artifacts
//! (`results/figure5.gp` + `results/figure5.dat`, runnable with
//! `gnuplot figure5.gp`); an ASCII rendering is printed so the experiment
//! is self-contained.
//!
//! Usage: `cargo run -p sst-bench --bin figure5 [-- --measure <name>] [-- -k <n>]`

use sst_bench::{data_dir, load_corpus, names};
use sst_core::{ConceptSet, TreeMode};

fn main() {
    let args: Vec<String> = std::env::args().collect();
    let mut measure_name = "tfidf".to_owned();
    let mut k = 10usize;
    let mut i = 1;
    while i < args.len() {
        match args[i].as_str() {
            "--measure" if i + 1 < args.len() => {
                measure_name = args[i + 1].clone();
                i += 2;
            }
            "-k" if i + 1 < args.len() => {
                k = args[i + 1].parse().expect("k must be a number");
                i += 2;
            }
            other => panic!("unknown argument `{other}`"),
        }
    }

    let sst = load_corpus(TreeMode::SuperThing, false);
    let measure = sst.measure_id(&measure_name).expect("measure name");
    let chart = sst
        .most_similar_plot("Professor", names::DAML_UNIV, &ConceptSet::All, k, measure)
        .expect("most similar plot");

    println!("{}", chart.to_ascii(50));

    let results = data_dir().join("../results");
    std::fs::create_dir_all(&results).expect("results dir");
    let artifacts = chart.to_gnuplot("figure5");
    std::fs::write(results.join("figure5.gp"), &artifacts.script).expect("write script");
    std::fs::write(results.join("figure5.dat"), &artifacts.data).expect("write data");
    std::fs::write(results.join("figure5.txt"), chart.to_ascii(50)).expect("write ascii");
    println!("(gnuplot artifacts written to results/figure5.gp + results/figure5.dat)");
}

//! Generates `data/ontologies/sumo.owl`, the seeded synthetic SUMO
//! stand-in, sized so the five-ontology corpus totals exactly the paper's
//! 943 concepts (DESIGN.md §3).
//!
//! Usage: `cargo run -p sst-bench --bin gen_ontologies`

use sst_bench::{data_dir, generate_sumo_owl};

/// SUMO class count: 943 total − (44 univ-bench + 56 swrc + 36 daml +
/// 30 courses) = 777 concepts, of which one is the wrapper-added owl:Thing.
const SUMO_CLASSES: usize = 776;
const SEED: u64 = 42;

fn main() {
    let owl = generate_sumo_owl(SUMO_CLASSES, SEED);
    let path = data_dir().join("ontologies/sumo.owl");
    std::fs::write(&path, &owl).expect("write sumo.owl");
    println!(
        "wrote {} ({} classes, seed {})",
        path.display(),
        SUMO_CLASSES,
        SEED
    );
}

//! # sst-bench — experiment harness for the SST reproduction
//!
//! Provides the evaluation corpus loader ([`corpus`]), the synthetic
//! workload generators ([`workload`]), and hosts the experiment binaries
//! (`table1`, `figure5`, `figure3`, `gen_ontologies`) plus the in-repo
//! harness benches ([`harness`]). See DESIGN.md §2 for the experiment index.

#![warn(missing_debug_implementations)]
#![forbid(unsafe_code)]

pub mod corpus;
pub mod eval;
pub mod faults;
pub mod harness;
pub mod rng;
pub mod workload;

pub use corpus::{data_dir, load_corpus, names, PAPER_CONCEPT_COUNT};
pub use eval::{evaluate_measures, perturb, render_results, EvalResult, Perturbation};
pub use faults::{build_corpus, run_fault_suite, FaultCase, FaultReport, Format};
pub use rng::SplitMix64;
pub use workload::{generate_sumo_owl, generate_taxonomy, TaxonomySpec};

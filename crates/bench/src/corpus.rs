//! The evaluation corpus: the five ontologies of the paper's running
//! example (943 concepts total), loaded from `data/ontologies/` into one
//! [`SstToolkit`].

use std::path::{Path, PathBuf};

use sst_core::{SstBuilder, SstToolkit, TreeMode};
use sst_wrappers::{parse_daml, parse_owl, parse_powerloom, parse_wordnet};

/// Registered ontology names, matching the paper's Table 1 notation.
pub mod names {
    pub const UNIV_BENCH: &str = "univ-bench_owl";
    pub const COURSES: &str = "COURSES";
    pub const DAML_UNIV: &str = "base1_0_daml";
    pub const SWRC: &str = "swrc_owl";
    pub const SUMO: &str = "SUMO_owl_txt";
    pub const WORDNET: &str = "wordnet";
}

/// Locates the repository's `data/` directory from the crate manifest.
pub fn data_dir() -> PathBuf {
    Path::new(env!("CARGO_MANIFEST_DIR")).join("../../data")
}

fn read(path: &Path) -> String {
    std::fs::read_to_string(path).unwrap_or_else(|e| panic!("cannot read {}: {e}", path.display()))
}

/// Loads the five paper ontologies (plus optionally WordNet) into a
/// toolkit. `sumo.owl` must exist — run `cargo run -p sst-bench --bin
/// gen_ontologies` once to produce it.
pub fn load_corpus(mode: TreeMode, with_wordnet: bool) -> SstToolkit {
    let dir = data_dir().join("ontologies");
    let mut builder = SstBuilder::new().tree_mode(mode);

    let univ = parse_owl(
        &read(&dir.join("univ-bench.owl")),
        names::UNIV_BENCH,
        "http://www.lehigh.edu/univ-bench.owl",
    )
    .expect("univ-bench.owl");
    let swrc = parse_owl(
        &read(&dir.join("swrc.owl")),
        names::SWRC,
        "http://swrc.ontoware.org/ontology",
    )
    .expect("swrc.owl");
    let daml = parse_daml(
        &read(&dir.join("univ1.0.daml")),
        names::DAML_UNIV,
        "http://www.cs.umd.edu/projects/plus/DAML/onts/univ1.0.daml",
    )
    .expect("univ1.0.daml");
    let courses =
        parse_powerloom(&read(&dir.join("course.ploom")), names::COURSES).expect("course.ploom");
    let sumo_path = dir.join("sumo.owl");
    assert!(
        sumo_path.exists(),
        "data/ontologies/sumo.owl missing — run `cargo run -p sst-bench --bin gen_ontologies`"
    );
    let sumo = parse_owl(
        &read(&sumo_path),
        names::SUMO,
        "http://reliant.teknowledge.com/DAML/SUMO.owl",
    )
    .expect("sumo.owl");

    builder = builder
        .register_ontology(daml)
        .expect("register daml")
        .register_ontology(univ)
        .expect("register univ-bench")
        .register_ontology(courses)
        .expect("register courses")
        .register_ontology(swrc)
        .expect("register swrc")
        .register_ontology(sumo)
        .expect("register sumo");
    if with_wordnet {
        let wn = parse_wordnet(&read(&data_dir().join("wordnet/data.noun")), names::WORDNET)
            .expect("data.noun");
        builder = builder.register_ontology(wn).expect("register wordnet");
    }
    builder.build()
}

/// Total concept count the paper states for the five-ontology scenario.
pub const PAPER_CONCEPT_COUNT: usize = 943;

//! Vendored deterministic PRNG for workload generation.
//!
//! The bench crate must build with no network access, so instead of the
//! `rand` crate we carry a tiny SplitMix64 generator (Steele, Lea &
//! Flood, OOPSLA 2014 — the same mixer `rand` uses to seed its own
//! engines). Statistical quality is far beyond what seeded taxonomy
//! generation and perturbation sampling need, and the streams are stable
//! across platforms, which keeps the experiment tables reproducible.

use std::ops::Range;

/// A SplitMix64 generator: 64 bits of state, one multiply-xorshift mix
/// per draw, equidistributed over `u64`.
#[derive(Debug, Clone)]
pub struct SplitMix64 {
    state: u64,
}

impl SplitMix64 {
    /// Seeds the generator. Mirrors `rand::SeedableRng::seed_from_u64`
    /// so call sites read the same as they did with `StdRng`.
    pub fn seed_from_u64(seed: u64) -> Self {
        SplitMix64 { state: seed }
    }

    /// Next raw 64-bit draw.
    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    /// Uniform draw from `range` (half-open). Uses Lemire's widening
    /// multiply reduction; the modulo bias for spans far below 2^64 is
    /// unobservable. Empty ranges yield `range.start`.
    pub fn gen_range(&mut self, range: Range<usize>) -> usize {
        let span = range.end.saturating_sub(range.start) as u64;
        if span == 0 {
            return range.start;
        }
        let draw = ((self.next_u64() as u128 * span as u128) >> 64) as u64;
        range.start + draw as usize
    }

    /// Bernoulli draw: `true` with probability `p` (clamped to [0, 1]).
    pub fn gen_bool(&mut self, p: f64) -> bool {
        let p = p.clamp(0.0, 1.0);
        // 53 mantissa bits of uniformity is plenty for perturbation rates.
        let unit = (self.next_u64() >> 11) as f64 / (1u64 << 53) as f64;
        unit < p
    }

    /// Fisher–Yates shuffle.
    pub fn shuffle<T>(&mut self, items: &mut [T]) {
        for i in (1..items.len()).rev() {
            items.swap(i, self.gen_range(0..i + 1));
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic_across_calls() {
        let mut a = SplitMix64::seed_from_u64(42);
        let mut b = SplitMix64::seed_from_u64(42);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn gen_range_stays_in_bounds() {
        let mut rng = SplitMix64::seed_from_u64(7);
        for _ in 0..10_000 {
            let v = rng.gen_range(3..17);
            assert!((3..17).contains(&v));
        }
        assert_eq!(rng.gen_range(5..5), 5, "empty range yields start");
    }

    #[test]
    fn gen_bool_tracks_probability() {
        let mut rng = SplitMix64::seed_from_u64(11);
        let hits = (0..20_000).filter(|_| rng.gen_bool(0.25)).count();
        let rate = hits as f64 / 20_000.0;
        assert!((rate - 0.25).abs() < 0.02, "rate {rate} too far from 0.25");
    }

    #[test]
    fn shuffle_permutes() {
        let mut rng = SplitMix64::seed_from_u64(3);
        let mut v: Vec<usize> = (0..50).collect();
        rng.shuffle(&mut v);
        let mut sorted = v.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..50).collect::<Vec<_>>());
        assert_ne!(v, sorted, "seed 3 should not give identity permutation");
    }
}

//! # sst-limits — resource governance for untrusted ingestion
//!
//! Every SST parser (RDF/XML, Turtle, N-Triples, PowerLoom s-expressions,
//! WordNet files) accepts third-party documents. A hostile or merely
//! pathological file must not overflow the stack, exhaust memory, or spin
//! forever — it must produce a structured error (or a bounded partial
//! result) like any other malformed input.
//!
//! This crate is the shared vocabulary for that contract:
//!
//! - [`Limits`] — the static policy: maximum input size, nesting depth,
//!   item count, literal length, and a deterministic step budget that acts
//!   as a portable timeout.
//! - [`Budget`] — the runtime tracker a parser threads through its
//!   productions, charging steps/items/depth against a [`Limits`].
//! - [`LimitViolation`] — the structured error: which limit, the configured
//!   bound, the observed value, and what the parser was doing.
//! - [`Partial`] — optional recovery: the value assembled before the
//!   failure plus the diagnostics, for callers that prefer a bounded
//!   partial result over an all-or-nothing `Err`.
//!
//! The crate is dependency-free so every substrate (sst-rdf, sst-sexpr,
//! sst-index, sst-wrappers) can share one `Limits` type.

#![warn(missing_debug_implementations)]
#![forbid(unsafe_code)]

use std::fmt;

/// Which resource bound a [`LimitViolation`] reports.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum LimitKind {
    /// Total input size in bytes ([`Limits::max_input_bytes`]).
    InputBytes,
    /// Nesting / recursion depth ([`Limits::max_depth`]).
    Depth,
    /// Produced items — triples, forms, synsets, documents
    /// ([`Limits::max_items`]).
    Items,
    /// A single literal, IRI, or token in bytes
    /// ([`Limits::max_literal_bytes`]).
    LiteralBytes,
    /// Deterministic parser steps — the portable timeout
    /// ([`Limits::max_steps`]).
    Steps,
}

impl LimitKind {
    /// Stable snake_case name, used for metric keys
    /// (`<parser>.limit.<name>`).
    pub fn name(self) -> &'static str {
        match self {
            LimitKind::InputBytes => "input_bytes",
            LimitKind::Depth => "depth",
            LimitKind::Items => "items",
            LimitKind::LiteralBytes => "literal_bytes",
            LimitKind::Steps => "steps",
        }
    }
}

/// A structured resource-limit error: what was exceeded and where.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct LimitViolation {
    /// Which bound was hit.
    pub kind: LimitKind,
    /// The configured bound.
    pub limit: u64,
    /// The observed value (the first value past the bound).
    pub observed: u64,
    /// What the parser was doing, e.g. `"turtle collection nesting"`.
    pub what: &'static str,
}

impl fmt::Display for LimitViolation {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{} exceeded the {} limit ({} > {})",
            self.what,
            self.kind.name(),
            self.observed,
            self.limit
        )
    }
}

impl std::error::Error for LimitViolation {}

/// Static resource policy for one parse.
///
/// [`Limits::default`] is the governed profile every convenience entry
/// point (`parse_turtle`, `parse_all`, `parse_owl`, …) applies; it is
/// sized so that all legitimate ontology documents — including the
/// full seed corpus under `data/` — parse identically to an unbounded
/// run, while pathological inputs fail fast. Callers that genuinely
/// need more (a trusted multi-gigabyte dump) opt out explicitly with
/// [`Limits::unbounded`] or a field override through the
/// `*_with_limits` entry points.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Limits {
    /// Maximum document size in bytes (default 64 MiB).
    pub max_input_bytes: usize,
    /// Maximum nesting / recursion depth (default 128).
    pub max_depth: usize,
    /// Maximum produced items — triples, forms, synsets, indexed
    /// documents (default 4,000,000).
    pub max_items: u64,
    /// Maximum size of a single literal, IRI, or token in bytes
    /// (default 1 MiB).
    pub max_literal_bytes: usize,
    /// Maximum deterministic parser steps; roughly one step per consumed
    /// character, so this caps total work like a timeout that does not
    /// depend on the host clock (default 512,000,000).
    pub max_steps: u64,
}

impl Default for Limits {
    fn default() -> Limits {
        Limits {
            max_input_bytes: 64 << 20,
            max_depth: 128,
            max_items: 4_000_000,
            max_literal_bytes: 1 << 20,
            max_steps: 512_000_000,
        }
    }
}

impl Limits {
    /// The governed default profile (same as [`Limits::default`]).
    pub fn governed() -> Limits {
        Limits::default()
    }

    /// The explicit opt-out: every bound at its maximum. Parses behave
    /// exactly like the pre-governance parsers.
    pub fn unbounded() -> Limits {
        Limits {
            max_input_bytes: usize::MAX,
            max_depth: usize::MAX,
            max_items: u64::MAX,
            max_literal_bytes: usize::MAX,
            max_steps: u64::MAX,
        }
    }

    /// Override the input-size bound.
    pub fn with_max_input_bytes(mut self, n: usize) -> Limits {
        self.max_input_bytes = n;
        self
    }

    /// Override the nesting-depth bound.
    pub fn with_max_depth(mut self, n: usize) -> Limits {
        self.max_depth = n;
        self
    }

    /// Override the item-count bound.
    pub fn with_max_items(mut self, n: u64) -> Limits {
        self.max_items = n;
        self
    }

    /// Override the per-literal size bound.
    pub fn with_max_literal_bytes(mut self, n: usize) -> Limits {
        self.max_literal_bytes = n;
        self
    }

    /// Override the step budget.
    pub fn with_max_steps(mut self, n: u64) -> Limits {
        self.max_steps = n;
        self
    }
}

/// Runtime tracker charging work against a [`Limits`].
///
/// A parser holds one `Budget` for the whole document and calls the
/// charge methods from its productions; each returns the structured
/// [`LimitViolation`] as soon as a bound is crossed.
#[derive(Debug, Clone)]
pub struct Budget {
    limits: Limits,
    steps: u64,
    depth: usize,
    items: u64,
}

impl Budget {
    /// A fresh budget governed by `limits`.
    pub fn new(limits: &Limits) -> Budget {
        Budget {
            limits: *limits,
            steps: 0,
            depth: 0,
            items: 0,
        }
    }

    /// The policy this budget charges against.
    pub fn limits(&self) -> &Limits {
        &self.limits
    }

    /// Current nesting depth (for diagnostics).
    pub fn depth(&self) -> usize {
        self.depth
    }

    /// Steps charged so far.
    pub fn steps(&self) -> u64 {
        self.steps
    }

    /// Items charged so far.
    pub fn items(&self) -> u64 {
        self.items
    }

    /// Rejects inputs larger than `max_input_bytes` before any work is done.
    pub fn check_input(&self, bytes: usize, what: &'static str) -> Result<(), LimitViolation> {
        if bytes > self.limits.max_input_bytes {
            return Err(LimitViolation {
                kind: LimitKind::InputBytes,
                limit: self.limits.max_input_bytes as u64,
                observed: bytes as u64,
                what,
            });
        }
        Ok(())
    }

    /// Charges one deterministic step (call once per consumed character).
    #[inline]
    pub fn step(&mut self, what: &'static str) -> Result<(), LimitViolation> {
        self.charge_steps(1, what)
    }

    /// Charges `n` steps at once.
    #[inline]
    pub fn charge_steps(&mut self, n: u64, what: &'static str) -> Result<(), LimitViolation> {
        self.steps = self.steps.saturating_add(n);
        if self.steps > self.limits.max_steps {
            return Err(LimitViolation {
                kind: LimitKind::Steps,
                limit: self.limits.max_steps,
                observed: self.steps,
                what,
            });
        }
        Ok(())
    }

    /// Enters one nesting level; pair with [`Budget::exit`].
    pub fn enter(&mut self, what: &'static str) -> Result<(), LimitViolation> {
        let next = self.depth.saturating_add(1);
        if next > self.limits.max_depth {
            return Err(LimitViolation {
                kind: LimitKind::Depth,
                limit: self.limits.max_depth as u64,
                observed: next as u64,
                what,
            });
        }
        self.depth = next;
        Ok(())
    }

    /// Leaves one nesting level.
    pub fn exit(&mut self) {
        self.depth = self.depth.saturating_sub(1);
    }

    /// Charges one produced item (triple, form, synset, document).
    pub fn item(&mut self, what: &'static str) -> Result<(), LimitViolation> {
        self.charge_items(1, what)
    }

    /// Charges `n` produced items at once (a query engine materializing a
    /// whole row set charges it in one call instead of per row).
    pub fn charge_items(&mut self, n: u64, what: &'static str) -> Result<(), LimitViolation> {
        self.items = self.items.saturating_add(n);
        if self.items > self.limits.max_items {
            return Err(LimitViolation {
                kind: LimitKind::Items,
                limit: self.limits.max_items,
                observed: self.items,
                what,
            });
        }
        Ok(())
    }

    /// Rejects a single literal / IRI / token longer than
    /// `max_literal_bytes`. Call while accumulating, so the allocation
    /// stays bounded too.
    pub fn check_literal(&self, bytes: usize, what: &'static str) -> Result<(), LimitViolation> {
        if bytes > self.limits.max_literal_bytes {
            return Err(LimitViolation {
                kind: LimitKind::LiteralBytes,
                limit: self.limits.max_literal_bytes as u64,
                observed: bytes as u64,
                what,
            });
        }
        Ok(())
    }
}

/// A bounded partial result: whatever was assembled before the first
/// failure, plus the diagnostics explaining what was lost.
///
/// The recovery contract is prefix-shaped: `value` holds everything the
/// parser produced before the first error — there is no resynchronization
/// past it (except line-oriented formats, which may record one diagnostic
/// per bad line and keep going). `errors` is empty exactly when the parse
/// was complete.
#[derive(Debug, Clone, PartialEq)]
pub struct Partial<T, E> {
    /// The value parsed so far (complete when `errors` is empty).
    pub value: T,
    /// Diagnostics, in document order. Bounded by
    /// [`Partial::MAX_DIAGNOSTICS`] for recovering line-oriented parsers.
    pub errors: Vec<E>,
}

impl<T, E> Partial<T, E> {
    /// Cap on recorded diagnostics for parsers that resynchronize and keep
    /// collecting (a hostile document must not grow an unbounded error
    /// list).
    pub const MAX_DIAGNOSTICS: usize = 64;

    /// A complete parse: no diagnostics.
    pub fn complete(value: T) -> Partial<T, E> {
        Partial {
            value,
            errors: Vec::new(),
        }
    }

    /// A truncated parse: the prefix value plus the error that stopped it.
    pub fn broken(value: T, error: E) -> Partial<T, E> {
        Partial {
            value,
            errors: vec![error],
        }
    }

    /// True when the whole document parsed.
    pub fn is_complete(&self) -> bool {
        self.errors.is_empty()
    }

    /// Collapses to a strict result: `Ok(value)` when complete, otherwise
    /// the first diagnostic (the partial value is dropped).
    pub fn into_result(mut self) -> Result<T, E> {
        if self.errors.is_empty() {
            Ok(self.value)
        } else {
            Err(self.errors.remove(0))
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn defaults_are_bounded_and_unbounded_is_not() {
        let d = Limits::default();
        assert!(d.max_depth < 100_000);
        assert!(d.max_input_bytes < usize::MAX);
        let u = Limits::unbounded();
        assert_eq!(u.max_steps, u64::MAX);
        assert_eq!(u.max_depth, usize::MAX);
    }

    #[test]
    fn builder_overrides_one_field() {
        let l = Limits::default().with_max_depth(3).with_max_items(10);
        assert_eq!(l.max_depth, 3);
        assert_eq!(l.max_items, 10);
        assert_eq!(l.max_literal_bytes, Limits::default().max_literal_bytes);
    }

    #[test]
    fn depth_charges_and_releases() {
        let mut b = Budget::new(&Limits::default().with_max_depth(2));
        assert!(b.enter("t").is_ok());
        assert!(b.enter("t").is_ok());
        let err = b.enter("nesting").unwrap_err();
        assert_eq!(err.kind, LimitKind::Depth);
        assert_eq!(err.limit, 2);
        assert_eq!(err.observed, 3);
        b.exit();
        assert!(b.enter("t").is_ok(), "exit frees a level");
    }

    #[test]
    fn steps_and_items_accumulate() {
        let mut b = Budget::new(&Limits::default().with_max_steps(5).with_max_items(1));
        for _ in 0..5 {
            assert!(b.step("t").is_ok());
        }
        assert_eq!(b.step("work").unwrap_err().kind, LimitKind::Steps);
        assert!(b.item("t").is_ok());
        assert_eq!(b.item("t").unwrap_err().kind, LimitKind::Items);
    }

    #[test]
    fn input_and_literal_checks() {
        let b = Budget::new(
            &Limits::default()
                .with_max_input_bytes(10)
                .with_max_literal_bytes(4),
        );
        assert!(b.check_input(10, "doc").is_ok());
        assert_eq!(
            b.check_input(11, "doc").unwrap_err().kind,
            LimitKind::InputBytes
        );
        assert!(b.check_literal(4, "lit").is_ok());
        let err = b.check_literal(5, "lit").unwrap_err();
        assert_eq!(err.kind, LimitKind::LiteralBytes);
        assert_eq!(err.what, "lit");
    }

    #[test]
    fn violation_display_names_the_site() {
        let err = LimitViolation {
            kind: LimitKind::Depth,
            limit: 128,
            observed: 129,
            what: "turtle collection nesting",
        };
        let msg = err.to_string();
        assert!(msg.contains("turtle collection nesting"), "{msg}");
        assert!(msg.contains("depth"), "{msg}");
        assert!(msg.contains("129 > 128"), "{msg}");
    }

    #[test]
    fn partial_contract() {
        let ok: Partial<u32, &str> = Partial::complete(7);
        assert!(ok.is_complete());
        assert_eq!(ok.into_result(), Ok(7));
        let broken: Partial<u32, &str> = Partial::broken(3, "boom");
        assert!(!broken.is_complete());
        assert_eq!(broken.into_result(), Err("boom"));
    }
}

//! SOQA wrapper for DAML+OIL ontologies (the language of the paper's
//! University of Maryland `univ1.0.daml` ontology).

use sst_limits::Limits;
use sst_soqa::{Ontology, SoqaError};

use crate::dl_rdf::{graph_to_ontology, rdf_wrapper_err, DlVocabulary};

/// Parses a DAML+OIL (RDF/XML) document into a SOQA ontology, applying
/// [`Limits::default`].
// lint: allow(limits) convenience wrapper applying Limits::default()
pub fn parse_daml(source: &str, name: &str, base: &str) -> Result<Ontology, SoqaError> {
    parse_daml_with_limits(source, name, base, &Limits::default())
}

/// Like [`parse_daml`], but under an explicit resource [`Limits`] policy.
/// A violated limit surfaces as [`SoqaError::Limit`].
pub fn parse_daml_with_limits(
    source: &str,
    name: &str,
    base: &str,
    limits: &Limits,
) -> Result<Ontology, SoqaError> {
    let graph = sst_rdf::parse_rdfxml_with_limits(source, base, limits, None)
        .map_err(|e| rdf_wrapper_err("DAML+OIL", e))?;
    graph_to_ontology(&graph, name, &DlVocabulary::daml())
}

#[cfg(test)]
mod tests {
    use super::*;

    const UNIV: &str = r##"<?xml version="1.0"?>
<rdf:RDF xmlns:rdf="http://www.w3.org/1999/02/22-rdf-syntax-ns#"
         xmlns:rdfs="http://www.w3.org/2000/01/rdf-schema#"
         xmlns:daml="http://www.daml.org/2001/03/daml+oil#"
         xml:base="http://www.cs.umd.edu/projects/plus/DAML/onts/univ1.0.daml">
  <daml:Ontology rdf:about="">
    <daml:versionInfo>1.0</daml:versionInfo>
    <rdfs:comment>A university ontology in DAML.</rdfs:comment>
  </daml:Ontology>
  <daml:Class rdf:ID="Person">
    <rdfs:comment>A human.</rdfs:comment>
  </daml:Class>
  <daml:Class rdf:ID="Employee">
    <rdfs:subClassOf rdf:resource="#Person"/>
  </daml:Class>
  <daml:Class rdf:ID="Faculty">
    <daml:subClassOf rdf:resource="#Employee"/>
  </daml:Class>
  <daml:Class rdf:ID="Professor">
    <rdfs:subClassOf rdf:resource="#Faculty"/>
    <rdfs:comment>A member of the faculty who teaches and does research.</rdfs:comment>
  </daml:Class>
  <daml:DatatypeProperty rdf:ID="emailAddress">
    <rdfs:domain rdf:resource="#Person"/>
  </daml:DatatypeProperty>
</rdf:RDF>"##;

    #[test]
    fn maps_daml_and_rdfs_subclass_forms() {
        let o = parse_daml(UNIV, "base1_0_daml", "http://www.cs.umd.edu/univ").expect("parse");
        assert_eq!(o.metadata.language, "DAML+OIL");
        let person = o.concept_by_name("Person").unwrap();
        let employee = o.concept_by_name("Employee").unwrap();
        let faculty = o.concept_by_name("Faculty").unwrap();
        let prof = o.concept_by_name("Professor").unwrap();
        assert_eq!(o.direct_supers(employee), &[person]);
        assert_eq!(o.direct_supers(faculty), &[employee]); // daml:subClassOf
        assert_eq!(o.direct_supers(prof), &[faculty]);
        // Professor depth: Thing > Person > Employee > Faculty > Professor
        assert_eq!(o.depth(prof), 4);
    }

    #[test]
    fn thing_root_is_daml_thing_name() {
        let o = parse_daml(UNIV, "d", "http://x").expect("parse");
        let root = o.roots()[0];
        assert_eq!(o.concept(root).name, "Thing");
    }

    #[test]
    fn documentation_flows_through() {
        let o = parse_daml(UNIV, "d", "http://x").expect("parse");
        let prof = o.concept_by_name("Professor").unwrap();
        assert!(o
            .concept(prof)
            .documentation
            .as_deref()
            .unwrap()
            .contains("teaches and does research"));
        assert_eq!(o.metadata.version.as_deref(), Some("1.0"));
    }
}

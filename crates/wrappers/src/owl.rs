//! SOQA wrapper for OWL ontologies (RDF/XML or Turtle serialization).

use sst_limits::Limits;
use sst_soqa::{Ontology, SoqaError};

use crate::dl_rdf::{graph_to_ontology, looks_like_xml, rdf_wrapper_err, DlVocabulary};

/// Parses an OWL document into a SOQA ontology registered under `name`,
/// applying [`Limits::default`].
///
/// The serialization is sniffed: documents starting with `<` are parsed as
/// RDF/XML, anything else as Turtle. `base` is the document base IRI.
// lint: allow(limits) convenience wrapper applying Limits::default()
pub fn parse_owl(source: &str, name: &str, base: &str) -> Result<Ontology, SoqaError> {
    parse_owl_with_limits(source, name, base, &Limits::default())
}

/// Like [`parse_owl`], but under an explicit resource [`Limits`] policy.
/// A violated limit surfaces as [`SoqaError::Limit`].
pub fn parse_owl_with_limits(
    source: &str,
    name: &str,
    base: &str,
    limits: &Limits,
) -> Result<Ontology, SoqaError> {
    let graph = if looks_like_xml(source) {
        sst_rdf::parse_rdfxml_with_limits(source, base, limits, None)
    } else {
        sst_rdf::parse_turtle_with_limits(source, base, limits, None)
    }
    .map_err(|e| rdf_wrapper_err("OWL", e))?;
    graph_to_ontology(&graph, name, &DlVocabulary::owl())
}

#[cfg(test)]
mod tests {
    use super::*;

    const UNI: &str = r##"<?xml version="1.0"?>
<rdf:RDF xmlns:rdf="http://www.w3.org/1999/02/22-rdf-syntax-ns#"
         xmlns:rdfs="http://www.w3.org/2000/01/rdf-schema#"
         xmlns:owl="http://www.w3.org/2002/07/owl#"
         xmlns="http://example.org/uni#"
         xml:base="http://example.org/uni">
  <owl:Ontology rdf:about="">
    <rdfs:comment>A small university ontology.</rdfs:comment>
    <owl:versionInfo>1.1</owl:versionInfo>
  </owl:Ontology>
  <owl:Class rdf:ID="Person">
    <rdfs:comment>Any human being.</rdfs:comment>
  </owl:Class>
  <owl:Class rdf:ID="Student">
    <rdfs:subClassOf rdf:resource="#Person"/>
  </owl:Class>
  <owl:Class rdf:ID="Professor">
    <rdfs:subClassOf rdf:resource="#Person"/>
    <owl:disjointWith rdf:resource="#Student"/>
  </owl:Class>
  <owl:Class rdf:ID="Lecturer">
    <owl:equivalentClass rdf:resource="#Professor"/>
  </owl:Class>
  <owl:DatatypeProperty rdf:ID="name">
    <rdfs:domain rdf:resource="#Person"/>
    <rdfs:range rdf:resource="http://www.w3.org/2001/XMLSchema#string"/>
  </owl:DatatypeProperty>
  <owl:ObjectProperty rdf:ID="advisor">
    <rdfs:domain rdf:resource="#Student"/>
    <rdfs:range rdf:resource="#Professor"/>
  </owl:ObjectProperty>
  <Student rdf:ID="alice">
    <name>Alice</name>
    <advisor rdf:resource="#bob"/>
  </Student>
  <Professor rdf:ID="bob"/>
</rdf:RDF>"##;

    #[test]
    fn maps_classes_and_hierarchy() {
        let o = parse_owl(UNI, "uni", "http://example.org/uni").expect("parse");
        assert_eq!(o.metadata.language, "OWL");
        assert_eq!(o.metadata.version.as_deref(), Some("1.1"));
        assert!(o
            .metadata
            .documentation
            .as_deref()
            .unwrap()
            .contains("university"));

        // Thing + Person + Student + Professor + Lecturer
        assert_eq!(o.concept_count(), 5);
        let thing = o.concept_by_name("Thing").unwrap();
        assert_eq!(o.roots(), &[thing]);
        let person = o.concept_by_name("Person").unwrap();
        assert_eq!(o.direct_supers(person), &[thing]);
        let student = o.concept_by_name("Student").unwrap();
        assert_eq!(o.direct_supers(student), &[person]);
        assert_eq!(
            o.concept(person).documentation.as_deref(),
            Some("Any human being.")
        );
    }

    #[test]
    fn maps_equivalence_and_disjointness() {
        let o = parse_owl(UNI, "uni", "http://example.org/uni").expect("parse");
        let prof = o.concept_by_name("Professor").unwrap();
        let lecturer = o.concept_by_name("Lecturer").unwrap();
        let student = o.concept_by_name("Student").unwrap();
        assert!(o.concept(lecturer).equivalent_concepts.contains(&prof));
        assert!(o.concept(prof).equivalent_concepts.contains(&lecturer));
        assert!(o.concept(prof).antonym_concepts.contains(&student));
    }

    #[test]
    fn maps_properties() {
        let o = parse_owl(UNI, "uni", "http://example.org/uni").expect("parse");
        let person = o.concept_by_name("Person").unwrap();
        let attrs = &o.concept(person).attributes;
        assert_eq!(attrs.len(), 1);
        assert_eq!(o.attribute(attrs[0]).name, "name");
        assert_eq!(o.attribute(attrs[0]).data_type.as_deref(), Some("string"));

        assert_eq!(o.relationships().len(), 1);
        let rel = &o.relationships()[0];
        assert_eq!(rel.name, "advisor");
        assert_eq!(rel.related_concepts, vec!["Student", "Professor"]);
        assert_eq!(rel.arity, 2);
    }

    #[test]
    fn maps_instances_with_values() {
        let o = parse_owl(UNI, "uni", "http://example.org/uni").expect("parse");
        let student = o.concept_by_name("Student").unwrap();
        assert_eq!(o.concept(student).instances.len(), 1);
        let alice = o.instance(o.concept(student).instances[0]);
        assert_eq!(alice.name, "alice");
        assert!(alice
            .attribute_values
            .contains(&("name".into(), "Alice".into())));
        assert!(alice
            .relationship_values
            .contains(&("advisor".into(), "bob".into())));
    }

    #[test]
    fn parses_turtle_owl() {
        let src = "@prefix owl: <http://www.w3.org/2002/07/owl#> .\n\
                   @prefix rdfs: <http://www.w3.org/2000/01/rdf-schema#> .\n\
                   @prefix : <http://e/#> .\n\
                   :A a owl:Class .\n\
                   :B a owl:Class ; rdfs:subClassOf :A .\n";
        let o = parse_owl(src, "t", "http://e/").expect("parse");
        assert_eq!(o.concept_count(), 3); // Thing, A, B
        let a = o.concept_by_name("A").unwrap();
        let b = o.concept_by_name("B").unwrap();
        assert_eq!(o.direct_supers(b), &[a]);
    }

    #[test]
    fn malformed_input_is_a_wrapper_error() {
        let err = parse_owl("<rdf:RDF", "x", "http://x").unwrap_err();
        assert!(matches!(err, SoqaError::Wrapper { .. }));
    }
}

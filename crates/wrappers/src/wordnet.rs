//! SOQA wrapper for WordNet (Miller 1995), reading the lexical database's
//! native `data.pos` file format.
//!
//! Each line of a `data.noun` file describes one synset:
//!
//! ```text
//! offset lex_filenum ss_type w_cnt word lex_id [word lex_id…]
//!        p_cnt [ptr_symbol offset pos source/target…] | gloss
//! ```
//!
//! Synsets become SOQA concepts (named by their first lemma), hypernym
//! pointers (`@`, `@i`) become superconcept edges, and glosses become
//! documentation — exactly the projection the original SOQA WordNet wrapper
//! performed.

use std::collections::HashMap;

use sst_limits::{Budget, Limits};
use sst_soqa::{Ontology, OntologyBuilder, OntologyMetadata, SoqaError};

fn wrapper_err(message: impl Into<String>) -> SoqaError {
    SoqaError::Wrapper {
        language: "WordNet".into(),
        message: message.into(),
    }
}

/// One parsed synset line.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Synset {
    pub offset: u64,
    /// All lemmas, with WordNet's `_` separators preserved.
    pub words: Vec<String>,
    /// Offsets of hypernym synsets (`@` and `@i` pointers).
    pub hypernyms: Vec<u64>,
    pub gloss: String,
}

/// Parses one `data.pos` line. Lines starting with whitespace are the
/// license header and yield `None`.
// lint: allow(limits) single-line parser; the file-level entry points bound line length
pub fn parse_data_line(line: &str) -> Result<Option<Synset>, SoqaError> {
    if line.is_empty() || line.starts_with(' ') {
        return Ok(None);
    }
    let (head, gloss) = match line.split_once('|') {
        Some((h, g)) => (h, g.trim().to_owned()),
        None => (line, String::new()),
    };
    let fields: Vec<&str> = head.split_whitespace().collect();
    if fields.len() < 5 {
        return Err(wrapper_err(format!("short synset line: `{line}`")));
    }
    let offset = fields[0]
        .parse::<u64>()
        .map_err(|_| wrapper_err(format!("bad synset offset `{}`", fields[0])))?;
    // fields[1] = lex_filenum, fields[2] = ss_type.
    let w_cnt = usize::from_str_radix(fields[3], 16)
        .map_err(|_| wrapper_err(format!("bad word count `{}`", fields[3])))?;
    let mut i = 4;
    // Cap the pre-allocation by what the line can actually hold: `w_cnt`
    // comes straight from the input, so trusting it would let a one-line
    // document request an arbitrarily large buffer.
    let mut words = Vec::with_capacity(w_cnt.min(fields.len()));
    for _ in 0..w_cnt {
        let word = fields
            .get(i)
            .ok_or_else(|| wrapper_err("truncated word list"))?;
        words.push((*word).to_owned());
        i += 2; // skip lex_id
    }
    let p_cnt: usize = fields
        .get(i)
        .ok_or_else(|| wrapper_err("missing pointer count"))?
        .parse()
        .map_err(|_| wrapper_err("bad pointer count"))?;
    i += 1;
    let mut hypernyms = Vec::new();
    for _ in 0..p_cnt {
        let symbol = fields
            .get(i)
            .ok_or_else(|| wrapper_err("truncated pointer list"))?;
        let target = fields
            .get(i + 1)
            .ok_or_else(|| wrapper_err("truncated pointer target"))?
            .parse::<u64>()
            .map_err(|_| wrapper_err("bad pointer offset"))?;
        if *symbol == "@" || *symbol == "@i" {
            hypernyms.push(target);
        }
        i += 4; // symbol, offset, pos, source/target
    }
    Ok(Some(Synset {
        offset,
        words,
        hypernyms,
        gloss,
    }))
}

/// Parses a whole `data.pos` file into a SOQA ontology named `name`.
///
/// Concepts are named by the synset's first lemma; when several synsets
/// share a first lemma, later ones get `#2`, `#3`, … suffixes (WordNet
/// sense numbers).
// lint: allow(limits) convenience wrapper applying Limits::default()
pub fn parse_wordnet(data: &str, name: &str) -> Result<Ontology, SoqaError> {
    parse_wordnet_with_limits(data, name, &Limits::default())
}

/// Like [`parse_wordnet`], but under an explicit resource [`Limits`]
/// policy: the input-size cap bounds the whole file, the item cap bounds
/// the number of synsets, and the literal cap bounds any single line. A
/// violated limit surfaces as [`SoqaError::Limit`].
pub fn parse_wordnet_with_limits(
    data: &str,
    name: &str,
    limits: &Limits,
) -> Result<Ontology, SoqaError> {
    let mut budget = Budget::new(limits);
    budget.check_input(data.len(), "wordnet data file")?;
    let mut synsets = Vec::new();
    for line in data.lines() {
        budget.check_literal(line.len(), "wordnet data line")?;
        budget.charge_steps(line.len() as u64 + 1, "wordnet bytes")?;
        if let Some(s) = parse_data_line(line)? {
            budget.item("wordnet synsets")?;
            synsets.push(s);
        }
    }
    if synsets.is_empty() {
        return Err(wrapper_err("no synsets found"));
    }

    let metadata = OntologyMetadata {
        name: name.to_owned(),
        language: "WordNet".to_owned(),
        documentation: Some(format!("{} noun synsets", synsets.len())),
        ..OntologyMetadata::default()
    };
    let mut builder = OntologyBuilder::new(metadata);

    // Assign unique concept names per synset.
    let mut by_offset: HashMap<u64, sst_soqa::ConceptId> = HashMap::new();
    let mut name_uses: HashMap<String, usize> = HashMap::new();
    for s in &synsets {
        let base = s
            .words
            .first()
            .cloned()
            .unwrap_or_else(|| format!("synset_{}", s.offset));
        let uses = name_uses.entry(base.clone()).or_insert(0);
        *uses += 1;
        let concept_name = if *uses == 1 {
            base
        } else {
            format!("{base}#{uses}")
        };
        let id = builder.concept(&concept_name);
        if !s.gloss.is_empty() {
            builder.concept_mut(id).documentation = Some(s.gloss.clone());
        }
        if s.words.len() > 1 {
            builder.concept_mut(id).definition = Some(format!("synonyms: {}", s.words.join(", ")));
        }
        by_offset.insert(s.offset, id);
    }

    // Hypernym edges.
    for s in &synsets {
        let id = by_offset[&s.offset];
        for hyper in &s.hypernyms {
            match by_offset.get(hyper) {
                Some(&sup) => builder.add_subclass(id, sup),
                None => {
                    return Err(wrapper_err(format!(
                        "synset {} points to unknown hypernym {hyper}",
                        s.offset
                    )))
                }
            }
        }
    }

    Ok(builder.build())
}

/// One entry of an `index.pos` file: a lemma with the offsets of all
/// synsets it appears in, ordered by sense frequency.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct IndexEntry {
    pub lemma: String,
    pub synsets: Vec<u64>,
}

/// Parses one `index.pos` line:
///
/// ```text
/// lemma pos synset_cnt p_cnt [ptr_symbol…] sense_cnt tagsense_cnt offset…
/// ```
// lint: allow(limits) single-line parser; the file-level entry points bound line length
pub fn parse_index_line(line: &str) -> Result<Option<IndexEntry>, SoqaError> {
    if line.is_empty() || line.starts_with(' ') {
        return Ok(None);
    }
    let fields: Vec<&str> = line.split_whitespace().collect();
    if fields.len() < 6 {
        return Err(wrapper_err(format!("short index line: `{line}`")));
    }
    let lemma = fields[0].to_owned();
    let synset_cnt: usize = fields[2]
        .parse()
        .map_err(|_| wrapper_err(format!("bad synset count `{}`", fields[2])))?;
    let p_cnt: usize = fields[3]
        .parse()
        .map_err(|_| wrapper_err(format!("bad pointer count `{}`", fields[3])))?;
    // Skip pos, synset_cnt, p_cnt, the p_cnt pointer symbols, sense_cnt and
    // tagsense_cnt; the rest are synset offsets.
    let offset_start = 4 + p_cnt + 2;
    // `synset_cnt` is attacker-controlled; bound the pre-allocation by the
    // number of fields actually present on the line.
    let mut synsets = Vec::with_capacity(synset_cnt.min(fields.len()));
    for field in fields
        .get(offset_start..)
        .ok_or_else(|| wrapper_err("truncated index line"))?
    {
        synsets.push(
            field
                .parse::<u64>()
                .map_err(|_| wrapper_err(format!("bad synset offset `{field}`")))?,
        );
    }
    if synsets.len() != synset_cnt {
        return Err(wrapper_err(format!(
            "index line for `{lemma}` announces {synset_cnt} synsets but lists {}",
            synsets.len()
        )));
    }
    Ok(Some(IndexEntry { lemma, synsets }))
}

/// A lemma → synset-offset lookup built from an `index.pos` file, used to
/// resolve any synonym (not just the synset's first word) to its concept.
#[derive(Debug, Default)]
pub struct WordNetIndex {
    entries: HashMap<String, Vec<u64>>,
}

impl WordNetIndex {
    /// Parses a whole `index.pos` file under [`Limits::default`].
    // lint: allow(limits) convenience wrapper applying Limits::default()
    pub fn parse(data: &str) -> Result<WordNetIndex, SoqaError> {
        Self::parse_with_limits(data, &Limits::default())
    }

    /// Like [`WordNetIndex::parse`], but under an explicit resource
    /// [`Limits`] policy (item cap bounds lemma entries, literal cap bounds
    /// any single line).
    pub fn parse_with_limits(data: &str, limits: &Limits) -> Result<WordNetIndex, SoqaError> {
        let mut budget = Budget::new(limits);
        budget.check_input(data.len(), "wordnet index file")?;
        let mut entries = HashMap::new();
        for line in data.lines() {
            budget.check_literal(line.len(), "wordnet index line")?;
            budget.charge_steps(line.len() as u64 + 1, "wordnet index bytes")?;
            if let Some(e) = parse_index_line(line)? {
                budget.item("wordnet index entries")?;
                entries.insert(e.lemma, e.synsets);
            }
        }
        Ok(WordNetIndex { entries })
    }

    /// Number of lemmas.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// All synset offsets for `lemma` (most frequent sense first). WordNet
    /// lemmas are lowercase with `_` for spaces; the lookup normalizes.
    pub fn synsets(&self, lemma: &str) -> &[u64] {
        let normalized = lemma.to_lowercase().replace(' ', "_");
        self.entries
            .get(&normalized)
            .map(Vec::as_slice)
            .unwrap_or(&[])
    }

    /// The primary (most frequent) synset for `lemma`.
    pub fn primary_synset(&self, lemma: &str) -> Option<u64> {
        self.synsets(lemma).first().copied()
    }
}

/// Serializes synsets back into the `data.pos` format — used by the
/// workload generator to produce valid mini-WordNet files.
pub fn write_data_file(synsets: &[Synset]) -> String {
    let mut out = String::new();
    for s in synsets {
        out.push_str(&format!("{:08} 03 n {:02x}", s.offset, s.words.len()));
        for w in &s.words {
            out.push_str(&format!(" {w} 0"));
        }
        out.push_str(&format!(" {:03}", s.hypernyms.len()));
        for h in &s.hypernyms {
            out.push_str(&format!(" @ {h:08} n 0000"));
        }
        out.push_str(&format!(" | {}\n", s.gloss));
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    const MINI: &str = "  1 This header line mimics the WordNet license preamble.
00001740 03 n 01 entity 0 000 | that which is perceived or known or inferred
00002137 03 n 02 living_thing 0 organism 0 001 @ 00001740 n 0000 | a living organism
00007846 03 n 01 person 0 001 @ 00002137 n 0000 | a human being
00008007 03 n 01 researcher 0 001 @ 00007846 n 0000 | a scientist who devotes himself to doing research
00008123 03 n 01 bird 0 001 @ 00002137 n 0000 | warm-blooded egg-laying vertebrates
";

    #[test]
    fn parses_synset_lines() {
        let s = parse_data_line(
            "00002137 03 n 02 living_thing 0 organism 0 001 @ 00001740 n 0000 | a living organism",
        )
        .expect("parse")
        .expect("synset");
        assert_eq!(s.offset, 2137);
        assert_eq!(s.words, vec!["living_thing", "organism"]);
        assert_eq!(s.hypernyms, vec![1740]);
        assert_eq!(s.gloss, "a living organism");
    }

    #[test]
    fn header_lines_are_skipped() {
        assert_eq!(parse_data_line("  1 license text").expect("ok"), None);
        assert_eq!(parse_data_line("").expect("ok"), None);
    }

    #[test]
    fn builds_hypernym_hierarchy() {
        let o = parse_wordnet(MINI, "wordnet").expect("parse");
        assert_eq!(o.concept_count(), 5);
        let entity = o.concept_by_name("entity").unwrap();
        assert_eq!(o.roots(), &[entity]);
        let researcher = o.concept_by_name("researcher").unwrap();
        assert_eq!(o.depth(researcher), 3);
        let person = o.concept_by_name("person").unwrap();
        assert_eq!(o.direct_supers(researcher), [person]);
    }

    #[test]
    fn glosses_become_documentation() {
        let o = parse_wordnet(MINI, "wordnet").expect("parse");
        let bird = o.concept_by_name("bird").unwrap();
        assert!(o
            .concept(bird)
            .documentation
            .as_deref()
            .unwrap()
            .contains("egg-laying"));
        let lt = o.concept_by_name("living_thing").unwrap();
        assert!(o
            .concept(lt)
            .definition
            .as_deref()
            .unwrap()
            .contains("organism"));
    }

    #[test]
    fn duplicate_first_lemmas_get_sense_suffixes() {
        let data = "\
00000001 03 n 01 bank 0 000 | sloping land beside a body of water
00000002 03 n 01 bank 0 000 | a financial institution
";
        let o = parse_wordnet(data, "wn").expect("parse");
        assert!(o.concept_by_name("bank").is_some());
        assert!(o.concept_by_name("bank#2").is_some());
    }

    #[test]
    fn dangling_hypernym_is_an_error() {
        let data = "00000001 03 n 01 x 0 001 @ 99999999 n 0000 | dangling\n";
        assert!(parse_wordnet(data, "wn").is_err());
    }

    #[test]
    fn index_line_parsing() {
        // Real index.noun shape: lemma pos synset_cnt p_cnt ptrs… sense_cnt tagsense_cnt offsets…
        let e = parse_index_line("professor n 1 2 @ ~ 1 1 20815")
            .expect("parse")
            .expect("entry");
        assert_eq!(e.lemma, "professor");
        assert_eq!(e.synsets, vec![20815]);
        let e = parse_index_line("bank n 2 1 @ 2 1 00000001 00000002")
            .expect("parse")
            .expect("entry");
        assert_eq!(e.synsets, vec![1, 2]);
        assert_eq!(parse_index_line("  1 header").expect("ok"), None);
        assert!(parse_index_line("bank n 3 0 3 1 00000001").is_err()); // count mismatch
    }

    #[test]
    fn wordnet_index_lookup() {
        let idx = WordNetIndex::parse(
            "  1 header\nprofessor n 1 0 1 1 20815\nresearch_worker n 1 0 1 0 21180\n",
        )
        .expect("parse");
        assert_eq!(idx.len(), 2);
        assert_eq!(idx.primary_synset("professor"), Some(20815));
        assert_eq!(idx.primary_synset("Research Worker"), Some(21180));
        assert!(idx.synsets("ghost").is_empty());
    }

    #[test]
    fn huge_announced_counts_do_not_preallocate() {
        // Regression: the announced word/synset counts used to size
        // `Vec::with_capacity` directly, so a single forged line could
        // demand gigabytes. Both must fail fast instead.
        assert!(parse_data_line("00000001 03 n ffffffff x 0 000 | g").is_err());
        assert!(parse_index_line("bank n 99999999 0 1 1 00000001").is_err());
    }

    #[test]
    fn limits_bound_synset_count() {
        let limits = Limits::default().with_max_items(2);
        let err = parse_wordnet_with_limits(MINI, "wn", &limits).unwrap_err();
        assert!(matches!(err, SoqaError::Limit(_)));
        assert!(parse_wordnet_with_limits(MINI, "wn", &Limits::default()).is_ok());
    }

    #[test]
    fn roundtrip_through_writer() {
        let o = parse_wordnet(MINI, "wn").expect("parse");
        let synsets: Vec<Synset> = MINI
            .lines()
            .filter_map(|l| parse_data_line(l).unwrap())
            .collect();
        let written = write_data_file(&synsets);
        let o2 = parse_wordnet(&written, "wn").expect("reparse");
        assert_eq!(o.concept_count(), o2.concept_count());
        assert_eq!(o.max_depth(), o2.max_depth());
    }
}

//! Shared mapping from description-logic RDF vocabularies (OWL, DAML+OIL)
//! onto the SOQA meta model. The OWL and DAML wrappers differ only in their
//! vocabulary IRIs, so both delegate here.

use sst_rdf::vocab::rdfs;
use sst_rdf::{Graph, Iri, Literal, Term};
use sst_soqa::{
    Attribute, Instance, Ontology, OntologyBuilder, OntologyMetadata, Relationship, SoqaError,
};

/// The vocabulary IRIs a DL-style RDF ontology language uses.
#[derive(Debug, Clone)]
pub struct DlVocabulary {
    /// Human-readable language name recorded in the metadata.
    pub language: &'static str,
    pub class: Iri,
    /// The implicit top concept (`owl:Thing` / `daml:Thing`).
    pub thing: Iri,
    pub ontology: Iri,
    pub object_property: Iri,
    pub datatype_property: Iri,
    pub sub_class_of: Vec<Iri>,
    pub equivalent_class: Vec<Iri>,
    pub disjoint_with: Vec<Iri>,
    pub version_info: Iri,
}

impl DlVocabulary {
    /// OWL (W3C 2004) vocabulary.
    pub fn owl() -> Self {
        use sst_rdf::vocab::owl;
        DlVocabulary {
            language: "OWL",
            class: owl::class(),
            thing: owl::thing(),
            ontology: owl::ontology(),
            object_property: owl::object_property(),
            datatype_property: owl::datatype_property(),
            sub_class_of: vec![rdfs::sub_class_of()],
            equivalent_class: vec![owl::equivalent_class()],
            disjoint_with: vec![owl::disjoint_with()],
            version_info: owl::version_info(),
        }
    }

    /// DAML+OIL (March 2001) vocabulary. DAML documents mix `daml:` and
    /// `rdfs:` terms, so both subclass forms are accepted.
    pub fn daml() -> Self {
        use sst_rdf::vocab::daml;
        DlVocabulary {
            language: "DAML+OIL",
            class: daml::class(),
            thing: daml::thing(),
            ontology: daml::ontology(),
            object_property: daml::object_property(),
            datatype_property: daml::datatype_property(),
            sub_class_of: vec![daml::sub_class_of(), rdfs::sub_class_of()],
            equivalent_class: vec![daml::same_class_as()],
            disjoint_with: vec![Iri::new(format!("{}disjointWith", sst_rdf::vocab::DAML_NS))],
            version_info: daml::version_info(),
        }
    }
}

fn literal_text(term: &Term) -> Option<String> {
    term.as_literal().map(|l: &Literal| l.lexical.clone())
}

/// Short display name for a resource term (IRI local name or blank label).
fn term_name(term: &Term) -> Option<String> {
    match term {
        Term::Iri(iri) => Some(iri.local_name().to_owned()),
        Term::Blank(b) => Some(format!("_:{}", b.0)),
        Term::Literal(_) => None,
    }
}

/// Maps an RDF graph to a SOQA [`Ontology`] under the given vocabulary.
///
/// `name` becomes the ontology's registered name (e.g. `univ-bench_owl`).
pub fn graph_to_ontology(
    graph: &Graph,
    name: &str,
    vocab: &DlVocabulary,
) -> Result<Ontology, SoqaError> {
    let type_iri = sst_rdf::vocab::rdf::type_();

    // ---- Ontology metadata --------------------------------------------
    let mut metadata = OntologyMetadata {
        name: name.to_owned(),
        language: vocab.language.to_owned(),
        uri: graph.base().map(str::to_owned),
        ..OntologyMetadata::default()
    };
    if let Some(onto_node) = graph.instances_of(&vocab.ontology).into_iter().next() {
        metadata.documentation = graph
            .object_for(&onto_node, &rdfs::comment())
            .and_then(|t| literal_text(&t));
        metadata.version = graph
            .object_for(&onto_node, &vocab.version_info)
            .and_then(|t| literal_text(&t));
        if let Some(Term::Iri(iri)) = Some(&onto_node).filter(|t| t.as_iri().is_some()).cloned() {
            if !iri.as_str().is_empty() {
                metadata.uri = Some(iri.as_str().to_owned());
            }
        }
        // Dublin Core creator/date, which real ontology headers use.
        for (field, preds) in [
            (&mut metadata.author, ["creator", "author"]),
            (&mut metadata.last_modified, ["date", "modified"]),
        ] {
            for p in preds {
                for ns in [
                    "http://purl.org/dc/elements/1.1/",
                    "http://purl.org/dc/terms/",
                ] {
                    if field.is_none() {
                        *field = graph
                            .object_for(&onto_node, &Iri::new(format!("{ns}{p}")))
                            .and_then(|t| literal_text(&t));
                    }
                }
            }
        }
    }

    let mut builder = OntologyBuilder::new(metadata);

    // ---- Concepts -------------------------------------------------------
    // Every subject typed as a class, plus every resource that appears in a
    // subclass axiom, is a concept. The implicit Thing root is added last so
    // classes without an explicit superclass hang off it.
    let thing_name = vocab.thing.local_name().to_owned();
    let mut class_terms: Vec<Term> = graph.instances_of(&vocab.class);
    for sub_pred in &vocab.sub_class_of {
        for t in graph.matching(None, Some(sub_pred), None) {
            class_terms.push(t.subject.clone());
            class_terms.push(t.object.clone());
        }
    }
    class_terms.retain(|t| matches!(t, Term::Iri(_)));
    class_terms.sort();
    class_terms.dedup();

    let thing_id = builder.concept(&thing_name);
    for term in &class_terms {
        let Some(cname) = term_name(term) else {
            continue;
        };
        let id = builder.concept(&cname);
        let doc = graph
            .object_for(term, &rdfs::comment())
            .and_then(|t| literal_text(&t));
        let label = graph
            .object_for(term, &rdfs::label())
            .and_then(|t| literal_text(&t));
        let c = builder.concept_mut(id);
        if c.documentation.is_none() {
            c.documentation = doc;
        }
        if c.definition.is_none() {
            c.definition = label.map(|l| format!("label: {l}"));
        }
    }

    // Subclass edges.
    for sub_pred in &vocab.sub_class_of {
        for t in graph.matching(None, Some(sub_pred), None) {
            let (Some(sub), Some(sup)) = (term_name(&t.subject), term_name(&t.object)) else {
                continue;
            };
            if sub.starts_with("_:") || sup.starts_with("_:") {
                // Restriction blank nodes — not named concepts.
                continue;
            }
            let sub_id = builder.concept(&sub);
            let sup_id = builder.concept(&sup);
            builder.add_subclass(sub_id, sup_id);
        }
    }

    // Equivalences and disjointness.
    for (preds, is_equiv) in [
        (&vocab.equivalent_class, true),
        (&vocab.disjoint_with, false),
    ] {
        for pred in preds {
            for t in graph.matching(None, Some(pred), None) {
                let (Some(a), Some(b)) = (term_name(&t.subject), term_name(&t.object)) else {
                    continue;
                };
                if a.starts_with("_:") || b.starts_with("_:") {
                    continue;
                }
                let a = builder.concept(&a);
                let b = builder.concept(&b);
                if is_equiv {
                    builder.add_equivalent(a, b);
                } else {
                    builder.add_antonym(a, b);
                }
            }
        }
    }

    // ---- Properties -----------------------------------------------------
    // Datatype properties become SOQA attributes on their domain concepts;
    // object properties become binary relationships.
    let domain = rdfs::domain();
    let range = rdfs::range();
    for prop_term in graph.instances_of(&vocab.datatype_property) {
        let Some(pname) = term_name(&prop_term) else {
            continue;
        };
        let doc = graph
            .object_for(&prop_term, &rdfs::comment())
            .and_then(|t| literal_text(&t));
        let dt = graph
            .object_for(&prop_term, &range)
            .and_then(|t| term_name(&t));
        let domains: Vec<String> = graph
            .objects_for(&prop_term, &domain)
            .iter()
            .filter_map(term_name)
            .collect();
        for d in domains {
            if !d.starts_with("_:") {
                let cid = builder.concept(&d);
                builder.add_attribute(Attribute {
                    name: pname.clone(),
                    documentation: doc.clone(),
                    data_type: dt.clone(),
                    definition: None,
                    concept: cid,
                });
            }
        }
    }
    for prop_term in graph.instances_of(&vocab.object_property) {
        let Some(pname) = term_name(&prop_term) else {
            continue;
        };
        let doc = graph
            .object_for(&prop_term, &rdfs::comment())
            .and_then(|t| literal_text(&t));
        let domains: Vec<String> = graph
            .objects_for(&prop_term, &domain)
            .iter()
            .filter_map(term_name)
            .filter(|n| !n.starts_with("_:"))
            .collect();
        let ranges: Vec<String> = graph
            .objects_for(&prop_term, &range)
            .iter()
            .filter_map(term_name)
            .filter(|n| !n.starts_with("_:"))
            .collect();
        let mut related = domains;
        related.extend(ranges);
        let arity = related.len().max(2);
        builder.add_relationship(Relationship {
            name: pname,
            documentation: doc,
            definition: None,
            arity,
            related_concepts: related,
        });
    }

    // ---- Instances ------------------------------------------------------
    // Subjects typed with a class we know (and that are not themselves
    // classes or properties) are instances.
    let known: std::collections::HashSet<String> =
        class_terms.iter().filter_map(term_name).collect();
    for t in graph.matching(None, Some(&type_iri), None) {
        let Some(class_name) = term_name(&t.object) else {
            continue;
        };
        if !known.contains(&class_name) {
            continue;
        }
        let Some(inst_name) = term_name(&t.subject) else {
            continue;
        };
        if known.contains(&inst_name) || inst_name.starts_with("_:") {
            continue;
        }
        let cid = builder.concept(&class_name);
        // Collect literal-valued statements as attribute values and
        // resource-valued ones as relationship values.
        let mut attribute_values = Vec::new();
        let mut relationship_values = Vec::new();
        for st in graph.matching(Some(&t.subject), None, None) {
            if st.predicate == type_iri {
                continue;
            }
            let pname = st.predicate.local_name().to_owned();
            match &st.object {
                Term::Literal(l) => attribute_values.push((pname, l.lexical.clone())),
                other => {
                    if let Some(oname) = term_name(other) {
                        relationship_values.push((pname, oname));
                    }
                }
            }
        }
        builder.add_instance(Instance {
            name: inst_name,
            concept: cid,
            attribute_values,
            relationship_values,
        });
    }

    // ---- Implicit root --------------------------------------------------
    // Any concept (other than Thing itself) without a superconcept becomes a
    // direct subconcept of Thing, mirroring OWL semantics.
    let orphans: Vec<sst_soqa::ConceptId> = (0..builder.concept_count() as u32)
        .map(sst_soqa::ConceptId)
        .filter(|&c| c != thing_id && builder.concept_ref(c).super_concepts.is_empty())
        .collect();
    for c in orphans {
        builder.add_subclass(c, thing_id);
    }

    Ok(builder.build())
}

/// Heuristic check used by wrapper entry points: does `source` look like an
/// RDF/XML document (as opposed to Turtle)?
pub fn looks_like_xml(source: &str) -> bool {
    source.trim_start().starts_with('<')
}

/// Maps an `sst-rdf` error into a SOQA error, preserving resource-limit
/// violations as [`SoqaError::Limit`] so callers can distinguish a hostile
/// document from a merely malformed one.
pub(crate) fn rdf_wrapper_err(language: &str, error: sst_rdf::RdfError) -> SoqaError {
    match error {
        sst_rdf::RdfError::Limit(violation) => SoqaError::Limit(violation),
        other => SoqaError::Wrapper {
            language: language.into(),
            message: other.to_string(),
        },
    }
}

//! The wrapper abstraction (paper Fig. 2): every ontology language plugs
//! into SOQA through one trait, and the registry dispatches by language or
//! file extension — "further ontology languages can easily be integrated
//! into SOQA by providing supplementary SOQA wrappers" (§6).

use std::fmt;
use std::path::Path;

use sst_soqa::{Ontology, SoqaError};

use crate::{parse_daml, parse_owl, parse_powerloom, parse_wordnet, Language};

/// A SOQA ontology wrapper: parses one ontology language into the meta
/// model.
pub trait OntologyWrapper: Send + Sync {
    /// Language name as reported in ontology metadata.
    fn language(&self) -> &'static str;
    /// File extensions (lowercase, without dot) this wrapper claims.
    fn extensions(&self) -> &'static [&'static str];
    /// Parses `source` into an ontology registered under `name`; `base` is
    /// the base IRI for RDF-based languages (ignored otherwise).
    fn parse(&self, source: &str, name: &str, base: &str) -> Result<Ontology, SoqaError>;
}

impl fmt::Debug for dyn OntologyWrapper {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "OntologyWrapper({})", self.language())
    }
}

macro_rules! wrapper {
    ($ty:ident, $language:literal, $exts:expr, |$src:ident, $name:ident, $base:ident| $body:expr) => {
        #[derive(Debug, Default, Clone, Copy)]
        pub struct $ty;

        impl OntologyWrapper for $ty {
            fn language(&self) -> &'static str {
                $language
            }

            fn extensions(&self) -> &'static [&'static str] {
                $exts
            }

            fn parse(&self, $src: &str, $name: &str, $base: &str) -> Result<Ontology, SoqaError> {
                $body
            }
        }
    };
}

wrapper!(
    OwlWrapper,
    "OWL",
    &["owl", "rdf", "ttl"],
    |src, name, base| parse_owl(src, name, base)
);
wrapper!(DamlWrapper, "DAML+OIL", &["daml"], |src, name, base| {
    parse_daml(src, name, base)
});
wrapper!(
    PowerLoomWrapper,
    "PowerLoom",
    &["ploom", "plm"],
    |src, name, _base| parse_powerloom(src, name)
);
wrapper!(
    WordNetWrapper,
    "WordNet",
    &["noun", "wn"],
    |src, name, _base| parse_wordnet(src, name)
);

/// Registry of available wrappers; extensible at runtime with custom ones.
pub struct WrapperRegistry {
    wrappers: Vec<Box<dyn OntologyWrapper>>,
}

impl fmt::Debug for WrapperRegistry {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let langs: Vec<&str> = self.wrappers.iter().map(|w| w.language()).collect();
        write!(f, "WrapperRegistry({langs:?})")
    }
}

impl Default for WrapperRegistry {
    fn default() -> Self {
        WrapperRegistry {
            wrappers: vec![
                Box::new(OwlWrapper),
                Box::new(DamlWrapper),
                Box::new(PowerLoomWrapper),
                Box::new(WordNetWrapper),
            ],
        }
    }
}

impl WrapperRegistry {
    pub fn new() -> Self {
        WrapperRegistry::default()
    }

    /// Registers a supplementary wrapper (checked ahead of the defaults).
    pub fn register(&mut self, wrapper: Box<dyn OntologyWrapper>) {
        self.wrappers.insert(0, wrapper);
    }

    /// Languages currently supported, in lookup order.
    pub fn languages(&self) -> Vec<&'static str> {
        self.wrappers.iter().map(|w| w.language()).collect()
    }

    /// Finds the wrapper for a language name (case-insensitive).
    pub fn by_language(&self, language: &str) -> Option<&dyn OntologyWrapper> {
        self.wrappers
            .iter()
            .find(|w| w.language().eq_ignore_ascii_case(language))
            .map(AsRef::as_ref)
    }

    /// Finds the wrapper claiming `path`'s extension (or `data.*` name for
    /// WordNet database files).
    pub fn for_path(&self, path: &Path) -> Option<&dyn OntologyWrapper> {
        let file_name = path.file_name()?.to_str()?.to_ascii_lowercase();
        if file_name.starts_with("data.") || file_name.starts_with("index.") {
            return self.by_language("WordNet");
        }
        let ext = path.extension()?.to_str()?.to_ascii_lowercase();
        self.wrappers
            .iter()
            .find(|w| w.extensions().contains(&ext.as_str()))
            .map(AsRef::as_ref)
    }

    /// Loads an ontology file: dispatches by path, reads the file, and
    /// parses it under `name` (defaults to the file stem) and `base`.
    pub fn load_file(
        &self,
        path: &Path,
        name: Option<&str>,
        base: &str,
    ) -> Result<Ontology, SoqaError> {
        let wrapper = self.for_path(path).ok_or_else(|| SoqaError::Wrapper {
            language: "?".into(),
            message: format!("no wrapper claims `{}`", path.display()),
        })?;
        let source = std::fs::read_to_string(path).map_err(|e| SoqaError::Wrapper {
            language: wrapper.language().into(),
            message: format!("cannot read {}: {e}", path.display()),
        })?;
        let stem = path
            .file_stem()
            .and_then(|s| s.to_str())
            .unwrap_or("ontology");
        wrapper.parse(&source, name.unwrap_or(stem), base)
    }
}

/// Convenience mapping from the [`Language`] enum to its default wrapper.
pub fn wrapper_for(language: Language) -> Box<dyn OntologyWrapper> {
    match language {
        Language::Owl => Box::new(OwlWrapper),
        Language::Daml => Box::new(DamlWrapper),
        Language::PowerLoom => Box::new(PowerLoomWrapper),
        Language::WordNet => Box::new(WordNetWrapper),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn registry_dispatches_by_extension() {
        let registry = WrapperRegistry::new();
        assert_eq!(
            registry
                .for_path(Path::new("x/univ-bench.owl"))
                .unwrap()
                .language(),
            "OWL"
        );
        assert_eq!(
            registry
                .for_path(Path::new("univ1.0.daml"))
                .unwrap()
                .language(),
            "DAML+OIL"
        );
        assert_eq!(
            registry
                .for_path(Path::new("course.PLOOM"))
                .unwrap()
                .language(),
            "PowerLoom"
        );
        assert_eq!(
            registry
                .for_path(Path::new("wn/data.noun"))
                .unwrap()
                .language(),
            "WordNet"
        );
        assert!(registry.for_path(Path::new("mystery.xyz")).is_none());
    }

    #[test]
    fn by_language_is_case_insensitive() {
        let registry = WrapperRegistry::new();
        assert!(registry.by_language("powerloom").is_some());
        assert!(registry.by_language("OWL").is_some());
        assert!(registry.by_language("CycL").is_none());
    }

    #[test]
    fn wrappers_parse_through_the_trait() {
        let registry = WrapperRegistry::new();
        let wrapper = registry.by_language("PowerLoom").unwrap();
        let onto = wrapper
            .parse("(defconcept A) (defconcept B (?b A))", "t", "")
            .expect("parse");
        assert_eq!(onto.concept_count(), 2);
        assert_eq!(onto.metadata.language, "PowerLoom");
    }

    #[test]
    fn custom_wrappers_take_precedence() {
        #[derive(Debug)]
        struct FakeOwl;
        impl OntologyWrapper for FakeOwl {
            fn language(&self) -> &'static str {
                "FakeOWL"
            }
            fn extensions(&self) -> &'static [&'static str] {
                &["owl"]
            }
            fn parse(&self, _: &str, name: &str, _: &str) -> Result<Ontology, SoqaError> {
                let builder = sst_soqa::OntologyBuilder::new(sst_soqa::OntologyMetadata {
                    name: name.into(),
                    language: "FakeOWL".into(),
                    ..Default::default()
                });
                Ok(builder.build())
            }
        }
        let mut registry = WrapperRegistry::new();
        registry.register(Box::new(FakeOwl));
        assert_eq!(
            registry.for_path(Path::new("x.owl")).unwrap().language(),
            "FakeOWL"
        );
        assert_eq!(registry.languages()[0], "FakeOWL");
    }

    #[test]
    fn load_file_round_trips_the_corpus_files() {
        let registry = WrapperRegistry::new();
        let data = Path::new(env!("CARGO_MANIFEST_DIR")).join("../../data/ontologies");
        let onto = registry
            .load_file(&data.join("course.ploom"), None, "")
            .expect("load course.ploom");
        assert_eq!(onto.name(), "course");
        assert_eq!(onto.metadata.language, "PowerLoom");
        let onto = registry
            .load_file(
                &data.join("univ-bench.owl"),
                Some("univ"),
                "http://www.lehigh.edu/univ-bench.owl",
            )
            .expect("load univ-bench.owl");
        assert_eq!(onto.name(), "univ");
        assert_eq!(onto.concept_count(), 44);
    }

    #[test]
    fn load_file_errors_are_informative() {
        let registry = WrapperRegistry::new();
        let err = registry
            .load_file(Path::new("/nonexistent/x.owl"), None, "")
            .unwrap_err();
        assert!(matches!(err, SoqaError::Wrapper { .. }));
        let err = registry
            .load_file(Path::new("/tmp/unknown.format"), None, "")
            .unwrap_err();
        assert!(err.to_string().contains("no wrapper"));
    }
}

//! # sst-wrappers — SOQA ontology-language wrappers
//!
//! The paper's SOQA reaches ontologies through per-language wrappers
//! ("Internally, ontology wrappers are used as an interface to existing
//! reasoners… we have implemented SOQA ontology wrappers for OWL, PowerLoom,
//! DAML, and the lexical ontology WordNet"). This crate provides those four
//! wrappers, each parsing its native format (via `sst-rdf` / `sst-sexpr` or
//! directly) into the SOQA meta model of `sst-soqa`.

#![warn(missing_debug_implementations)]
#![forbid(unsafe_code)]

pub mod daml;
pub mod dl_rdf;
pub mod owl;
pub mod powerloom;
pub mod registry;
pub mod wordnet;

pub use daml::{parse_daml, parse_daml_with_limits};
pub use owl::{parse_owl, parse_owl_with_limits};
pub use powerloom::{parse_powerloom, parse_powerloom_with_limits};
pub use registry::{
    wrapper_for, DamlWrapper, OntologyWrapper, OwlWrapper, PowerLoomWrapper, WordNetWrapper,
    WrapperRegistry,
};
pub use sst_limits::{LimitKind, LimitViolation, Limits};
pub use wordnet::{
    parse_index_line, parse_wordnet, parse_wordnet_with_limits, write_data_file, IndexEntry,
    Synset, WordNetIndex,
};

use sst_soqa::{Ontology, SoqaError};

/// The ontology languages SOQA has wrappers for.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Language {
    Owl,
    Daml,
    PowerLoom,
    WordNet,
}

impl Language {
    /// Guesses the language from a file name
    /// (`.owl`, `.daml`, `.ploom`/`.plm`, `data.*`).
    pub fn from_path(path: &str) -> Option<Language> {
        let lower = path.to_ascii_lowercase();
        if lower.ends_with(".owl") || lower.ends_with(".rdf") || lower.ends_with(".ttl") {
            Some(Language::Owl)
        } else if lower.ends_with(".daml") {
            Some(Language::Daml)
        } else if lower.ends_with(".ploom") || lower.ends_with(".plm") {
            Some(Language::PowerLoom)
        } else if lower.contains("data.") || lower.ends_with(".wn") {
            Some(Language::WordNet)
        } else {
            None
        }
    }
}

/// One-call dispatch: parses `source` as `language` into an ontology named
/// `name`, applying [`Limits::default`]. RDF-based languages resolve
/// relative IRIs against `base`.
// lint: allow(limits) convenience wrapper applying Limits::default()
pub fn parse(
    language: Language,
    source: &str,
    name: &str,
    base: &str,
) -> Result<Ontology, SoqaError> {
    parse_with_limits(language, source, name, base, &Limits::default())
}

/// Like [`parse`], but under an explicit resource [`Limits`] policy. A
/// violated limit surfaces as [`SoqaError::Limit`] instead of a generic
/// wrapper error.
pub fn parse_with_limits(
    language: Language,
    source: &str,
    name: &str,
    base: &str,
    limits: &Limits,
) -> Result<Ontology, SoqaError> {
    match language {
        Language::Owl => parse_owl_with_limits(source, name, base, limits),
        Language::Daml => parse_daml_with_limits(source, name, base, limits),
        Language::PowerLoom => parse_powerloom_with_limits(source, name, limits),
        Language::WordNet => parse_wordnet_with_limits(source, name, limits),
    }
}

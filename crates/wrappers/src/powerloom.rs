//! SOQA wrapper for PowerLoom knowledge bases (`.ploom` modules).
//!
//! Supports the definition forms the SIRUP Course Ontology uses:
//! `defmodule`/`in-module`, `defconcept` (with variable-typed supers and
//! `(and A B)` conjunctions), `defrelation` (concept–concept relations and
//! concept–datatype relations, the latter mapped to SOQA attributes),
//! `deffunction` (mapped to SOQA methods), and `assert` of unary membership
//! and binary attribute facts.

use sst_limits::Limits;
use sst_sexpr::{parse_all_with_limits, Value};
use sst_soqa::{
    Attribute, Instance, Method, Ontology, OntologyBuilder, OntologyMetadata, Parameter,
    Relationship, SoqaError,
};

/// Datatype names PowerLoom treats as literal types; relations ranging over
/// these become SOQA attributes rather than relationships.
const LITERAL_TYPES: &[&str] = &["STRING", "NUMBER", "INTEGER", "FLOAT", "BOOLEAN", "DATE"];

fn is_literal_type(name: &str) -> bool {
    LITERAL_TYPES.iter().any(|t| t.eq_ignore_ascii_case(name))
}

fn wrapper_err(message: impl Into<String>) -> SoqaError {
    SoqaError::Wrapper {
        language: "PowerLoom".into(),
        message: message.into(),
    }
}

/// Parses a PowerLoom module into a SOQA ontology registered under `name`,
/// applying [`Limits::default`].
// lint: allow(limits) convenience wrapper applying Limits::default()
pub fn parse_powerloom(source: &str, name: &str) -> Result<Ontology, SoqaError> {
    parse_powerloom_with_limits(source, name, &Limits::default())
}

/// Like [`parse_powerloom`], but under an explicit resource [`Limits`]
/// policy. A violated limit surfaces as [`SoqaError::Limit`].
pub fn parse_powerloom_with_limits(
    source: &str,
    name: &str,
    limits: &Limits,
) -> Result<Ontology, SoqaError> {
    let forms = parse_all_with_limits(source, limits, None).map_err(|e| match e.violation {
        Some(violation) => SoqaError::Limit(violation),
        None => wrapper_err(e.to_string()),
    })?;
    let mut metadata = OntologyMetadata {
        name: name.to_owned(),
        language: "PowerLoom".to_owned(),
        ..OntologyMetadata::default()
    };

    // First pass: module metadata.
    for form in &forms {
        let Some(head) = form.head().and_then(Value::as_symbol) else {
            continue;
        };
        if head.eq_ignore_ascii_case("defmodule") {
            if let Some(doc) = form.keyword_value("documentation").and_then(Value::as_str) {
                metadata.documentation = Some(doc.to_owned());
            }
            if let Some(v) = form.keyword_value("version").and_then(Value::as_str) {
                metadata.version = Some(v.to_owned());
            }
            if let Some(a) = form.keyword_value("author").and_then(Value::as_str) {
                metadata.author = Some(a.to_owned());
            }
        }
    }

    let mut builder = OntologyBuilder::new(metadata);

    for form in &forms {
        let Some(head) = form.head().and_then(Value::as_symbol) else {
            continue;
        };
        match head.to_ascii_lowercase().as_str() {
            "defconcept" => def_concept(&mut builder, form)?,
            "defrelation" => def_relation(&mut builder, form)?,
            "deffunction" => def_function(&mut builder, form)?,
            "assert" => do_assert(&mut builder, form)?,
            // Module plumbing — no model content.
            "defmodule" | "in-module" | "in-package" | "in-dialect" | "clear-module" => {}
            other => {
                return Err(wrapper_err(format!(
                    "unsupported top-level form `({other} …)`"
                )))
            }
        }
    }

    Ok(builder.build())
}

/// `(defconcept NAME [(?v SUPER…)] [:documentation "…"])`
fn def_concept(builder: &mut OntologyBuilder, form: &Value) -> Result<(), SoqaError> {
    let tail = form.tail();
    let name = tail
        .first()
        .and_then(Value::as_symbol)
        .ok_or_else(|| wrapper_err("defconcept requires a concept name"))?;
    let id = builder.concept(name);
    if let Some(doc) = form.keyword_value("documentation").and_then(Value::as_str) {
        builder.concept_mut(id).documentation = Some(doc.to_owned());
    }
    // The optional second element is the typed-variable list: (?c SUPER) or
    // (?c (and A B)).
    if let Some(Value::List(sig)) = tail.get(1) {
        for super_name in collect_supers(sig) {
            if is_literal_type(&super_name) {
                continue;
            }
            let sup = builder.concept(&super_name);
            builder.add_subclass(id, sup);
        }
    }
    // Record the raw form as the definition (axioms subsumed by definition,
    // paper footnote 10).
    builder.concept_mut(id).definition = Some(form.to_string());
    Ok(())
}

/// Extracts superconcept names from a typed-variable signature.
fn collect_supers(sig: &[Value]) -> Vec<String> {
    let mut out = Vec::new();
    for item in sig {
        match item {
            Value::Symbol(s) if !s.starts_with('?') => out.push(s.clone()),
            Value::List(items) => {
                // (and A B) or nested lists.
                for inner in items {
                    match inner {
                        Value::Symbol(s)
                            if !s.starts_with('?') && !s.eq_ignore_ascii_case("and") =>
                        {
                            out.push(s.clone())
                        }
                        _ => {}
                    }
                }
            }
            _ => {}
        }
    }
    out
}

/// Parses a `((?x A) (?y B))` parameter list into (var, type) pairs.
fn parse_params(list: &Value) -> Vec<(String, String)> {
    let mut out = Vec::new();
    if let Some(items) = list.as_list() {
        for p in items {
            if let Some(pair) = p.as_list() {
                let var = pair.first().and_then(Value::as_symbol).unwrap_or("?_");
                let ty = pair.get(1).and_then(Value::as_symbol).unwrap_or("THING");
                out.push((var.trim_start_matches('?').to_owned(), ty.to_owned()));
            }
        }
    }
    out
}

/// `(defrelation NAME ((?x A) (?y B)) [:documentation "…"])`
///
/// Binary relations whose second argument is a literal type become SOQA
/// attributes of the first argument's concept; everything else becomes a
/// SOQA relationship.
fn def_relation(builder: &mut OntologyBuilder, form: &Value) -> Result<(), SoqaError> {
    let tail = form.tail();
    let name = tail
        .first()
        .and_then(Value::as_symbol)
        .ok_or_else(|| wrapper_err("defrelation requires a name"))?;
    let doc = form
        .keyword_value("documentation")
        .and_then(Value::as_str)
        .map(str::to_owned);
    let params = tail.get(1).map(parse_params).unwrap_or_default();

    if params.len() == 2 && is_literal_type(&params[1].1) {
        let concept = builder.concept(&params[0].1);
        builder.add_attribute(Attribute {
            name: name.to_owned(),
            documentation: doc,
            data_type: Some(params[1].1.clone()),
            definition: Some(form.to_string()),
            concept,
        });
        return Ok(());
    }
    // Ensure participant concepts exist so the relationship is linked.
    let related: Vec<String> = params.iter().map(|(_, t)| t.clone()).collect();
    for t in &related {
        if !is_literal_type(t) {
            builder.concept(t);
        }
    }
    builder.add_relationship(Relationship {
        name: name.to_owned(),
        documentation: doc,
        definition: Some(form.to_string()),
        arity: related.len(),
        related_concepts: related,
    });
    Ok(())
}

/// `(deffunction NAME ((?x A) …) :-> (?r TYPE) [:documentation "…"])`
fn def_function(builder: &mut OntologyBuilder, form: &Value) -> Result<(), SoqaError> {
    let tail = form.tail();
    let name = tail
        .first()
        .and_then(Value::as_symbol)
        .ok_or_else(|| wrapper_err("deffunction requires a name"))?;
    let doc = form
        .keyword_value("documentation")
        .and_then(Value::as_str)
        .map(str::to_owned);
    let params = tail.get(1).map(parse_params).unwrap_or_default();
    let return_type = form.keyword_value("->").map(|v| match v {
        Value::List(items) => items
            .get(1)
            .or_else(|| items.first())
            .and_then(Value::as_symbol)
            .unwrap_or("THING")
            .to_owned(),
        Value::Symbol(s) => s.clone(),
        _ => "THING".to_owned(),
    });
    let concept_name = params
        .first()
        .map(|(_, t)| t.clone())
        .ok_or_else(|| wrapper_err(format!("deffunction `{name}` needs at least one parameter")))?;
    let concept = builder.concept(&concept_name);
    builder.add_method(Method {
        name: name.to_owned(),
        documentation: doc,
        definition: Some(form.to_string()),
        parameters: params
            .iter()
            .map(|(n, t)| Parameter {
                name: n.clone(),
                data_type: Some(t.clone()),
            })
            .collect(),
        return_type,
        concept,
    });
    Ok(())
}

/// `(assert (CONCEPT instance))` — membership; creates the instance.
/// `(assert (relation instance value))` — attribute/relationship value on an
/// existing instance.
fn do_assert(builder: &mut OntologyBuilder, form: &Value) -> Result<(), SoqaError> {
    let Some(fact) = form.tail().first() else {
        return Err(wrapper_err("assert requires a proposition"));
    };
    let Some(items) = fact.as_list() else {
        return Err(wrapper_err("assert requires a list proposition"));
    };
    match items {
        [Value::Symbol(pred), Value::Symbol(arg)] if builder.has_concept(pred) => {
            let concept = builder.concept(pred);
            builder.add_instance(Instance {
                name: arg.clone(),
                concept,
                attribute_values: Vec::new(),
                relationship_values: Vec::new(),
            });
            Ok(())
        }
        [Value::Symbol(_pred), ..] => {
            // Attribute/relationship facts over instances: tolerated and
            // recorded nowhere structured — the concept-level model is what
            // the similarity measures consume. (A full PowerLoom would put
            // these into the assertion base.)
            Ok(())
        }
        _ => Err(wrapper_err(format!("unsupported assertion `{fact}`"))),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const COURSES: &str = r#"
;;; A fragment of the SIRUP Course Ontology.
(defmodule "COURSES"
  :documentation "Concepts for university course administration."
  :version "2.1"
  :author "SIRUP")
(in-module "COURSES")

(defconcept PERSON :documentation "A human being.")
(defconcept EMPLOYEE (?e PERSON)
  :documentation "A person employed by the university.")
(defconcept STUDENT (?s PERSON))
(defconcept TEACHING-ASSISTANT (?t (and STUDENT EMPLOYEE)))
(defconcept COURSE :documentation "A unit of teaching.")

(defrelation teaches ((?e EMPLOYEE) (?c COURSE))
  :documentation "An employee teaches a course.")
(defrelation full-name ((?p PERSON) (?n STRING)))
(deffunction salary ((?e EMPLOYEE)) :-> (?amount NUMBER)
  :documentation "Monthly gross salary.")

(assert (EMPLOYEE Fred))
(assert (STUDENT Maria))
(assert (full-name Fred "Fred Smith"))
"#;

    #[test]
    fn module_metadata() {
        let o = parse_powerloom(COURSES, "COURSES").expect("parse");
        assert_eq!(o.metadata.language, "PowerLoom");
        assert_eq!(o.metadata.version.as_deref(), Some("2.1"));
        assert!(o
            .metadata
            .documentation
            .as_deref()
            .unwrap()
            .contains("course"));
    }

    #[test]
    fn concepts_and_multiple_inheritance() {
        let o = parse_powerloom(COURSES, "COURSES").expect("parse");
        assert_eq!(o.concept_count(), 5);
        let ta = o.concept_by_name("TEACHING-ASSISTANT").unwrap();
        let supers: Vec<&str> = o
            .direct_supers(ta)
            .iter()
            .map(|&c| o.concept(c).name.as_str())
            .collect();
        assert_eq!(supers, vec!["STUDENT", "EMPLOYEE"]);
        // PERSON and COURSE are roots (no implicit Thing in PowerLoom).
        assert_eq!(o.roots().len(), 2);
    }

    #[test]
    fn literal_ranged_relations_become_attributes() {
        let o = parse_powerloom(COURSES, "COURSES").expect("parse");
        let person = o.concept_by_name("PERSON").unwrap();
        let attrs = &o.concept(person).attributes;
        assert_eq!(attrs.len(), 1);
        assert_eq!(o.attribute(attrs[0]).name, "full-name");
        assert_eq!(o.attribute(attrs[0]).data_type.as_deref(), Some("STRING"));
    }

    #[test]
    fn concept_relations_stay_relationships() {
        let o = parse_powerloom(COURSES, "COURSES").expect("parse");
        assert_eq!(o.relationships().len(), 1);
        let teaches = &o.relationships()[0];
        assert_eq!(teaches.name, "teaches");
        assert_eq!(teaches.related_concepts, vec!["EMPLOYEE", "COURSE"]);
    }

    #[test]
    fn functions_become_methods() {
        let o = parse_powerloom(COURSES, "COURSES").expect("parse");
        let employee = o.concept_by_name("EMPLOYEE").unwrap();
        let methods = &o.concept(employee).methods;
        assert_eq!(methods.len(), 1);
        let m = o.method(methods[0]);
        assert_eq!(m.name, "salary");
        assert_eq!(m.return_type.as_deref(), Some("NUMBER"));
        assert_eq!(m.parameters.len(), 1);
        assert_eq!(m.parameters[0].name, "e");
    }

    #[test]
    fn assertions_create_instances() {
        let o = parse_powerloom(COURSES, "COURSES").expect("parse");
        let employee = o.concept_by_name("EMPLOYEE").unwrap();
        assert_eq!(o.concept(employee).instances.len(), 1);
        assert_eq!(o.instance(o.concept(employee).instances[0]).name, "Fred");
        assert!(o.instance_by_name("Maria").is_some());
    }

    #[test]
    fn unknown_forms_are_errors() {
        assert!(parse_powerloom("(frobnicate X)", "t").is_err());
        assert!(parse_powerloom("(defconcept)", "t").is_err());
        assert!(parse_powerloom("(((", "t").is_err());
    }
}

//! Property tests for the full-text substrate: stemmer and index
//! invariants over random inputs.

use proptest::prelude::*;
use sst_index::{analyze, stem, tokenize, IndexBuilder};

proptest! {
    /// Stemming always yields a lowercase ASCII word. (Note: the classic
    /// Porter algorithm is *not* idempotent — e.g. "aase" → "aas" → "aa",
    /// because step 5a's e-removal can re-expose a step-1a plural-s — so no
    /// idempotence property is asserted; the reference vectors in
    /// `porter.rs` pin the standard behaviour instead.)
    #[test]
    fn stems_are_lowercase_ascii(word in "[a-z]{1,15}") {
        let s = stem(&word);
        prop_assert!(!s.is_empty());
        prop_assert!(s.bytes().all(|b| b.is_ascii_lowercase()));
    }

    /// Stems never grow.
    #[test]
    fn stems_never_grow(word in "[a-z]{1,15}") {
        prop_assert!(stem(&word).len() <= word.len());
    }

    /// Tokenization output is lowercase alphanumeric and loss-bounded.
    #[test]
    fn tokens_are_normalized(text in "[ -~]{0,60}") {
        for token in tokenize(&text) {
            prop_assert!(!token.is_empty());
            prop_assert!(token.chars().all(|c| c.is_alphanumeric()));
            prop_assert!(!token.chars().any(|c| c.is_uppercase()));
        }
    }

    /// Cosine over the index is symmetric, within [0, 1], and 1 on self.
    #[test]
    fn index_cosine_invariants(
        docs in proptest::collection::vec("[a-z ]{1,50}", 2..8)
    ) {
        let mut builder = IndexBuilder::new();
        let ids: Vec<_> = docs
            .iter()
            .enumerate()
            .map(|(i, text)| builder.add_document(format!("d{i}"), text))
            .collect();
        let index = builder.build();
        for &a in &ids {
            for &b in &ids {
                let ab = index.cosine(a, b);
                prop_assert!((0.0..=1.0 + 1e-12).contains(&ab));
                prop_assert!((ab - index.cosine(b, a)).abs() < 1e-12);
            }
            // Self-similarity is 1 when the document has any terms.
            if !analyze(&docs[ids.iter().position(|&x| x == a).unwrap()]).is_empty() {
                prop_assert!((index.cosine(a, a) - 1.0).abs() < 1e-9);
            }
        }
    }

    /// Search results are sorted by descending score and bounded by k.
    #[test]
    fn search_is_sorted_and_bounded(
        docs in proptest::collection::vec("[a-z ]{1,40}", 1..6),
        query in "[a-z ]{1,20}",
        k in 1usize..5,
    ) {
        let mut builder = IndexBuilder::new();
        for (i, text) in docs.iter().enumerate() {
            builder.add_document(format!("d{i}"), text);
        }
        let index = builder.build();
        let hits = index.search(&query, k);
        prop_assert!(hits.len() <= k);
        for w in hits.windows(2) {
            prop_assert!(w[0].1 >= w[1].1);
        }
        for (_, score) in hits {
            prop_assert!(score > 0.0 && score <= 1.0 + 1e-9);
        }
    }
}

//! Property tests for the full-text substrate: stemmer and index
//! invariants over generated inputs, sampled with a deterministic inline
//! PRNG (no external test engine).

use sst_index::{analyze, stem, tokenize, IndexBuilder};

/// Deterministic PRNG (SplitMix64) so failures reproduce exactly.
struct Rng(u64);

impl Rng {
    fn next(&mut self) -> u64 {
        self.0 = self.0.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.0;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    fn below(&mut self, n: usize) -> usize {
        (self.next() % n.max(1) as u64) as usize
    }

    fn lower_word(&mut self, min: usize, max: usize) -> String {
        let len = min + self.below(max - min + 1);
        (0..len)
            .map(|_| char::from(b'a' + self.below(26) as u8))
            .collect()
    }

    /// Lowercase letters and spaces — document-shaped text.
    fn lower_text(&mut self, min: usize, max: usize) -> String {
        let len = min + self.below(max - min + 1);
        (0..len)
            .map(|_| {
                if self.below(6) == 0 {
                    ' '
                } else {
                    char::from(b'a' + self.below(26) as u8)
                }
            })
            .collect()
    }

    fn printable(&mut self, max: usize) -> String {
        let len = self.below(max + 1);
        (0..len)
            .map(|_| char::from(b' ' + self.below(95) as u8))
            .collect()
    }
}

const CASES: u64 = 256;

/// Stemming always yields a lowercase ASCII word. (Note: the classic
/// Porter algorithm is *not* idempotent — e.g. "aase" → "aas" → "aa",
/// because step 5a's e-removal can re-expose a step-1a plural-s — so no
/// idempotence property is asserted; the reference vectors in
/// `porter.rs` pin the standard behaviour instead.)
#[test]
fn stems_are_lowercase_ascii() {
    for seed in 0..CASES {
        let mut rng = Rng(seed);
        let word = rng.lower_word(1, 15);
        let s = stem(&word);
        assert!(!s.is_empty(), "seed {seed}: {word}");
        assert!(
            s.bytes().all(|b| b.is_ascii_lowercase()),
            "seed {seed}: {word} -> {s}"
        );
    }
}

/// Stems never grow.
#[test]
fn stems_never_grow() {
    for seed in 0..CASES {
        let mut rng = Rng(seed.wrapping_mul(0x9D2C));
        let word = rng.lower_word(1, 15);
        assert!(stem(&word).len() <= word.len(), "seed {seed}: {word}");
    }
}

/// Tokenization output is lowercase alphanumeric and loss-bounded.
#[test]
fn tokens_are_normalized() {
    for seed in 0..CASES {
        let mut rng = Rng(seed.wrapping_mul(0x1357));
        let text = rng.printable(60);
        for token in tokenize(&text) {
            assert!(!token.is_empty(), "seed {seed}");
            assert!(
                token.chars().all(|c| c.is_alphanumeric()),
                "seed {seed}: {token}"
            );
            assert!(
                !token.chars().any(|c| c.is_uppercase()),
                "seed {seed}: {token}"
            );
        }
    }
}

/// Cosine over the index is symmetric, within [0, 1], and 1 on self.
#[test]
fn index_cosine_invariants() {
    for seed in 0..CASES / 2 {
        let mut rng = Rng(seed.wrapping_mul(0xFACE));
        let docs: Vec<String> = (0..2 + rng.below(6))
            .map(|_| rng.lower_text(1, 50))
            .collect();
        let mut builder = IndexBuilder::new();
        let ids: Vec<_> = docs
            .iter()
            .enumerate()
            .map(|(i, text)| builder.add_document(format!("d{i}"), text))
            .collect();
        let index = builder.build();
        for (pos, &a) in ids.iter().enumerate() {
            for &b in &ids {
                let ab = index.cosine(a, b);
                assert!((0.0..=1.0 + 1e-12).contains(&ab), "seed {seed}");
                assert!((ab - index.cosine(b, a)).abs() < 1e-12, "seed {seed}");
            }
            // Self-similarity is 1 when the document has any terms.
            if !analyze(&docs[pos]).is_empty() {
                assert!((index.cosine(a, a) - 1.0).abs() < 1e-9, "seed {seed}");
            }
        }
    }
}

/// Search results are sorted by descending score and bounded by k.
#[test]
fn search_is_sorted_and_bounded() {
    for seed in 0..CASES {
        let mut rng = Rng(seed.wrapping_mul(0x2468));
        let docs: Vec<String> = (0..1 + rng.below(5))
            .map(|_| rng.lower_text(1, 40))
            .collect();
        let query = rng.lower_text(1, 20);
        let k = 1 + rng.below(4);
        let mut builder = IndexBuilder::new();
        for (i, text) in docs.iter().enumerate() {
            builder.add_document(format!("d{i}"), text);
        }
        let index = builder.build();
        let hits = index.search(&query, k);
        assert!(hits.len() <= k, "seed {seed}");
        for w in hits.windows(2) {
            assert!(w[0].1 >= w[1].1, "seed {seed}");
        }
        for (_, score) in hits {
            assert!(score > 0.0 && score <= 1.0 + 1e-9, "seed {seed}");
        }
    }
}

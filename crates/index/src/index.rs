//! The inverted index: the Lucene stand-in behind the TFIDF measure.

use std::collections::HashMap;

use sst_limits::{Budget, LimitViolation, Limits};
use sst_obs::Metrics;

use crate::tokenizer::analyze;

/// Identifier of an indexed document.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct DocId(pub u32);

/// Interned term identifier.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct TermId(pub u32);

/// One posting: a document and the term's frequency in it.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Posting {
    pub doc: DocId,
    pub tf: u32,
}

#[derive(Debug)]
struct DocEntry {
    key: String,
    /// Total number of tokens after analysis.
    length: u32,
}

/// An immutable inverted index over a set of documents.
///
/// Build one with [`IndexBuilder`]; query term statistics, TF-IDF vectors,
/// and top-k cosine matches through the accessors here.
#[derive(Debug, Default)]
pub struct InvertedIndex {
    docs: Vec<DocEntry>,
    keys: HashMap<String, DocId>,
    terms: Vec<String>,
    term_ids: HashMap<String, TermId>,
    postings: Vec<Vec<Posting>>,
    /// Per-document term vectors (term id → tf), sorted by term id.
    doc_terms: Vec<Vec<(TermId, u32)>>,
    /// Registry the search path records into (see [`IndexBuilder::with_metrics`]).
    metrics: Option<Metrics>,
}

impl InvertedIndex {
    /// Number of indexed documents.
    pub fn doc_count(&self) -> usize {
        self.docs.len()
    }

    /// Number of distinct terms.
    pub fn term_count(&self) -> usize {
        self.terms.len()
    }

    /// The document's key (as supplied at add time).
    pub fn doc_key(&self, doc: DocId) -> &str {
        &self.docs[doc.0 as usize].key
    }

    /// Token count of the document after analysis.
    pub fn doc_length(&self, doc: DocId) -> u32 {
        self.docs[doc.0 as usize].length
    }

    /// Looks up a document by key.
    pub fn doc_by_key(&self, key: &str) -> Option<DocId> {
        self.keys.get(key).copied()
    }

    /// Document frequency of a term (0 for unknown terms).
    pub fn doc_freq(&self, term: &str) -> usize {
        self.term_ids
            .get(term)
            .map(|&t| self.postings[t.0 as usize].len())
            .unwrap_or(0)
    }

    /// Postings list for a term.
    pub fn postings(&self, term: &str) -> &[Posting] {
        self.term_ids
            .get(term)
            .map(|&t| self.postings[t.0 as usize].as_slice())
            .unwrap_or(&[])
    }

    /// Smoothed inverse document frequency: `ln(1 + N / df)`.
    pub fn idf(&self, term_id: TermId) -> f64 {
        let df = self.postings[term_id.0 as usize].len() as f64;
        let n = self.docs.len() as f64;
        (1.0 + n / df).ln()
    }

    /// The TF-IDF weighted term vector of a document, sorted by term id,
    /// using `(1 + ln tf) * idf` weighting.
    pub fn tfidf_vector(&self, doc: DocId) -> Vec<(TermId, f64)> {
        self.doc_terms[doc.0 as usize]
            .iter()
            .map(|&(t, tf)| (t, (1.0 + (tf as f64).ln()) * self.idf(t)))
            .collect()
    }

    /// Cosine similarity of the TF-IDF vectors of two documents, in [0, 1].
    pub fn cosine(&self, a: DocId, b: DocId) -> f64 {
        let va = self.tfidf_vector(a);
        let vb = self.tfidf_vector(b);
        cosine_sparse(&va, &vb)
    }

    /// Analyzes `query` and returns the `k` best documents by TF-IDF cosine,
    /// best first. Ties break on ascending document id for determinism.
    pub fn search(&self, query: &str, k: usize) -> Vec<(DocId, f64)> {
        let _span = self.metrics.as_ref().map(|m| {
            m.inc("index.search.calls");
            m.span("index.search.latency")
        });
        let tokens = analyze(query);
        let mut tf: HashMap<TermId, u32> = HashMap::new();
        for token in tokens {
            if let Some(&t) = self.term_ids.get(&token) {
                *tf.entry(t).or_insert(0) += 1;
            }
        }
        let mut qvec: Vec<(TermId, f64)> = tf
            .into_iter()
            .map(|(t, f)| (t, (1.0 + (f as f64).ln()) * self.idf(t)))
            .collect();
        qvec.sort_by_key(|&(t, _)| t);

        // Score candidate documents through the postings lists.
        let mut scores: HashMap<DocId, f64> = HashMap::new();
        for &(t, qw) in &qvec {
            for &Posting { doc, tf } in &self.postings[t.0 as usize] {
                let dw = (1.0 + (tf as f64).ln()) * self.idf(t);
                *scores.entry(doc).or_insert(0.0) += qw * dw;
            }
        }
        let qnorm = norm(&qvec);
        let mut results: Vec<(DocId, f64)> = scores
            .into_iter()
            .map(|(doc, dot)| {
                let dnorm = norm(&self.tfidf_vector(doc));
                let denom = qnorm * dnorm;
                (doc, if denom > 0.0 { dot / denom } else { 0.0 })
            })
            .collect();
        results.sort_by(|a, b| b.1.total_cmp(&a.1).then(a.0.cmp(&b.0)));
        results.truncate(k);
        results
    }
}

/// Cosine similarity of two sparse vectors sorted by term id.
pub fn cosine_sparse(a: &[(TermId, f64)], b: &[(TermId, f64)]) -> f64 {
    let denom = norm(a) * norm(b);
    if denom == 0.0 {
        return 0.0;
    }
    (dot(a, b) / denom).clamp(0.0, 1.0)
}

fn dot(a: &[(TermId, f64)], b: &[(TermId, f64)]) -> f64 {
    let mut i = 0;
    let mut j = 0;
    let mut sum = 0.0;
    while i < a.len() && j < b.len() {
        match a[i].0.cmp(&b[j].0) {
            std::cmp::Ordering::Less => i += 1,
            std::cmp::Ordering::Greater => j += 1,
            std::cmp::Ordering::Equal => {
                sum += a[i].1 * b[j].1;
                i += 1;
                j += 1;
            }
        }
    }
    sum
}

fn norm(v: &[(TermId, f64)]) -> f64 {
    v.iter().map(|&(_, w)| w * w).sum::<f64>().sqrt()
}

/// Builder accumulating documents before freezing them into an
/// [`InvertedIndex`].
#[derive(Debug)]
pub struct IndexBuilder {
    index: InvertedIndex,
    budget: Budget,
}

impl Default for IndexBuilder {
    fn default() -> Self {
        IndexBuilder::new()
    }
}

impl IndexBuilder {
    /// An unbounded builder: index contents come from documents the caller
    /// already parsed under its own limits, so `new()` applies none.
    pub fn new() -> Self {
        IndexBuilder {
            index: InvertedIndex::default(),
            budget: Budget::new(&Limits::unbounded()),
        }
    }

    /// A builder that enforces a resource [`Limits`] policy while indexing:
    /// the item cap bounds documents plus distinct terms, the step budget
    /// bounds total analyzed bytes, and the literal cap bounds any single
    /// document. Exceeding a limit makes [`IndexBuilder::try_add_document`]
    /// return the violation.
    pub fn with_limits(limits: &Limits) -> Self {
        IndexBuilder {
            index: InvertedIndex::default(),
            budget: Budget::new(limits),
        }
    }

    /// Like [`IndexBuilder::new`], but the builder and the built index
    /// record throughput into `metrics`: `index.docs`, `index.terms` and
    /// `index.tokens` counters while indexing, plus `index.search.calls` /
    /// `index.search.latency` on the query path.
    pub fn with_metrics(metrics: Metrics) -> Self {
        IndexBuilder {
            index: InvertedIndex {
                metrics: Some(metrics),
                ..InvertedIndex::default()
            },
            budget: Budget::new(&Limits::unbounded()),
        }
    }

    /// Analyzes `text` and adds it under `key`. Re-adding an existing key
    /// replaces nothing — it returns the existing id (documents are
    /// immutable once added).
    pub fn add_document(&mut self, key: impl Into<String>, text: &str) -> DocId {
        // new()/with_metrics() builders are unbounded; limited builders are
        // only built via with_limits(), whose callers use try_add_document.
        // lint: allow(panic) unreachable on the unbounded builders this method documents
        self.try_add_document(key, text).expect("unbounded builder")
    }

    /// Like [`IndexBuilder::add_document`], but charges the builder's
    /// resource budget and reports the violation instead of indexing when
    /// a limit is exceeded. On an unbounded builder this never fails.
    ///
    /// On failure no document is added; terms interned before the
    /// violation stay in the vocabulary (with empty postings), which only
    /// costs memory already accounted to the item budget.
    pub fn try_add_document(
        &mut self,
        key: impl Into<String>,
        text: &str,
    ) -> Result<DocId, LimitViolation> {
        let key = key.into();
        if let Some(&existing) = self.index.keys.get(&key) {
            return Ok(existing);
        }
        self.budget.item("index documents")?;
        self.budget.check_literal(text.len(), "index document")?;
        self.budget.charge_steps(text.len() as u64, "index bytes")?;
        // lint: allow(panic) id space (2^32 documents) exceeds any real corpus
        let doc = DocId(u32::try_from(self.index.docs.len()).expect("too many documents"));
        let tokens = analyze(text);
        let mut tf: HashMap<TermId, u32> = HashMap::new();
        let mut new_terms = 0u64;
        for token in &tokens {
            let term_id = match self.index.term_ids.get(token) {
                Some(&t) => t,
                None => {
                    self.budget.item("index terms")?;
                    let next_term = u32::try_from(self.index.terms.len()).expect("too many terms"); // lint: allow(panic) id space (2^32 terms) exceeds any real vocabulary
                    let t = TermId(next_term);
                    self.index.terms.push(token.clone());
                    self.index.term_ids.insert(token.clone(), t);
                    self.index.postings.push(Vec::new());
                    new_terms += 1;
                    t
                }
            };
            *tf.entry(term_id).or_insert(0) += 1;
        }
        let mut doc_vec: Vec<(TermId, u32)> = tf.into_iter().collect();
        doc_vec.sort_by_key(|&(t, _)| t);
        for &(t, f) in &doc_vec {
            self.index.postings[t.0 as usize].push(Posting { doc, tf: f });
        }
        if let Some(m) = &self.index.metrics {
            m.inc("index.docs");
            m.add("index.tokens", tokens.len() as u64);
            m.add("index.terms", new_terms);
        }
        self.index.docs.push(DocEntry {
            key: key.clone(),
            length: tokens.len() as u32,
        });
        self.index.keys.insert(key, doc);
        self.index.doc_terms.push(doc_vec);
        Ok(doc)
    }

    /// Freezes the builder.
    pub fn build(self) -> InvertedIndex {
        self.index
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> InvertedIndex {
        let mut b = IndexBuilder::new();
        b.add_document("prof", "Professor teaching university courses and research");
        b.add_document("student", "Student attending university courses");
        b.add_document("bird", "Blackbird singing in trees feathers wings");
        b.build()
    }

    #[test]
    fn doc_and_term_counts() {
        let idx = sample();
        assert_eq!(idx.doc_count(), 3);
        assert!(idx.term_count() >= 10);
        assert_eq!(idx.doc_freq("univers"), 2);
        assert_eq!(idx.doc_freq("blackbird"), 1);
        assert_eq!(idx.doc_freq("unseen"), 0);
    }

    #[test]
    fn cosine_reflects_shared_vocabulary() {
        let idx = sample();
        let prof = idx.doc_by_key("prof").unwrap();
        let student = idx.doc_by_key("student").unwrap();
        let bird = idx.doc_by_key("bird").unwrap();
        let ps = idx.cosine(prof, student);
        let pb = idx.cosine(prof, bird);
        assert!(ps > pb, "prof~student ({ps}) should beat prof~bird ({pb})");
        assert!(pb == 0.0, "no shared terms: {pb}");
        assert!((idx.cosine(prof, prof) - 1.0).abs() < 1e-12);
    }

    #[test]
    fn cosine_is_symmetric() {
        let idx = sample();
        let a = idx.doc_by_key("prof").unwrap();
        let b = idx.doc_by_key("student").unwrap();
        assert!((idx.cosine(a, b) - idx.cosine(b, a)).abs() < 1e-12);
    }

    #[test]
    fn search_ranks_by_relevance() {
        let idx = sample();
        let hits = idx.search("university courses", 10);
        assert_eq!(hits.len(), 2);
        assert!(hits[0].1 >= hits[1].1);
        let keys: Vec<&str> = hits.iter().map(|&(d, _)| idx.doc_key(d)).collect();
        assert!(keys.contains(&"prof") && keys.contains(&"student"));
    }

    #[test]
    fn search_unknown_terms_returns_empty() {
        let idx = sample();
        assert!(idx.search("xylophone", 5).is_empty());
        assert!(idx.search("", 5).is_empty());
    }

    #[test]
    fn search_k_truncates() {
        let idx = sample();
        let hits = idx.search("university courses trees", 1);
        assert_eq!(hits.len(), 1);
    }

    #[test]
    fn duplicate_keys_return_same_doc() {
        let mut b = IndexBuilder::new();
        let a = b.add_document("k", "one two");
        let c = b.add_document("k", "three four");
        assert_eq!(a, c);
        assert_eq!(b.build().doc_count(), 1);
    }

    #[test]
    fn limited_builder_reports_violations() {
        let limits = Limits::default().with_max_items(2);
        let mut b = IndexBuilder::with_limits(&limits);
        // One document plus one distinct term fit the budget of 2...
        assert!(b.try_add_document("a", "alpha").is_ok());
        // ...but the second document is item #3.
        let violation = b.try_add_document("b", "alpha").unwrap_err();
        assert_eq!(violation.kind, sst_limits::LimitKind::Items);
        // Re-adding an existing key costs nothing even on an empty budget.
        assert!(b.try_add_document("a", "alpha").is_ok());
        assert_eq!(b.build().doc_count(), 1);
    }

    #[test]
    fn unbounded_builder_never_fails() {
        let mut b = IndexBuilder::with_limits(&Limits::unbounded());
        for i in 0..100 {
            assert!(b.try_add_document(format!("d{i}"), "text here").is_ok());
        }
        assert_eq!(b.build().doc_count(), 100);
    }

    #[test]
    fn stemming_unifies_variants_across_documents() {
        let mut b = IndexBuilder::new();
        b.add_document("a", "universities");
        b.add_document("b", "university");
        let idx = b.build();
        let a = idx.doc_by_key("a").unwrap();
        let bb = idx.doc_by_key("b").unwrap();
        assert!((idx.cosine(a, bb) - 1.0).abs() < 1e-12);
    }
}

//! The Porter stemming algorithm (Porter, *Program* 14(3), 1980).
//!
//! The paper's TFIDF measure stems all words before indexing ("we used a
//! Porter Stemmer to reduce all words to their stems"). This is a faithful
//! implementation of the original five-step algorithm over ASCII lowercase
//! words; non-ASCII input is returned unchanged.

/// Stems one word. The input should already be lowercased; anything
/// containing non-ASCII-alphabetic characters is returned as-is.
pub fn stem(word: &str) -> String {
    if word.len() <= 2 || !word.bytes().all(|b| b.is_ascii_lowercase()) {
        return word.to_owned();
    }
    let mut s = Stemmer {
        b: word.as_bytes().to_vec(),
    };
    s.step1a();
    s.step1b();
    s.step1c();
    s.step2();
    s.step3();
    s.step4();
    s.step5a();
    s.step5b();
    // The stemmer rewrites byte suffixes; a non-ASCII input could in
    // principle leave a torn multi-byte sequence, so recover lossily
    // instead of asserting.
    String::from_utf8(s.b).unwrap_or_else(|e| String::from_utf8_lossy(e.as_bytes()).into_owned())
}

struct Stemmer {
    b: Vec<u8>,
}

impl Stemmer {
    /// Is `b[i]` a consonant, per Porter's definition (`y` is a consonant
    /// when preceded by a vowel... actually when at position 0 or preceded
    /// by a consonant)?
    fn is_consonant(&self, i: usize) -> bool {
        match self.b[i] {
            b'a' | b'e' | b'i' | b'o' | b'u' => false,
            b'y' => i == 0 || !self.is_consonant(i - 1),
            _ => true,
        }
    }

    /// The measure m of the prefix `b[..=j]`: the number of VC sequences.
    fn measure(&self, j: usize) -> usize {
        let mut m = 0;
        let mut i = 0;
        // Skip the initial consonant run.
        while i <= j {
            if !self.is_consonant(i) {
                break;
            }
            i += 1;
        }
        if i > j {
            return 0;
        }
        loop {
            // Skip vowels.
            while i <= j {
                if self.is_consonant(i) {
                    break;
                }
                i += 1;
            }
            if i > j {
                return m;
            }
            m += 1;
            // Skip consonants.
            while i <= j {
                if !self.is_consonant(i) {
                    break;
                }
                i += 1;
            }
            if i > j {
                return m;
            }
        }
    }

    /// True if the prefix `b[..=j]` contains a vowel.
    fn has_vowel(&self, j: usize) -> bool {
        (0..=j).any(|i| !self.is_consonant(i))
    }

    /// True if `b[..=j]` ends in a double consonant.
    fn double_consonant(&self, j: usize) -> bool {
        let Some(prev) = j.checked_sub(1) else {
            return false;
        };
        self.b[j] == self.b[prev] && self.is_consonant(j)
    }

    /// True if `b[..=j]` ends consonant-vowel-consonant where the final
    /// consonant is not w, x, or y.
    fn cvc(&self, j: usize) -> bool {
        if j < 2 || !self.is_consonant(j) || self.is_consonant(j - 1) || !self.is_consonant(j - 2) {
            return false;
        }
        !matches!(self.b[j], b'w' | b'x' | b'y')
    }

    fn ends_with(&self, suffix: &str) -> bool {
        self.b.ends_with(suffix.as_bytes())
    }

    /// Index of the last byte of the stem if `suffix` were removed.
    fn stem_end(&self, suffix: &str) -> Option<usize> {
        if self.ends_with(suffix) && self.b.len() > suffix.len() {
            Some(self.b.len() - suffix.len() - 1)
        } else {
            None
        }
    }

    fn replace_suffix(&mut self, suffix: &str, replacement: &str) {
        let keep = self.b.len() - suffix.len();
        self.b.truncate(keep);
        self.b.extend_from_slice(replacement.as_bytes());
    }

    /// `(m > 0) suffix -> replacement`; returns true if the rule fired
    /// (matched the suffix, whether or not the condition held).
    fn rule(&mut self, suffix: &str, replacement: &str, min_measure: usize) -> bool {
        if let Some(j) = self.stem_end(suffix) {
            if self.measure(j) > min_measure {
                self.replace_suffix(suffix, replacement);
            }
            true
        } else {
            false
        }
    }

    fn step1a(&mut self) {
        if self.ends_with("sses") {
            self.replace_suffix("sses", "ss");
        } else if self.ends_with("ies") {
            self.replace_suffix("ies", "i");
        } else if self.ends_with("ss") {
            // unchanged
        } else if self.ends_with("s") && self.b.len() > 1 {
            self.replace_suffix("s", "");
        }
    }

    fn step1b(&mut self) {
        if let Some(j) = self.stem_end("eed") {
            if self.measure(j) > 0 {
                self.replace_suffix("eed", "ee");
            }
            return;
        }
        let fired = if let Some(j) = self.stem_end("ed") {
            if self.has_vowel(j) {
                self.replace_suffix("ed", "");
                true
            } else {
                false
            }
        } else if let Some(j) = self.stem_end("ing") {
            if self.has_vowel(j) {
                self.replace_suffix("ing", "");
                true
            } else {
                false
            }
        } else {
            false
        };
        if fired {
            let last = self.b.len() - 1;
            if self.ends_with("at") || self.ends_with("bl") || self.ends_with("iz") {
                self.b.push(b'e');
            } else if self.double_consonant(last) && !matches!(self.b[last], b'l' | b's' | b'z') {
                self.b.pop();
            } else if self.measure(last) == 1 && self.cvc(last) {
                self.b.push(b'e');
            }
        }
    }

    fn step1c(&mut self) {
        if let Some(j) = self.stem_end("y") {
            if self.has_vowel(j) {
                let last = self.b.len() - 1;
                self.b[last] = b'i';
            }
        }
    }

    fn step2(&mut self) {
        const RULES: &[(&str, &str)] = &[
            ("ational", "ate"),
            ("tional", "tion"),
            ("enci", "ence"),
            ("anci", "ance"),
            ("izer", "ize"),
            ("abli", "able"),
            ("alli", "al"),
            ("entli", "ent"),
            ("eli", "e"),
            ("ousli", "ous"),
            ("ization", "ize"),
            ("ation", "ate"),
            ("ator", "ate"),
            ("alism", "al"),
            ("iveness", "ive"),
            ("fulness", "ful"),
            ("ousness", "ous"),
            ("aliti", "al"),
            ("iviti", "ive"),
            ("biliti", "ble"),
        ];
        for (suffix, replacement) in RULES {
            if self.rule(suffix, replacement, 0) {
                return;
            }
        }
    }

    fn step3(&mut self) {
        const RULES: &[(&str, &str)] = &[
            ("icate", "ic"),
            ("ative", ""),
            ("alize", "al"),
            ("iciti", "ic"),
            ("ical", "ic"),
            ("ful", ""),
            ("ness", ""),
        ];
        for (suffix, replacement) in RULES {
            if self.rule(suffix, replacement, 0) {
                return;
            }
        }
    }

    fn step4(&mut self) {
        const SUFFIXES: &[&str] = &[
            "al", "ance", "ence", "er", "ic", "able", "ible", "ant", "ement", "ment", "ent", "ou",
            "ism", "ate", "iti", "ous", "ive", "ize",
        ];
        // "ion" needs the preceding letter to be s or t.
        if let Some(j) = self.stem_end("ion") {
            if matches!(self.b[j], b's' | b't') {
                if self.measure(j) > 1 {
                    self.replace_suffix("ion", "");
                }
                return;
            }
        }
        for suffix in SUFFIXES {
            if let Some(j) = self.stem_end(suffix) {
                if self.measure(j) > 1 {
                    self.replace_suffix(suffix, "");
                }
                return;
            }
        }
    }

    fn step5a(&mut self) {
        if let Some(j) = self.stem_end("e") {
            let m = self.measure(j);
            if m > 1 || (m == 1 && !self.cvc(j)) {
                self.replace_suffix("e", "");
            }
        }
    }

    fn step5b(&mut self) {
        let last = self.b.len() - 1;
        if self.b[last] == b'l' && self.double_consonant(last) && self.measure(last - 1) > 1 {
            self.b.pop();
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Classic vectors from Porter's paper and the reference vocabulary.
    #[test]
    fn reference_vectors() {
        let cases = [
            ("caresses", "caress"),
            ("ponies", "poni"),
            ("ties", "ti"),
            ("caress", "caress"),
            ("cats", "cat"),
            ("feed", "feed"),
            // Note: step 1b alone gives "agree"; step 5a then drops the
            // final e (m=1, not *o), matching reference implementations.
            ("agreed", "agre"),
            ("plastered", "plaster"),
            ("bled", "bled"),
            ("motoring", "motor"),
            ("sing", "sing"),
            ("conflated", "conflat"),
            ("troubled", "troubl"),
            ("sized", "size"),
            ("hopping", "hop"),
            ("tanned", "tan"),
            ("falling", "fall"),
            ("hissing", "hiss"),
            ("fizzed", "fizz"),
            ("failing", "fail"),
            ("filing", "file"),
            ("happy", "happi"),
            ("sky", "sky"),
            ("relational", "relat"),
            ("conditional", "condit"),
            ("rational", "ration"),
            ("valenci", "valenc"),
            ("hesitanci", "hesit"),
            ("digitizer", "digit"),
            ("conformabli", "conform"),
            ("radicalli", "radic"),
            ("differentli", "differ"),
            ("vileli", "vile"),
            ("analogousli", "analog"),
            ("vietnamization", "vietnam"),
            ("predication", "predic"),
            ("operator", "oper"),
            ("feudalism", "feudal"),
            ("decisiveness", "decis"),
            ("hopefulness", "hope"),
            ("callousness", "callous"),
            ("formaliti", "formal"),
            ("sensitiviti", "sensit"),
            ("sensibiliti", "sensibl"),
            ("triplicate", "triplic"),
            ("formative", "form"),
            ("formalize", "formal"),
            ("electriciti", "electr"),
            ("electrical", "electr"),
            ("hopeful", "hope"),
            ("goodness", "good"),
            ("revival", "reviv"),
            ("allowance", "allow"),
            ("inference", "infer"),
            ("airliner", "airlin"),
            ("gyroscopic", "gyroscop"),
            ("adjustable", "adjust"),
            ("defensible", "defens"),
            ("irritant", "irrit"),
            ("replacement", "replac"),
            ("adjustment", "adjust"),
            ("dependent", "depend"),
            ("adoption", "adopt"),
            ("homologou", "homolog"),
            ("communism", "commun"),
            ("activate", "activ"),
            ("angulariti", "angular"),
            ("homologous", "homolog"),
            ("effective", "effect"),
            ("bowdlerize", "bowdler"),
            ("probate", "probat"),
            ("rate", "rate"),
            ("cease", "ceas"),
            ("controll", "control"),
            ("roll", "roll"),
        ];
        for (input, expected) in cases {
            assert_eq!(stem(input), expected, "stem({input:?})");
        }
    }

    #[test]
    fn domain_words_used_by_the_toolkit() {
        assert_eq!(stem("professor"), "professor");
        assert_eq!(stem("professors"), "professor");
        assert_eq!(stem("universities"), "univers");
        assert_eq!(stem("university"), "univers");
        assert_eq!(stem("teaching"), "teach");
        assert_eq!(stem("teaches"), "teach");
        assert_eq!(stem("students"), "student");
        assert_eq!(stem("employee"), "employe");
        assert_eq!(stem("employees"), "employe");
    }

    #[test]
    fn short_and_non_ascii_words_pass_through() {
        assert_eq!(stem("a"), "a");
        assert_eq!(stem("is"), "is");
        assert_eq!(stem("zürich"), "zürich");
        assert_eq!(stem("x9"), "x9");
    }

    #[test]
    fn stemming_is_idempotent_on_common_words() {
        for w in [
            "running",
            "happiness",
            "relational",
            "generalization",
            "libraries",
        ] {
            let once = stem(w);
            assert_eq!(stem(&once), once, "idempotence for {w}");
        }
    }
}

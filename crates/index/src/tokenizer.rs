//! Text analysis: tokenization, stopword filtering, and the analyzer
//! pipeline that feeds the inverted index.

use crate::porter::stem;

/// Splits text into lowercase alphanumeric tokens. CamelCase identifiers —
/// ubiquitous in ontology concept names like `AssistantProfessor` — are split
/// at case boundaries, and `_`/`-`/`.`/`:` act as separators.
pub fn tokenize(text: &str) -> Vec<String> {
    let mut tokens = Vec::new();
    let mut current = String::new();
    let mut prev_lower = false;
    for c in text.chars() {
        if c.is_alphanumeric() {
            if c.is_uppercase() && prev_lower && !current.is_empty() {
                tokens.push(std::mem::take(&mut current));
            }
            prev_lower = c.is_lowercase() || c.is_numeric();
            current.extend(c.to_lowercase());
        } else {
            prev_lower = false;
            if !current.is_empty() {
                tokens.push(std::mem::take(&mut current));
            }
        }
    }
    if !current.is_empty() {
        tokens.push(current);
    }
    tokens
}

/// The standard English stopword list used by the analyzer (the classic
/// Lucene `StopAnalyzer` set plus a few function words common in ontology
/// documentation strings).
pub const STOPWORDS: &[&str] = &[
    "a", "an", "and", "are", "as", "at", "be", "but", "by", "for", "if", "in", "into", "is", "it",
    "no", "not", "of", "on", "or", "such", "that", "the", "their", "then", "there", "these",
    "they", "this", "to", "was", "will", "with", "which", "who", "whose", "has", "have", "its",
    "from", "can", "may", "each", "any", "all", "some", "other", "more",
];

/// Returns true when `token` is a stopword.
pub fn is_stopword(token: &str) -> bool {
    STOPWORDS.contains(&token)
}

/// Full analysis pipeline: tokenize → drop stopwords → Porter-stem.
///
/// This mirrors the paper's export pipeline ("we used a Porter Stemmer to
/// reduce all words to their stems and applied a standard, full-text TFIDF
/// algorithm").
pub fn analyze(text: &str) -> Vec<String> {
    tokenize(text)
        .into_iter()
        .filter(|t| !is_stopword(t))
        .map(|t| stem(&t))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn splits_on_punctuation_and_lowercases() {
        assert_eq!(tokenize("Hello, World!"), vec!["hello", "world"]);
    }

    #[test]
    fn splits_camel_case_concept_names() {
        assert_eq!(
            tokenize("AssistantProfessor"),
            vec!["assistant", "professor"]
        );
        assert_eq!(tokenize("owl:Thing"), vec!["owl", "thing"]);
        assert_eq!(
            tokenize("univ-bench_owl:FullProfessor"),
            vec!["univ", "bench", "owl", "full", "professor"]
        );
    }

    #[test]
    fn keeps_acronym_runs_together() {
        assert_eq!(tokenize("SUMO Ontology"), vec!["sumo", "ontology"]);
        assert_eq!(tokenize("parseXML"), vec!["parse", "xml"]);
    }

    #[test]
    fn numbers_are_tokens() {
        assert_eq!(tokenize("version 1.0"), vec!["version", "1", "0"]);
    }

    #[test]
    fn analyze_filters_and_stems() {
        assert_eq!(
            analyze("The professors are teaching courses at the university"),
            vec!["professor", "teach", "cours", "univers"]
        );
    }

    #[test]
    fn empty_input() {
        assert!(tokenize("").is_empty());
        assert!(analyze("  ,; ").is_empty());
        assert!(analyze("the of and").is_empty());
    }
}

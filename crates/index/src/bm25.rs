//! Okapi BM25 ranking over the inverted index — an alternative scorer to
//! the paper's TF-IDF cosine, provided for the "best performing measures in
//! different task domains" evaluation the paper leaves as future work.

use std::collections::HashMap;

use crate::index::{DocId, InvertedIndex, Posting};
use crate::tokenizer::analyze;

/// BM25 parameters; `k1` saturates term frequency, `b` normalizes by
/// document length. Defaults are the standard Robertson values.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Bm25Params {
    pub k1: f64,
    pub b: f64,
}

impl Default for Bm25Params {
    fn default() -> Self {
        Bm25Params { k1: 1.2, b: 0.75 }
    }
}

/// Stateless BM25 scorer borrowing an [`InvertedIndex`].
#[derive(Debug)]
pub struct Bm25<'a> {
    index: &'a InvertedIndex,
    params: Bm25Params,
    average_doc_length: f64,
}

impl<'a> Bm25<'a> {
    pub fn new(index: &'a InvertedIndex, params: Bm25Params) -> Self {
        let total: u64 = (0..index.doc_count() as u32)
            .map(|d| index.doc_length(DocId(d)) as u64)
            .sum();
        let average_doc_length = if index.doc_count() == 0 {
            0.0
        } else {
            total as f64 / index.doc_count() as f64
        };
        Bm25 {
            index,
            params,
            average_doc_length,
        }
    }

    /// BM25 inverse document frequency: `ln((N − df + 0.5) / (df + 0.5) + 1)`.
    fn idf(&self, df: usize) -> f64 {
        let n = self.index.doc_count() as f64;
        let df = df as f64;
        ((n - df + 0.5) / (df + 0.5) + 1.0).ln()
    }

    /// Scores the `k` best documents for `query`, best first, ties broken
    /// by ascending document id.
    pub fn search(&self, query: &str, k: usize) -> Vec<(DocId, f64)> {
        let mut scores: HashMap<DocId, f64> = HashMap::new();
        for term in analyze(query) {
            let postings = self.index.postings(&term);
            if postings.is_empty() {
                continue;
            }
            let idf = self.idf(postings.len());
            for &Posting { doc, tf } in postings {
                let tf = tf as f64;
                // `average_doc_length == 0` means every indexed document is
                // empty (nothing tokenized). There is no length signal to
                // normalize by, so normalization degenerates to neutral
                // (`len_norm = 1`) — dividing by an epsilon instead would
                // blow the norm up by ~1e9 for any non-empty document.
                let len_norm = if self.average_doc_length == 0.0 {
                    1.0
                } else {
                    1.0 - self.params.b
                        + self.params.b * self.index.doc_length(doc) as f64
                            / self.average_doc_length
                };
                let score = idf * (tf * (self.params.k1 + 1.0)) / (tf + self.params.k1 * len_norm);
                *scores.entry(doc).or_insert(0.0) += score;
            }
        }
        let mut out: Vec<(DocId, f64)> = scores.into_iter().collect();
        out.sort_by(|a, b| b.1.total_cmp(&a.1).then(a.0.cmp(&b.0)));
        out.truncate(k);
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::index::IndexBuilder;

    fn sample() -> InvertedIndex {
        let mut b = IndexBuilder::new();
        b.add_document("short", "professor teaching");
        b.add_document(
            "long",
            "professor professor professor teaching courses research publications grants \
             students lectures meetings committees reviews theses",
        );
        b.add_document("other", "blackbird singing in trees");
        b.build()
    }

    #[test]
    fn scores_relevant_documents() {
        let idx = sample();
        let bm25 = Bm25::new(&idx, Bm25Params::default());
        let hits = bm25.search("professor teaching", 10);
        assert_eq!(hits.len(), 2);
        assert!(hits.iter().all(|&(d, _)| idx.doc_key(d) != "other"));
        assert!(hits[0].1 > 0.0);
    }

    #[test]
    fn length_normalization_favours_short_documents() {
        let idx = sample();
        let bm25 = Bm25::new(&idx, Bm25Params::default());
        let hits = bm25.search("teaching", 2);
        // Same tf (1) for "teach" in both docs; the shorter one wins.
        assert_eq!(idx.doc_key(hits[0].0), "short");
    }

    #[test]
    fn b_zero_disables_length_normalization() {
        let idx = sample();
        let bm25 = Bm25::new(&idx, Bm25Params { k1: 1.2, b: 0.0 });
        let hits = bm25.search("teaching", 2);
        // With b = 0 both docs score identically; tie-break on doc id.
        assert!((hits[0].1 - hits[1].1).abs() < 1e-12);
    }

    #[test]
    fn tf_saturation() {
        let idx = sample();
        let bm25 = Bm25::new(&idx, Bm25Params { k1: 0.0, b: 0.0 });
        // k1 = 0 makes tf irrelevant: tripled "professor" gains nothing.
        let hits = bm25.search("professor", 2);
        assert!((hits[0].1 - hits[1].1).abs() < 1e-12);
    }

    #[test]
    fn all_empty_documents_score_finite() {
        // Documents exist but none tokenizes to anything: the average
        // document length is zero. Scoring must stay finite and empty —
        // no epsilon-division blow-up, no NaN.
        let mut b = IndexBuilder::new();
        b.add_document("blank-a", "");
        b.add_document("blank-b", "... !!! ???");
        let idx = b.build();
        let bm25 = Bm25::new(&idx, Bm25Params::default());
        assert_eq!(idx.doc_count(), 2);
        let hits = bm25.search("professor teaching", 5);
        assert!(hits.is_empty());
        assert!(hits.iter().all(|&(_, s)| s.is_finite()));
    }

    #[test]
    fn unknown_terms_and_empty_index() {
        let idx = sample();
        let bm25 = Bm25::new(&idx, Bm25Params::default());
        assert!(bm25.search("zzz", 5).is_empty());
        let empty = IndexBuilder::new().build();
        let bm25 = Bm25::new(&empty, Bm25Params::default());
        assert!(bm25.search("anything", 5).is_empty());
    }
}

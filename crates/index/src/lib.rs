//! # sst-index — full-text substrate for the TFIDF measure
//!
//! The paper indexes textual concept descriptions with Apache Lucene and
//! compares them with a TF-IDF scheme. This crate is that substrate rebuilt
//! in Rust: a tokenizer that understands ontology identifiers (CamelCase,
//! `owl:Thing`), a stopword filter, the full Porter stemmer, and an inverted
//! index with TF-IDF weighting and top-k cosine search.
//!
//! ```
//! use sst_index::IndexBuilder;
//!
//! let mut builder = IndexBuilder::new();
//! let prof = builder.add_document("Professor", "A professor teaches university courses");
//! let student = builder.add_document("Student", "A student attends university courses");
//! let index = builder.build();
//! let sim = index.cosine(prof, student);
//! assert!(sim > 0.0 && sim < 1.0);
//! ```

#![warn(missing_debug_implementations)]
#![forbid(unsafe_code)]

pub mod bm25;
pub mod index;
pub mod porter;
pub mod tokenizer;

pub use bm25::{Bm25, Bm25Params};
pub use index::{cosine_sparse, DocId, IndexBuilder, InvertedIndex, Posting, TermId};
pub use porter::stem;
pub use sst_limits::{LimitKind, LimitViolation, Limits};
pub use tokenizer::{analyze, is_stopword, tokenize, STOPWORDS};

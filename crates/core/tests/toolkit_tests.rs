//! Facade-level tests of sst-core against wrapper-parsed ontologies
//! (sst-wrappers is a dev-dependency, so these stay out of the unit tests).

use sst_core::{
    measure_ids as m, ConceptRef, ConceptSet, ProbabilityModeConfig, SstBuilder, SstError,
    SstToolkit, TreeMode,
};
use sst_simpack::{Amalgamation, Combiner};
use sst_wrappers::{parse_owl, parse_powerloom};

const OWL: &str = r##"<?xml version="1.0"?>
<rdf:RDF xmlns:rdf="http://www.w3.org/1999/02/22-rdf-syntax-ns#"
         xmlns:rdfs="http://www.w3.org/2000/01/rdf-schema#"
         xmlns:owl="http://www.w3.org/2002/07/owl#"
         xml:base="http://example.org/uni">
  <owl:Class rdf:ID="Person"><rdfs:comment>A human being</rdfs:comment></owl:Class>
  <owl:Class rdf:ID="Student">
    <rdfs:comment>A person who studies</rdfs:comment>
    <rdfs:subClassOf rdf:resource="#Person"/>
  </owl:Class>
  <owl:Class rdf:ID="Professor">
    <rdfs:comment>A person who teaches and researches</rdfs:comment>
    <rdfs:subClassOf rdf:resource="#Person"/>
  </owl:Class>
  <Student rdf:ID="anna"/>
  <Student rdf:ID="ben"/>
  <Professor rdf:ID="carl"/>
</rdf:RDF>"##;

const PLOOM: &str = r#"
(defmodule "PL" :documentation "PowerLoom side")
(in-module "PL")
(defconcept PERSON :documentation "A human being.")
(defconcept STUDENT (?s PERSON) :documentation "A person who studies at the university.")
(defconcept PROFESSOR (?p PERSON) :documentation "A person who teaches at the university.")
"#;

fn toolkit(mode: TreeMode, prob: ProbabilityModeConfig) -> SstToolkit {
    let owl = parse_owl(OWL, "uni_owl", "http://example.org/uni").unwrap();
    let ploom = parse_powerloom(PLOOM, "PL").unwrap();
    SstBuilder::new()
        .register_ontology(owl)
        .unwrap()
        .register_ontology(ploom)
        .unwrap()
        .tree_mode(mode)
        .probability_mode(prob)
        .build()
}

#[test]
fn builder_configuration_flows_through() {
    let st = toolkit(TreeMode::SuperThing, ProbabilityModeConfig::default());
    assert_eq!(st.tree().mode(), TreeMode::SuperThing);
    let merged = toolkit(TreeMode::MergedThing, ProbabilityModeConfig::default());
    assert_eq!(merged.tree().mode(), TreeMode::MergedThing);
    assert!(merged.tree().node_count() < st.tree().node_count());
}

#[test]
fn probability_mode_changes_ic_measures() {
    // OWL side has 3 instances over 2 concepts out of 4 → 50% populated, so
    // the instance corpus is used when requested; subclass mode must differ.
    let inst = toolkit(
        TreeMode::SuperThing,
        ProbabilityModeConfig::InstanceCorpusWithFallback,
    );
    let sub = toolkit(TreeMode::SuperThing, ProbabilityModeConfig::SubclassCount);
    let q = ("Student", "uni_owl", "Professor", "uni_owl");
    let a = inst
        .get_similarity(q.0, q.1, q.2, q.3, m::RESNIK_MEASURE)
        .unwrap();
    let b = sub
        .get_similarity(q.0, q.1, q.2, q.3, m::RESNIK_MEASURE)
        .unwrap();
    assert!(a.is_finite() && b.is_finite());
    assert!(
        (a - b).abs() > 1e-6,
        "expected different IC corpora: {a} vs {b}"
    );
}

#[test]
fn combined_similarity_service() {
    let sst = toolkit(TreeMode::SuperThing, ProbabilityModeConfig::default());
    let combiner = Combiner::uniform(Amalgamation::WeightedAverage, 2);
    let measures = [m::CONCEPTUAL_SIMILARITY_MEASURE, m::TFIDF_MEASURE];
    let combined = sst
        .combined_similarity("Student", "uni_owl", "STUDENT", "PL", &measures, &combiner)
        .unwrap();
    let parts = sst
        .get_similarities("Student", "uni_owl", "STUDENT", "PL", &measures)
        .unwrap();
    assert!((combined - (parts[0] + parts[1]) / 2.0).abs() < 1e-12);

    // Arity mismatch and unnormalized components are rejected.
    assert!(matches!(
        sst.combined_similarity(
            "Student",
            "uni_owl",
            "STUDENT",
            "PL",
            &measures[..1],
            &combiner
        ),
        Err(SstError::InvalidArgument(_))
    ));
    let with_resnik = [m::RESNIK_MEASURE, m::TFIDF_MEASURE];
    assert!(sst
        .combined_similarity(
            "Student",
            "uni_owl",
            "STUDENT",
            "PL",
            &with_resnik,
            &combiner
        )
        .is_err());
}

#[test]
fn most_similar_combined_ranks_cross_language_twins_high() {
    let sst = toolkit(TreeMode::SuperThing, ProbabilityModeConfig::default());
    let combiner = Combiner::uniform(Amalgamation::WeightedAverage, 2);
    let top = sst
        .most_similar_combined(
            "Student",
            "uni_owl",
            &ConceptSet::All,
            3,
            &[m::CONCEPTUAL_SIMILARITY_MEASURE, m::TFIDF_MEASURE],
            &combiner,
        )
        .unwrap();
    assert_eq!(top[0].concept, "Student"); // self
                                           // The PowerLoom STUDENT should appear in the top 3.
    assert!(top
        .iter()
        .any(|r| r.concept == "STUDENT" && r.ontology == "PL"));
}

#[test]
fn chart_services_render() {
    let sst = toolkit(TreeMode::SuperThing, ProbabilityModeConfig::default());
    let chart = sst
        .most_similar_plot(
            "Professor",
            "uni_owl",
            &ConceptSet::All,
            4,
            m::TFIDF_MEASURE,
        )
        .unwrap();
    assert_eq!(chart.bars.len(), 4);
    assert!(chart.title.contains("4 most similar"));
    let gnuplot = chart.to_gnuplot("out");
    assert!(gnuplot.data.lines().count() == 4);
    // Unnormalized measure labels the axis in bits.
    let resnik_chart = sst
        .most_similar_plot(
            "Professor",
            "uni_owl",
            &ConceptSet::All,
            2,
            m::RESNIK_MEASURE,
        )
        .unwrap();
    assert_eq!(resnik_chart.y_label, "bits");
}

#[test]
fn browser_render_helpers() {
    let sst = toolkit(TreeMode::SuperThing, ProbabilityModeConfig::default());
    let tree = sst.render_ontology_tree("uni_owl").unwrap();
    assert!(tree.contains("Thing") && tree.contains("Student"));
    let pane = sst.render_concept("Student", "uni_owl").unwrap();
    assert!(pane.contains("uni_owl:Student"));
    assert!(pane.contains("superconcepts: Person"));
    let meta = sst.render_metadata("PL").unwrap();
    assert!(meta.contains("PowerLoom"));
    assert!(sst.render_ontology_tree("missing").is_err());
}

#[test]
fn soqaql_count_via_facade() {
    let sst = toolkit(TreeMode::SuperThing, ProbabilityModeConfig::default());
    let t = sst
        .query("SELECT COUNT(*) FROM concepts OF 'uni_owl'")
        .unwrap();
    assert_eq!(t.rows[0][0].render(), "4"); // Thing + 3 classes
    let t = sst.query("SELECT COUNT(*) FROM instances").unwrap();
    assert_eq!(t.rows[0][0].render(), "3");
}

#[test]
fn concept_set_resolution_errors() {
    let sst = toolkit(TreeMode::SuperThing, ProbabilityModeConfig::default());
    let bad = ConceptSet::Subtree(ConceptRef::new("Ghost", "uni_owl"));
    assert!(sst.concept_set(&bad).is_err());
    let good = ConceptSet::Subtree(ConceptRef::new("Person", "uni_owl"));
    assert_eq!(sst.concept_set(&good).unwrap().len(), 3);
}

#[test]
fn parallel_matrix_matches_sequential() {
    let sst = toolkit(TreeMode::SuperThing, ProbabilityModeConfig::default());
    let set = ConceptSet::All;
    let (labels_a, seq) = sst
        .similarity_matrix(&set, m::CONCEPTUAL_SIMILARITY_MEASURE)
        .unwrap();
    let (labels_b, par) = sst
        .similarity_matrix_parallel(&set, m::CONCEPTUAL_SIMILARITY_MEASURE, 4)
        .unwrap();
    assert_eq!(labels_a, labels_b);
    for (ra, rb) in seq.iter().zip(&par) {
        for (a, b) in ra.iter().zip(rb) {
            assert!((a - b).abs() < 1e-12);
        }
    }
}

#[test]
fn heatmap_service_renders() {
    let sst = toolkit(TreeMode::SuperThing, ProbabilityModeConfig::default());
    let set = ConceptSet::Subtree(ConceptRef::new("Person", "uni_owl"));
    let heatmap = sst.similarity_heatmap(&set, m::TFIDF_MEASURE).unwrap();
    assert_eq!(heatmap.labels.len(), 3);
    let ascii = heatmap.to_ascii();
    assert!(ascii.contains("uni_owl:Person"));
    assert!(ascii.contains('█')); // diagonal
    let art = heatmap.to_gnuplot("hm");
    assert!(art.script.contains("with image"));
}

//! The SOQA-SimPack Toolkit Facade (paper §3, Fig. 4): the single access
//! point for ontology-language-independent similarity services.
//!
//! The paper's method signatures map as follows:
//!
//! * (S1) `getSimilarity(c1, o1, c2, o2, measure)` →
//!   [`SstToolkit::get_similarity`]
//! * (S2) `getMostSimilarConcepts(c, o, subtreeRoot, subtreeOnto, k, m)` →
//!   [`SstToolkit::most_similar`] with [`ConceptSet::Subtree`]
//! * (S3) `getSimilarityPlot(c1, o1, c2, o2, measures)` →
//!   [`SstToolkit::similarity_plot`]

use std::collections::HashMap;
use std::sync::Arc;
use std::time::Instant;

use sst_index::{DocId, IndexBuilder, InvertedIndex};
use sst_obs::{Counter, Histogram, Metrics};
use sst_simpack::{InformationContent, ProbabilityMode};
use sst_soqa::ql::ResultTable;
use sst_soqa::{GlobalConcept, Ontology, Soqa};

use crate::chart::Chart;
use crate::error::{Result, SstError};
use crate::runner::{
    default_runners, MeasureRunner, PrepareNeeds, PreparedContext, PreparedMeasure, RunnerInfo,
    SimilarityContext,
};
use crate::sched;
use crate::tree::{TreeMode, UnifiedTree};
use crate::vector::{embed_tfidf, DenseVectorFile, VectorStore, EMBED_DIM};

/// Paper-style integer constants for the default measures, e.g.
/// `measure_ids::LIN_MEASURE` (the Java API's
/// `SOQASimPackToolkitFacade.LIN_MEASURE`). Values are indices into the
/// default runner registry.
pub mod measure_ids {
    pub const COSINE_MEASURE: usize = 0;
    pub const JACCARD_MEASURE: usize = 1;
    pub const OVERLAP_MEASURE: usize = 2;
    pub const DICE_MEASURE: usize = 3;
    pub const LEVENSHTEIN_MEASURE: usize = 4;
    pub const JARO_MEASURE: usize = 5;
    pub const JARO_WINKLER_MEASURE: usize = 6;
    pub const QGRAM_MEASURE: usize = 7;
    pub const MONGE_ELKAN_MEASURE: usize = 8;
    pub const SHORTEST_PATH_MEASURE: usize = 9;
    pub const EDGE_MEASURE: usize = 10;
    pub const CONCEPTUAL_SIMILARITY_MEASURE: usize = 11;
    pub const RESNIK_MEASURE: usize = 12;
    pub const LIN_MEASURE: usize = 13;
    pub const JIANG_CONRATH_MEASURE: usize = 14;
    pub const TFIDF_MEASURE: usize = 15;
    pub const TREE_EDIT_MEASURE: usize = 16;
    pub const NEEDLEMAN_WUNSCH_MEASURE: usize = 17;
    pub const SMITH_WATERMAN_MEASURE: usize = 18;
    pub const DENSE_VECTOR_MEASURE: usize = 19;
}

/// User-facing concept address: `(concept name, ontology name)` — the
/// two-string addressing the paper requires because names are not unique in
/// the single ontology tree.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct ConceptRef {
    pub concept: String,
    pub ontology: String,
}

impl ConceptRef {
    pub fn new(concept: impl Into<String>, ontology: impl Into<String>) -> Self {
        ConceptRef {
            concept: concept.into(),
            ontology: ontology.into(),
        }
    }
}

/// The concept sets SST services accept: a freely composed list, all
/// concepts of an ontology taxonomy (sub)tree, or every registered concept.
#[derive(Debug, Clone, PartialEq)]
pub enum ConceptSet {
    /// A freely composed list of concepts.
    List(Vec<ConceptRef>),
    /// All concepts in the subtree rooted at the given concept.
    Subtree(ConceptRef),
    /// Every concept of every registered ontology (the whole tree under
    /// Super Thing).
    All,
}

/// One result row of the set-based services (paper: `ConceptAndSimilarity`).
#[derive(Debug, Clone, PartialEq)]
pub struct ConceptAndSimilarity {
    pub concept: String,
    pub ontology: String,
    pub similarity: f64,
}

/// Which execution path the batch services (matrix, set, k-best) take.
///
/// Both paths are bit-identical on all default measures; `Naive` is kept as
/// the reference implementation for regression benchmarks and property
/// tests.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum BatchMode {
    /// Prepared-context batch engine: per-concept views and BFS tables are
    /// computed once per operation (the default).
    #[default]
    Prepared,
    /// Per-pair path: every runner call rederives its inputs.
    Naive,
}

/// Member-set size from which the rank scan ([`SstToolkit::similarity_to_set`])
/// fans out over the work-stealing scheduler instead of scoring serially.
const RANK_PARALLEL_THRESHOLD: usize = 256;

/// One pair-scoring strategy for a batch operation: either a
/// measure-specialized [`PreparedMeasure`], or the naive per-pair runner
/// call for runners without a batch hook.
pub(crate) enum PairScorer<'p> {
    Prepared(Box<dyn PreparedMeasure + 'p>),
    Naive {
        runner: &'p dyn MeasureRunner,
        prep: &'p PreparedContext<'p>,
    },
}

impl<'p> PairScorer<'p> {
    pub(crate) fn new(runner: &'p dyn MeasureRunner, prep: &'p PreparedContext<'p>) -> Self {
        match runner.prepare(prep) {
            Some(m) => PairScorer::Prepared(m),
            None => PairScorer::Naive { runner, prep },
        }
    }

    /// Similarity of the prepared concepts at positions `a` and `b`.
    pub(crate) fn score(&self, a: usize, b: usize) -> f64 {
        match self {
            PairScorer::Prepared(m) => m.similarity(a, b),
            PairScorer::Naive { runner, prep } => {
                runner.similarity(prep.base(), prep.concept(a), prep.concept(b))
            }
        }
    }
}

/// The shared tiebreak of every k-best ranking: the qualified
/// `(ontology, concept)` name in ascending lexicographic order. Qualified
/// names are unique, so any comparator ending in this tiebreak is a
/// strict total order — equal-score truncation at `k` returns the same
/// entries no matter what order the scores were produced in.
fn rank_tiebreak(x: &ConceptAndSimilarity, y: &ConceptAndSimilarity) -> std::cmp::Ordering {
    (&x.ontology, &x.concept).cmp(&(&y.ontology, &y.concept))
}

/// Shared descending rank order for k-best results: IEEE 754 `total_cmp`
/// on the similarity (NaN ranks first), then [`rank_tiebreak`]. Every
/// descending rank entry point — direct, multi-measure, combined, cached,
/// and the exact/approximate vector paths — sorts with this, so a NaN
/// score from a user-registered runner ranks identically whether or not
/// the pair was memoized, and exact/approx parity is assertable entry by
/// entry.
pub(crate) fn rank_descending(
    x: &ConceptAndSimilarity,
    y: &ConceptAndSimilarity,
) -> std::cmp::Ordering {
    y.similarity
        .total_cmp(&x.similarity)
        .then_with(|| rank_tiebreak(x, y))
}

/// Shared ascending rank order — the `most_dissimilar` counterpart of
/// [`rank_descending`]. The score order flips; the name tiebreak does
/// not, so the two orders stay mirror images on distinct scores and
/// agree on tied ones.
pub(crate) fn rank_ascending(
    x: &ConceptAndSimilarity,
    y: &ConceptAndSimilarity,
) -> std::cmp::Ordering {
    x.similarity
        .total_cmp(&y.similarity)
        .then_with(|| rank_tiebreak(x, y))
}

/// Configuration knobs for toolkit construction.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct SstConfig {
    pub tree_mode: TreeMode,
    pub probability_mode: ProbabilityModeConfig,
}

/// IC probability source selection (defaults to the paper's recommendation:
/// instance corpus with automatic fallback to subclass counts).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum ProbabilityModeConfig {
    #[default]
    InstanceCorpusWithFallback,
    SubclassCount,
}

/// Builder assembling a toolkit from wrapper-produced ontologies.
#[derive(Debug, Default)]
pub struct SstBuilder {
    soqa: Soqa,
    config: SstConfig,
    extra_runners: Vec<Box<dyn MeasureRunner>>,
}

impl SstBuilder {
    pub fn new() -> Self {
        SstBuilder::default()
    }

    /// Registers an ontology (from any `sst-wrappers` parser).
    pub fn register_ontology(mut self, ontology: Ontology) -> Result<Self> {
        self.soqa.register(ontology)?;
        Ok(self)
    }

    /// Selects the tree-join mode (default: Super Thing).
    pub fn tree_mode(mut self, mode: TreeMode) -> Self {
        self.config.tree_mode = mode;
        self
    }

    /// Selects the IC probability source.
    pub fn probability_mode(mut self, mode: ProbabilityModeConfig) -> Self {
        self.config.probability_mode = mode;
        self
    }

    /// Registers an additional [`MeasureRunner`] — the paper's extension
    /// point for new or combined measures.
    pub fn register_runner(mut self, runner: Box<dyn MeasureRunner>) -> Self {
        self.extra_runners.push(runner);
        self
    }

    /// Freezes the toolkit: builds the unified tree, the information
    /// content, and the full-text index.
    pub fn build(self) -> SstToolkit {
        let metrics = Metrics::new();
        let _build_span = metrics.span("core.build.latency");
        let tree = UnifiedTree::build(&self.soqa, self.config.tree_mode);

        // Instance counts per tree node for the IC corpus.
        let mut instance_counts = vec![0usize; tree.node_count()];
        for gc in tree.all_concepts() {
            instance_counts[tree.node(gc) as usize] = self.soqa.concept(gc).instances.len();
        }
        let mode = match self.config.probability_mode {
            ProbabilityModeConfig::InstanceCorpusWithFallback => ProbabilityMode::InstanceCorpus,
            ProbabilityModeConfig::SubclassCount => ProbabilityMode::SubclassCount,
        };
        let ic = InformationContent::for_mode(tree.taxonomy(), mode, &instance_counts);

        // Full-text index: one document per concept (paper §2.2: "we
        // exported a full-text description of all concepts … and built an
        // index over the descriptions"). The key carries the unified tree
        // node id: display names are not unique within an ontology, and
        // the builder would hand back the first document's id for a
        // colliding key, silently aliasing distinct concepts onto one
        // TF-IDF vector.
        let mut index_builder = IndexBuilder::with_metrics(metrics.clone());
        let mut doc_ids: Vec<Option<DocId>> = vec![None; tree.node_count()];
        for gc in tree.all_concepts() {
            let key = format!("{}#{}", self.soqa.qualified_name(gc), tree.node(gc));
            let text = self.soqa.concept_description(gc);
            doc_ids[tree.node(gc) as usize] = Some(index_builder.add_document(key, &text));
        }
        let index = index_builder.build();

        // Dense retrieval: embed every concept's TF-IDF vector and build
        // the vector store (plus its proximity graph) over the matrix. The
        // embeddings are the same bits the `dense_vector` runner derives
        // per pair, so exact store rankings are bit-identical to the
        // naive scan.
        let vectors = {
            let _vspan = metrics.span("core.vector.build.latency");
            let rows = tree
                .all_concepts()
                .into_iter()
                .map(|gc| {
                    let tfidf = doc_ids[tree.node(gc) as usize]
                        .map(|d| index.tfidf_vector(d))
                        .unwrap_or_default();
                    (
                        gc,
                        self.soqa.qualified_name(gc),
                        embed_tfidf(&tfidf, EMBED_DIM),
                    )
                })
                .collect();
            VectorStore::from_rows(rows, EMBED_DIM)
        };
        metrics.add("core.vector.concepts", vectors.len() as u64);

        let mut runners = default_runners();
        runners.extend(self.extra_runners);
        let measure_names = runners
            .iter()
            .enumerate()
            .map(|(i, r)| (r.info().name, i))
            .collect();
        let measure_metrics = runners
            .iter()
            .map(|r| MeasureMetrics::register(&metrics, &r.info().name))
            .collect();

        SstToolkit {
            soqa: self.soqa,
            config: self.config,
            tree,
            ic,
            index,
            doc_ids,
            vectors,
            runners,
            measure_names,
            measure_metrics,
            metrics,
            last_sched: std::sync::Mutex::new(None),
        }
    }
}

/// Pre-resolved metric handles for one registered measure, so hot loops
/// record with pure atomic traffic instead of per-call name lookups.
#[derive(Debug)]
struct MeasureMetrics {
    /// `core.pair.calls.<measure>` — pairwise runner invocations.
    pair_calls: Arc<Counter>,
    /// `core.pair.latency.<measure>` — per-invocation latency (recorded on
    /// the pairwise and ranking paths; matrix paths count pairs only).
    pair_latency: Arc<Histogram>,
    /// `core.rank.calls.<measure>` / `core.rank.latency.<measure>` —
    /// whole-operation stats of the k-best services.
    rank_calls: Arc<Counter>,
    rank_latency: Arc<Histogram>,
    /// `core.matrix.calls.<measure>` / `core.matrix.latency.<measure>` —
    /// whole-operation stats of the similarity-matrix services.
    matrix_calls: Arc<Counter>,
    matrix_latency: Arc<Histogram>,
}

/// Which whole-operation metric family a facade service records into.
#[derive(Debug, Clone, Copy)]
enum MeasureOp {
    /// The k-best services (`most_similar`, `most_dissimilar`, combined).
    Rank,
    /// The similarity-matrix services (serial and parallel).
    Matrix,
}

impl MeasureMetrics {
    fn register(metrics: &Metrics, measure: &str) -> MeasureMetrics {
        MeasureMetrics {
            pair_calls: metrics.counter(&format!("core.pair.calls.{measure}")),
            pair_latency: metrics.histogram(&format!("core.pair.latency.{measure}")),
            rank_calls: metrics.counter(&format!("core.rank.calls.{measure}")),
            rank_latency: metrics.histogram(&format!("core.rank.latency.{measure}")),
            matrix_calls: metrics.counter(&format!("core.matrix.calls.{measure}")),
            matrix_latency: metrics.histogram(&format!("core.matrix.latency.{measure}")),
        }
    }
}

/// The toolkit facade.
#[derive(Debug)]
pub struct SstToolkit {
    soqa: Soqa,
    /// The configuration the toolkit was built with, persisted into
    /// snapshots so an import rebuilds under identical settings.
    config: SstConfig,
    tree: UnifiedTree,
    ic: InformationContent,
    index: InvertedIndex,
    doc_ids: Vec<Option<DocId>>,
    vectors: VectorStore,
    runners: Vec<Box<dyn MeasureRunner>>,
    measure_names: HashMap<String, usize>,
    measure_metrics: Vec<MeasureMetrics>,
    metrics: Metrics,
    /// Stats of the most recent work-stealing scheduler run (bench and
    /// diagnostics introspection; see [`SstToolkit::last_sched_stats`]).
    last_sched: std::sync::Mutex<Option<sched::SchedStats>>,
}

impl SstToolkit {
    /// The underlying SOQA facade (for browsing, SOQA-QL, metadata).
    pub fn soqa(&self) -> &Soqa {
        &self.soqa
    }

    /// The unified ontology tree.
    pub fn tree(&self) -> &UnifiedTree {
        &self.tree
    }

    /// The configuration the toolkit was built with.
    pub fn config(&self) -> SstConfig {
        self.config
    }

    /// The toolkit's metrics registry. Cloning the returned handle shares
    /// the registry (see `sst_obs::Metrics`), so services built on top of
    /// the toolkit can record into the same report.
    pub fn metrics(&self) -> &Metrics {
        &self.metrics
    }

    /// JSON export of every metric the toolkit has recorded: per-measure
    /// call counts and latency histograms, cache hit/miss counters, index
    /// and query-engine throughput.
    pub fn metrics_report(&self) -> String {
        self.metrics.to_json()
    }

    pub(crate) fn ctx(&self) -> SimilarityContext<'_> {
        SimilarityContext {
            soqa: &self.soqa,
            tree: &self.tree,
            ic: &self.ic,
            index: &self.index,
            doc_ids: &self.doc_ids,
        }
    }

    // ---- Measure registry ------------------------------------------------

    /// Metadata of all registered measures, in id order.
    pub fn measures(&self) -> Vec<RunnerInfo> {
        self.runners.iter().map(|r| r.info()).collect()
    }

    /// Number of registered measures.
    pub fn measure_count(&self) -> usize {
        self.runners.len()
    }

    /// Resolves a measure name (e.g. `"lin"`) to its integer id.
    pub fn measure_id(&self, name: &str) -> Result<usize> {
        self.measure_names
            .get(name)
            .copied()
            .ok_or_else(|| SstError::UnknownMeasure(name.to_owned()))
    }

    /// Metadata for one measure id.
    pub fn measure_info(&self, measure: usize) -> Result<RunnerInfo> {
        self.runners
            .get(measure)
            .map(|r| r.info())
            .ok_or_else(|| SstError::UnknownMeasure(measure.to_string()))
    }

    pub(crate) fn runner(&self, measure: usize) -> Result<&dyn MeasureRunner> {
        self.runners
            .get(measure)
            .map(AsRef::as_ref)
            .ok_or_else(|| SstError::UnknownMeasure(measure.to_string()))
    }

    /// Runs one pairwise similarity computation, recording the per-measure
    /// call counter and latency histogram.
    fn timed_similarity(
        &self,
        measure: usize,
        ctx: &SimilarityContext<'_>,
        a: GlobalConcept,
        b: GlobalConcept,
    ) -> Result<f64> {
        let runner = self.runner(measure)?;
        let start = Instant::now();
        let value = runner.similarity(ctx, a, b);
        if let Some(mm) = self.measure_metrics.get(measure) {
            mm.pair_calls.inc();
            mm.pair_latency.observe(start.elapsed());
        }
        Ok(value)
    }

    /// Builds a [`PreparedContext`] over `concepts`: per-concept feature
    /// sets, interned token sequences, subtree forms, document vectors, and
    /// BFS tables, computed once so batch scans stop rederiving them per
    /// pair. Public so external batch flows (benches, user services) can
    /// drive [`MeasureRunner::prepare`] directly.
    pub fn prepare(&self, concepts: &[GlobalConcept]) -> PreparedContext<'_> {
        self.prepare_for(concepts, PrepareNeeds::ALL)
    }

    /// [`SstToolkit::prepare`] restricted to the artifact families in
    /// `needs` — internal batch entry points pass the union of the
    /// participating runners' [`MeasureRunner::needs`], so a q-gram matrix
    /// stops paying for BFS tables and TF-IDF vectors it never reads.
    /// Artifacts outside `needs` are simply absent from the context; the
    /// built-in prepared scorers fall back to their naive per-pair formulas
    /// when asked for a missing artifact, so an under-provisioned context
    /// costs speed, never correctness.
    pub fn prepare_for(
        &self,
        concepts: &[GlobalConcept],
        needs: PrepareNeeds,
    ) -> PreparedContext<'_> {
        let _span = self.metrics.span("core.prepare.latency");
        self.metrics
            .add("core.prepare.concepts", concepts.len() as u64);
        PreparedContext::new_with_needs(self.ctx(), concepts, needs)
    }

    /// Union of the [`MeasureRunner::needs`] of `measures` (for batch
    /// operations that score several measures over one prepared context).
    pub(crate) fn needs_union(&self, measures: &[usize]) -> Result<PrepareNeeds> {
        let mut needs = PrepareNeeds::NONE;
        for &m in measures {
            needs = needs.union(self.runner(m)?.needs());
        }
        Ok(needs)
    }

    /// Records one pair computation produced by `score` into the same
    /// per-measure counters/histograms as [`SstToolkit::timed_similarity`],
    /// so prepared-path rankings keep the naive path's metric semantics.
    pub(crate) fn timed_score(&self, measure: usize, score: impl FnOnce() -> f64) -> f64 {
        let start = Instant::now();
        let value = score();
        if let Some(mm) = self.measure_metrics.get(measure) {
            mm.pair_calls.inc();
            mm.pair_latency.observe(start.elapsed());
        }
        value
    }

    /// An RAII span over a whole-operation histogram of `measure`, plus the
    /// matching call counter, selected by `op`.
    fn measure_span(&self, measure: usize, op: MeasureOp) -> Option<sst_obs::Span> {
        let mm = self.measure_metrics.get(measure)?;
        let (calls, latency) = match op {
            MeasureOp::Rank => (&mm.rank_calls, &mm.rank_latency),
            MeasureOp::Matrix => (&mm.matrix_calls, &mm.matrix_latency),
        };
        calls.inc();
        Some(sst_obs::Span::new(Arc::clone(latency)))
    }

    fn resolve(&self, r: &ConceptRef) -> Result<GlobalConcept> {
        Ok(self.soqa.resolve(&r.ontology, &r.concept)?)
    }

    fn to_result(&self, gc: GlobalConcept, similarity: f64) -> ConceptAndSimilarity {
        ConceptAndSimilarity {
            concept: self.soqa.concept(gc).name.clone(),
            ontology: self.soqa.ontology_at(gc.ontology).name().to_owned(),
            similarity,
        }
    }

    /// Materializes a [`ConceptSet`] into global concept handles.
    pub fn concept_set(&self, set: &ConceptSet) -> Result<Vec<GlobalConcept>> {
        match set {
            ConceptSet::List(refs) => refs.iter().map(|r| self.resolve(r)).collect(),
            ConceptSet::Subtree(root) => {
                let gc = self.resolve(root)?;
                Ok(self.tree.subtree_concepts(self.tree.node(gc)))
            }
            ConceptSet::All => Ok(self.tree.all_concepts()),
        }
    }

    // ---- (S1) pairwise services -------------------------------------------

    /// Similarity of two concepts under one measure (paper signature S1).
    pub fn get_similarity(
        &self,
        first_concept: &str,
        first_ontology: &str,
        second_concept: &str,
        second_ontology: &str,
        measure: usize,
    ) -> Result<f64> {
        let a = self.soqa.resolve(first_ontology, first_concept)?;
        let b = self.soqa.resolve(second_ontology, second_concept)?;
        self.timed_similarity(measure, &self.ctx(), a, b)
    }

    /// Similarity of two concepts under a list of measures.
    pub fn get_similarities(
        &self,
        first_concept: &str,
        first_ontology: &str,
        second_concept: &str,
        second_ontology: &str,
        measures: &[usize],
    ) -> Result<Vec<f64>> {
        let a = self.soqa.resolve(first_ontology, first_concept)?;
        let b = self.soqa.resolve(second_ontology, second_concept)?;
        let ctx = self.ctx();
        measures
            .iter()
            .map(|&m| self.timed_similarity(m, &ctx, a, b))
            .collect()
    }

    // ---- concept-vs-set and k-best services --------------------------------

    /// Similarity of `concept` to every member of `set` under one measure,
    /// in set order. Runs on the prepared-context batch path: the query and
    /// every member are prepared once, then scored positionally.
    pub fn similarity_to_set(
        &self,
        concept: &str,
        ontology: &str,
        set: &ConceptSet,
        measure: usize,
    ) -> Result<Vec<ConceptAndSimilarity>> {
        let query = self.soqa.resolve(ontology, concept)?;
        let members = self.concept_set(set)?;
        if members.is_empty() {
            return Ok(Vec::new());
        }
        let runner = self.runner(measure)?;
        let mut batch = members.clone();
        batch.push(query);
        let prep = self.prepare_for(&batch, runner.needs());
        let scorer = PairScorer::new(runner, &prep);
        let qpos = batch.len() - 1;
        let n = members.len();
        // Large rank scans reuse the work-stealing chunk scheduler: the
        // member axis is cut into chunks and scored concurrently, then
        // assembled positionally (same scores, same order, any worker
        // count). Small sets stay serial — spawn overhead would dominate.
        let scores: Vec<f64> = if n >= RANK_PARALLEL_THRESHOLD {
            let tiles = sched::rect_tiles(1, n, 64);
            let workers = sched::default_workers().min(tiles.len());
            let scorer = &scorer;
            let (results, stats) = sched::run_tiles(&tiles, workers, |_, tile| {
                let mut vals = Vec::with_capacity(tile.len());
                tile.for_each(|_, i| {
                    vals.push(self.timed_score(measure, || scorer.score(qpos, i)));
                });
                vals
            });
            if stats.panicked > 0 {
                return Err(SstError::Internal("rank worker thread died".into()));
            }
            self.record_sched_stats(&stats);
            let mut scores = vec![0.0; n];
            for (idx, vals) in results {
                if let Some(tile) = tiles.get(idx) {
                    let mut it = vals.into_iter();
                    tile.for_each(|_, i| {
                        if let Some(v) = it.next() {
                            scores[i] = v;
                        }
                    });
                }
            }
            scores
        } else {
            (0..n)
                .map(|i| self.timed_score(measure, || scorer.score(qpos, i)))
                .collect()
        };
        Ok(members
            .iter()
            .zip(scores)
            .map(|(&gc, v)| self.to_result(gc, v))
            .collect())
    }

    /// The `k` most similar concepts of `set` for the query concept (paper
    /// signature S2). Results are sorted by descending similarity; ties
    /// break on the qualified name for determinism. Ordering uses IEEE 754
    /// `total_cmp`, so NaN scores from user-registered runners rank
    /// deterministically (first) instead of freezing wherever the sort
    /// happened to leave them.
    pub fn most_similar(
        &self,
        concept: &str,
        ontology: &str,
        set: &ConceptSet,
        k: usize,
        measure: usize,
    ) -> Result<Vec<ConceptAndSimilarity>> {
        let _span = self.measure_span(measure, MeasureOp::Rank);
        let mut all = self.similarity_to_set(concept, ontology, set, measure)?;
        all.sort_by(rank_descending);
        all.truncate(k);
        Ok(all)
    }

    /// The `k` most *dissimilar* concepts of `set` for the query concept.
    pub fn most_dissimilar(
        &self,
        concept: &str,
        ontology: &str,
        set: &ConceptSet,
        k: usize,
        measure: usize,
    ) -> Result<Vec<ConceptAndSimilarity>> {
        let _span = self.measure_span(measure, MeasureOp::Rank);
        let mut all = self.similarity_to_set(concept, ontology, set, measure)?;
        all.sort_by(rank_ascending);
        all.truncate(k);
        Ok(all)
    }

    // ---- dense vector retrieval (sub-linear k-best) ------------------------

    /// The toolkit's per-concept embedding matrix with its approximate
    /// index (built once at [`SstBuilder::build`] time over every
    /// registered concept).
    pub fn vector_store(&self) -> &VectorStore {
        &self.vectors
    }

    /// Maps `(store row, score)` candidates to ranked results: the same
    /// shared comparator and `k`-truncation as every other rank entry
    /// point, so exact-store rankings are bit-identical to the naive scan
    /// and approximate rankings are directly comparable.
    fn rank_vector_rows(&self, scored: Vec<(usize, f64)>, k: usize) -> Vec<ConceptAndSimilarity> {
        let mut all: Vec<ConceptAndSimilarity> = scored
            .into_iter()
            .filter_map(|(row, s)| self.vectors.concept(row).map(|gc| self.to_result(gc, s)))
            .collect();
        all.sort_by(rank_descending);
        all.truncate(k);
        all
    }

    /// Resolves the query concept to its vector-store row.
    fn vector_row(&self, concept: &str, ontology: &str) -> Result<usize> {
        let query = self.soqa.resolve(ontology, concept)?;
        self.vectors.position(query).ok_or_else(|| {
            SstError::Internal(format!(
                "concept {ontology}:{concept} missing from the vector store"
            ))
        })
    }

    /// The `k` most similar concepts under the dense `dense_vector`
    /// measure, ranked by the **exact** brute-force scan of the vector
    /// store. This is the reference path: bit-identical to
    /// [`SstToolkit::most_similar`] with
    /// [`measure_ids::DENSE_VECTOR_MEASURE`] over [`ConceptSet::All`],
    /// pinned by the `ann_identity` suite.
    pub fn most_similar_dense(
        &self,
        concept: &str,
        ontology: &str,
        k: usize,
    ) -> Result<Vec<ConceptAndSimilarity>> {
        let _span = self.metrics.span("core.vector.exact.latency");
        self.metrics.inc("core.vector.exact.queries");
        let qrow = self.vector_row(concept, ontology)?;
        Ok(self.rank_vector_rows(self.vectors.scores_exact(qrow), k))
    }

    /// The `k` most similar concepts under the dense measure via the
    /// **approximate** NSW proximity graph: a bounded beam search seeded
    /// at the query's own row touches a corpus-size-independent number
    /// of rows, making the query sub-linear in corpus size at ≥ 0.95
    /// recall@10 under the default probe width (see
    /// `results/BENCH_ann.json`). The query concept always appears in
    /// its own results (score 1.0), as on the exact path.
    pub fn most_similar_approx(
        &self,
        concept: &str,
        ontology: &str,
        k: usize,
    ) -> Result<Vec<ConceptAndSimilarity>> {
        self.most_similar_approx_with(concept, ontology, k, self.vectors.default_probe())
    }

    /// [`SstToolkit::most_similar_approx`] with an explicit probe width:
    /// higher `probe` (the beam width) trades latency for recall;
    /// `probe ≥` the corpus size degenerates to the exact scan.
    pub fn most_similar_approx_with(
        &self,
        concept: &str,
        ontology: &str,
        k: usize,
        probe: usize,
    ) -> Result<Vec<ConceptAndSimilarity>> {
        let _span = self.metrics.span("core.vector.approx.latency");
        self.metrics.inc("core.vector.approx.queries");
        let qrow = self.vector_row(concept, ontology)?;
        let scored = self.vectors.approx_candidates(qrow, probe);
        self.metrics.add("core.vector.probed", scored.len() as u64);
        Ok(self.rank_vector_rows(scored, k))
    }

    /// Serializes the embedding matrix to the checksummed `SSTVEC1`
    /// binary format (see `crate::vector`), for the offline
    /// derive-once/serve-many flow.
    pub fn export_vectors(&self) -> Vec<u8> {
        self.vectors.to_bytes()
    }

    /// Decodes an `SSTVEC1` embedding file under `limits`, resolves each
    /// row's qualified name against the registered concepts, and builds a
    /// fresh [`VectorStore`] (with its proximity graph) over the imported
    /// matrix. Unknown labels and malformed input are errors, never
    /// panics.
    pub fn import_vectors(&self, bytes: &[u8], limits: &sst_limits::Limits) -> Result<VectorStore> {
        let file = DenseVectorFile::from_bytes(bytes, limits)
            .map_err(|e| SstError::InvalidArgument(format!("vector file: {e}")))?;
        let mut rows = Vec::with_capacity(file.rows.len());
        for (label, v) in file.rows {
            let Some((ontology, concept)) = label.split_once(':') else {
                return Err(SstError::InvalidArgument(format!(
                    "vector file label `{label}` is not ontology:concept"
                )));
            };
            let gc = self.soqa.resolve(ontology, concept)?;
            rows.push((gc, label, v));
        }
        Ok(VectorStore::from_rows(rows, file.dim))
    }

    /// Serializes the toolkit into an `SSTSNAP1` snapshot: the build
    /// configuration, the exact ontology arenas, and the prepared vector
    /// tables (see `crate::snapshot` for the layout). A replica that
    /// loads the snapshot reconstructs a toolkit whose scores are
    /// bit-identical on every registered measure.
    pub fn export_snapshot(&self) -> Vec<u8> {
        crate::snapshot::encode_snapshot(self)
    }

    /// Decodes an `SSTSNAP1` snapshot under `limits` and rebuilds the
    /// toolkit from it. The checksum is verified before parsing; every
    /// arena id is validated; and the prepared vector tables rebuilt
    /// from the decoded ontologies must match the stored ones byte for
    /// byte — a mismatch means version skew between writer and reader
    /// (or silent corruption) and is an error, never a quietly different
    /// toolkit.
    pub fn import_snapshot(bytes: &[u8], limits: &sst_limits::Limits) -> Result<SstToolkit> {
        let snapshot = crate::snapshot::SnapshotFile::from_bytes(bytes, limits)
            .map_err(|e| SstError::InvalidArgument(format!("snapshot: {e}")))?;
        let mut builder = SstBuilder::new()
            .tree_mode(snapshot.config.tree_mode)
            .probability_mode(snapshot.config.probability_mode);
        for ontology in snapshot.ontologies {
            builder = builder.register_ontology(ontology)?;
        }
        let toolkit = builder.build();
        if toolkit.export_vectors() != snapshot.vectors {
            return Err(SstError::InvalidArgument(
                "snapshot: stored prepared tables do not match the rebuilt store \
                 (writer/reader version skew)"
                    .to_owned(),
            ));
        }
        Ok(toolkit)
    }

    /// Most-similar under *several* measures at once: returns one ranked
    /// list per measure, in measure order.
    ///
    /// The query and the concept set are resolved and prepared **once** and
    /// the per-concept views are shared across all measures (previously this
    /// re-resolved everything per measure via [`SstToolkit::most_similar`]).
    pub fn most_similar_multi(
        &self,
        concept: &str,
        ontology: &str,
        set: &ConceptSet,
        k: usize,
        measures: &[usize],
    ) -> Result<Vec<Vec<ConceptAndSimilarity>>> {
        let query = self.soqa.resolve(ontology, concept)?;
        let members = self.concept_set(set)?;
        if members.is_empty() {
            return Ok(measures
                .iter()
                .map(|&m| {
                    let _span = self.measure_span(m, MeasureOp::Rank);
                    Vec::new()
                })
                .collect());
        }
        let mut batch = members.clone();
        batch.push(query);
        let prep = self.prepare_for(&batch, self.needs_union(measures)?);
        let qpos = batch.len() - 1;
        let mut rankings = Vec::with_capacity(measures.len());
        for &m in measures {
            let _span = self.measure_span(m, MeasureOp::Rank);
            let scorer = PairScorer::new(self.runner(m)?, &prep);
            let mut all: Vec<ConceptAndSimilarity> = members
                .iter()
                .enumerate()
                .map(|(i, &gc)| self.to_result(gc, self.timed_score(m, || scorer.score(qpos, i))))
                .collect();
            all.sort_by(rank_descending);
            all.truncate(k);
            rankings.push(all);
        }
        Ok(rankings)
    }

    /// Full pairwise similarity matrix of a concept set under one measure.
    /// Returns the set's qualified names and the row-major matrix.
    ///
    /// Every registered measure is symmetric (Monge-Elkan is explicitly
    /// symmetrized in its runner), so only the upper triangle is computed
    /// and mirrored — `n(n+1)/2` runner calls instead of `n²`.
    pub fn similarity_matrix(
        &self,
        set: &ConceptSet,
        measure: usize,
    ) -> Result<(Vec<String>, Vec<Vec<f64>>)> {
        self.similarity_matrix_mode(set, measure, BatchMode::default())
    }

    /// [`SstToolkit::similarity_matrix`] with an explicit [`BatchMode`] —
    /// `Naive` keeps the per-pair reference path for benchmarks and
    /// bit-identity tests.
    pub fn similarity_matrix_mode(
        &self,
        set: &ConceptSet,
        measure: usize,
        mode: BatchMode,
    ) -> Result<(Vec<String>, Vec<Vec<f64>>)> {
        let concepts = self.concept_set(set)?;
        let runner = self.runner(measure)?;
        let _span = self.measure_span(measure, MeasureOp::Matrix);
        let labels = concepts
            .iter()
            .map(|&gc| self.soqa.qualified_name(gc))
            .collect();
        let n = concepts.len();
        let mut matrix = vec![vec![0.0; n]; n];
        match mode {
            BatchMode::Naive => {
                let ctx = self.ctx();
                for (i, &a) in concepts.iter().enumerate() {
                    for (j, &b) in concepts.iter().enumerate().skip(i) {
                        let v = runner.similarity(&ctx, a, b);
                        matrix[i][j] = v;
                        matrix[j][i] = v;
                    }
                }
            }
            BatchMode::Prepared => {
                let prep = self.prepare_for(&concepts, runner.needs());
                let scorer = PairScorer::new(runner, &prep);
                // Cache-blocked traversal: scoring tile-resident blocks of
                // pairs keeps the prepared artifacts of a tile's rows and
                // columns hot instead of streaming whole row suffixes.
                for tile in sched::triangle_tiles(n, sched::tile_size(n, 1)) {
                    tile.for_each_upper(|i, j| {
                        let v = scorer.score(i, j);
                        matrix[i][j] = v;
                        matrix[j][i] = v;
                    });
                }
            }
        }
        self.record_matrix_pairs(measure, n);
        Ok((labels, matrix))
    }

    /// Records one work-stealing scheduler run: tiles executed, successful
    /// steals, and the busy-time imbalance (max worker busy time over mean,
    /// stored in permille so the integer gauge keeps three decimals).
    pub(crate) fn record_sched_stats(&self, stats: &sched::SchedStats) {
        self.metrics.add("core.sched.tiles", stats.tiles());
        self.metrics.add("core.sched.steals", stats.steals());
        let permille = (stats.imbalance() * 1000.0) as i64;
        self.metrics.gauge("core.sched.imbalance").set(permille);
        if let Ok(mut last) = self.last_sched.lock() {
            *last = Some(stats.clone());
        }
    }

    /// Per-worker stats of the most recent work-stealing scheduler run on
    /// this toolkit (`None` until a parallel batch service has run). The
    /// matrix bench reads this to report worker busy times and steal
    /// counts alongside its wall-clock timings.
    pub fn last_sched_stats(&self) -> Option<sched::SchedStats> {
        self.last_sched.lock().ok().and_then(|s| s.clone())
    }

    /// Bookkeeping for the matrix services: `n(n+1)/2` computed pairs into
    /// the per-measure pair counter and the global `core.matrix.pairs`.
    fn record_matrix_pairs(&self, measure: usize, n: usize) {
        let pairs = (n as u64 * (n as u64 + 1)) / 2;
        if let Some(mm) = self.measure_metrics.get(measure) {
            mm.pair_calls.add(pairs);
        }
        self.metrics.add("core.matrix.pairs", pairs);
    }

    /// Like [`SstToolkit::similarity_matrix`] but computed with `threads`
    /// worker threads over cache-blocked triangle tiles distributed by the
    /// work-stealing scheduler ([`crate::sched`]). Useful for large concept
    /// sets: the runners are stateless and the context is shared read-only,
    /// so the matrix parallelizes embarrassingly.
    ///
    /// Only upper-triangle pairs (`j ≥ i`) are scored; the lower triangle
    /// is mirrored serially during assembly, matching the serial service's
    /// halved runner-call count. Assembly is by tile index, so the matrix
    /// is bit-identical for every worker count and steal interleaving.
    pub fn similarity_matrix_parallel(
        &self,
        set: &ConceptSet,
        measure: usize,
        threads: usize,
    ) -> Result<(Vec<String>, Vec<Vec<f64>>)> {
        self.similarity_matrix_parallel_mode(set, measure, threads, BatchMode::default())
    }

    /// [`SstToolkit::similarity_matrix_parallel`] with an explicit
    /// [`BatchMode`]. In `Prepared` mode one prepared context (and one
    /// prepared scorer) is built up front and shared read-only by all
    /// workers.
    pub fn similarity_matrix_parallel_mode(
        &self,
        set: &ConceptSet,
        measure: usize,
        threads: usize,
        mode: BatchMode,
    ) -> Result<(Vec<String>, Vec<Vec<f64>>)> {
        let concepts = self.concept_set(set)?;
        let runner = self.runner(measure)?;
        let _span = self.measure_span(measure, MeasureOp::Matrix);
        let ctx = self.ctx();
        let labels: Vec<String> = concepts
            .iter()
            .map(|&gc| self.soqa.qualified_name(gc))
            .collect();
        let n = concepts.len();
        let threads = threads.clamp(1, n.max(1));
        let prepared = match mode {
            BatchMode::Prepared => Some(self.prepare_for(&concepts, runner.needs())),
            BatchMode::Naive => None,
        };
        let scorer = prepared.as_ref().map(|prep| PairScorer::new(runner, prep));
        let scorer = scorer.as_ref();
        let mut matrix = vec![vec![0.0; n]; n];
        let tiles = sched::triangle_tiles(n, sched::tile_size(n, threads));
        let concepts = &concepts;
        let ctx = &ctx;
        let (results, stats) = sched::run_tiles(&tiles, threads, |_, tile| {
            let mut vals = Vec::with_capacity(tile.upper_len());
            match scorer {
                Some(scorer) => tile.for_each_upper(|i, j| vals.push(scorer.score(i, j))),
                None => tile.for_each_upper(|i, j| {
                    vals.push(runner.similarity(ctx, concepts[i], concepts[j]));
                }),
            }
            vals
        });
        if stats.panicked > 0 {
            return Err(SstError::Internal(
                "similarity-matrix worker thread died".into(),
            ));
        }
        for (idx, vals) in results {
            if let Some(tile) = tiles.get(idx) {
                let mut it = vals.into_iter();
                tile.for_each_upper(|i, j| {
                    if let Some(v) = it.next() {
                        matrix[i][j] = v;
                        matrix[j][i] = v;
                    }
                });
            }
        }
        self.record_sched_stats(&stats);
        self.record_matrix_pairs(measure, n);
        Ok((labels, matrix))
    }

    /// Renders a concept set's pairwise similarity matrix as a
    /// [`crate::heatmap::Heatmap`] (future-work visualization).
    pub fn similarity_heatmap(
        &self,
        set: &ConceptSet,
        measure: usize,
    ) -> Result<crate::heatmap::Heatmap> {
        let info = self.measure_info(measure)?;
        let (labels, matrix) = self.similarity_matrix(set, measure)?;
        Ok(crate::heatmap::Heatmap::new(
            format!("Pairwise similarity ({})", info.display),
            labels,
            matrix,
        ))
    }

    // ---- combined measures (paper §5 future work) ---------------------------

    /// Similarity under a *combined* measure: the component measures'
    /// scores folded by `combiner` (see `sst_simpack::Amalgamation`).
    ///
    /// Component count must equal `combiner.arity()`. Unnormalized
    /// components (Resnik) are rejected — combining bits with [0, 1]
    /// scores is meaningless.
    pub fn combined_similarity(
        &self,
        first_concept: &str,
        first_ontology: &str,
        second_concept: &str,
        second_ontology: &str,
        measures: &[usize],
        combiner: &sst_simpack::Combiner,
    ) -> Result<f64> {
        if measures.len() != combiner.arity() {
            return Err(SstError::InvalidArgument(format!(
                "{} measures but combiner arity {}",
                measures.len(),
                combiner.arity()
            )));
        }
        for &mid in measures {
            if !self.measure_info(mid)?.normalized {
                return Err(SstError::InvalidArgument(format!(
                    "measure `{}` is unnormalized and cannot be combined",
                    self.measure_info(mid)?.name
                )));
            }
        }
        let scores = self.get_similarities(
            first_concept,
            first_ontology,
            second_concept,
            second_ontology,
            measures,
        )?;
        Ok(combiner.combine(&scores))
    }

    /// k most similar concepts under a combined measure. Batched: the set
    /// is prepared once and the component scorers are shared across all
    /// members.
    pub fn most_similar_combined(
        &self,
        concept: &str,
        ontology: &str,
        set: &ConceptSet,
        k: usize,
        measures: &[usize],
        combiner: &sst_simpack::Combiner,
    ) -> Result<Vec<ConceptAndSimilarity>> {
        let members = self.concept_set(set)?;
        if members.is_empty() {
            return Ok(Vec::new());
        }
        if measures.len() != combiner.arity() {
            return Err(SstError::InvalidArgument(format!(
                "{} measures but combiner arity {}",
                measures.len(),
                combiner.arity()
            )));
        }
        for &mid in measures {
            if !self.measure_info(mid)?.normalized {
                return Err(SstError::InvalidArgument(format!(
                    "measure `{}` is unnormalized and cannot be combined",
                    self.measure_info(mid)?.name
                )));
            }
        }
        let query = self.soqa.resolve(ontology, concept)?;
        let mut batch = members.clone();
        batch.push(query);
        let prep = self.prepare_for(&batch, self.needs_union(measures)?);
        let scorers: Vec<PairScorer<'_>> = measures
            .iter()
            .map(|&m| Ok(PairScorer::new(self.runner(m)?, &prep)))
            .collect::<Result<_>>()?;
        let qpos = batch.len() - 1;
        let mut all: Vec<ConceptAndSimilarity> = members
            .iter()
            .enumerate()
            .map(|(i, &gc)| {
                let scores: Vec<f64> = measures
                    .iter()
                    .zip(&scorers)
                    .map(|(&m, scorer)| self.timed_score(m, || scorer.score(qpos, i)))
                    .collect();
                self.to_result(gc, combiner.combine(&scores))
            })
            .collect();
        all.sort_by(rank_descending);
        all.truncate(k);
        Ok(all)
    }

    // ---- (S3) visualization services ---------------------------------------

    /// Bar chart comparing two concepts under several measures (paper
    /// signature S3 — the Java API returned an `Image`; we return the
    /// [`Chart`], which renders to ASCII or Gnuplot artifacts).
    pub fn similarity_plot(
        &self,
        first_concept: &str,
        first_ontology: &str,
        second_concept: &str,
        second_ontology: &str,
        measures: &[usize],
    ) -> Result<Chart> {
        let values = self.get_similarities(
            first_concept,
            first_ontology,
            second_concept,
            second_ontology,
            measures,
        )?;
        let mut chart = Chart::new(
            format!("{first_ontology}:{first_concept} vs {second_ontology}:{second_concept}"),
            "similarity",
        );
        for (&m, value) in measures.iter().zip(values) {
            chart.push(self.measure_info(m)?.display, value);
        }
        Ok(chart)
    }

    /// Bar chart of the `k` most similar concepts (the Figure 5 service).
    pub fn most_similar_plot(
        &self,
        concept: &str,
        ontology: &str,
        set: &ConceptSet,
        k: usize,
        measure: usize,
    ) -> Result<Chart> {
        let ranked = self.most_similar(concept, ontology, set, k, measure)?;
        let info = self.measure_info(measure)?;
        let mut chart = Chart::new(
            format!(
                "The {k} most similar concepts for {ontology}:{concept} ({})",
                info.display
            ),
            if info.normalized {
                "similarity".to_owned()
            } else {
                "bits".to_owned()
            },
        );
        for row in ranked {
            chart.push(format!("{}:{}", row.ontology, row.concept), row.similarity);
        }
        Ok(chart)
    }

    // ---- helper services (paper §3: browser / query shell hooks) ----------

    /// Runs a SOQA-QL query against the registered ontologies, recording
    /// per-query parse/eval timing into the toolkit's metrics registry.
    pub fn query(&self, soqaql: &str) -> Result<ResultTable> {
        Ok(sst_soqa::ql::execute_with_metrics(
            &self.soqa,
            soqaql,
            Some(&self.metrics),
        )?)
    }

    /// Like [`SstToolkit::query`], but evaluation charges its work against
    /// a step/item budget governed by `limits` and fails with a structured
    /// limit error instead of running arbitrarily long. Long-running
    /// services (`sst-server`) evaluate on this entry point so one huge
    /// query cannot hold a worker thread past its deadline.
    pub fn query_with_limits(
        &self,
        soqaql: &str,
        limits: &sst_limits::Limits,
    ) -> Result<ResultTable> {
        Ok(sst_soqa::ql::execute_budgeted(
            &self.soqa,
            soqaql,
            Some(&self.metrics),
            limits,
        )?)
    }

    /// Renders the concept-hierarchy browser pane for one ontology.
    pub fn render_ontology_tree(&self, ontology: &str) -> Result<String> {
        Ok(sst_soqa::browser::render_tree(
            self.soqa.ontology(ontology)?,
        ))
    }

    /// Renders the browser detail pane for one concept.
    pub fn render_concept(&self, concept: &str, ontology: &str) -> Result<String> {
        let gc = self.soqa.resolve(ontology, concept)?;
        Ok(sst_soqa::browser::render_concept(&self.soqa, gc))
    }

    /// Renders the metadata pane for one ontology.
    pub fn render_metadata(&self, ontology: &str) -> Result<String> {
        Ok(sst_soqa::browser::render_metadata(
            self.soqa.ontology(ontology)?,
        ))
    }
}

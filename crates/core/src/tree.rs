//! The single ontology tree (paper §3, Fig. 3).
//!
//! All registered ontologies are incorporated into one tree whose root is
//! the synthetic **Super Thing** concept, with each ontology's root
//! concepts as its direct children. This gives the distance-based measures
//! a contiguous, traversable path between concepts of *different*
//! ontologies without mixing their domains.
//!
//! The alternative the paper rejects — replacing every per-ontology root
//! with one shared `Thing` — is implemented as [`TreeMode::MergedThing`] so
//! Figure 3's negative result (`Student` as similar to `Blackbird` as to
//! `Professor`) can be reproduced experimentally.

use std::collections::HashMap;

use sst_simpack::Taxonomy;
use sst_soqa::{GlobalConcept, Soqa};

/// How the per-ontology hierarchies are joined into one tree.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum TreeMode {
    /// The paper's design: a synthetic `Super Thing` root with each
    /// ontology's root concepts as direct subconcepts.
    #[default]
    SuperThing,
    /// Fig. 3(b): all ontology roots are replaced by one shared `Thing`, so
    /// concepts of different domains become immediate neighbours (used only
    /// to demonstrate why this blurs distance-based measures).
    MergedThing,
}

/// Name of the synthetic root in [`TreeMode::SuperThing`].
pub const SUPER_THING: &str = "Super Thing";

/// The unified tree: a [`Taxonomy`] over every concept of every registered
/// ontology plus the synthetic root, with bidirectional node↔concept maps.
#[derive(Debug)]
pub struct UnifiedTree {
    taxonomy: Taxonomy,
    mode: TreeMode,
    /// node id → concept (None for the synthetic root).
    concepts: Vec<Option<GlobalConcept>>,
    node_of: HashMap<GlobalConcept, u32>,
}

impl UnifiedTree {
    /// Builds the unified tree over all ontologies registered in `soqa`.
    pub fn build(soqa: &Soqa, mode: TreeMode) -> UnifiedTree {
        // Node 0 is the synthetic root (Super Thing, or the merged Thing).
        let mut concepts: Vec<Option<GlobalConcept>> = vec![None];
        let mut node_of: HashMap<GlobalConcept, u32> = HashMap::new();

        for oi in 0..soqa.ontology_count() {
            let ontology = soqa.ontology_at(oi);
            let roots: Vec<_> = ontology.roots().to_vec();
            for cid in ontology.concept_ids() {
                let gc = GlobalConcept {
                    ontology: oi,
                    concept: cid,
                };
                if mode == TreeMode::MergedThing && roots.contains(&cid) {
                    // Replaced by the shared root node.
                    node_of.insert(gc, 0);
                } else {
                    let node = concepts.len() as u32;
                    concepts.push(Some(gc));
                    node_of.insert(gc, node);
                }
            }
        }

        let mut taxonomy = Taxonomy::new(concepts.len(), 0);
        for oi in 0..soqa.ontology_count() {
            let ontology = soqa.ontology_at(oi);
            for cid in ontology.concept_ids() {
                let gc = GlobalConcept {
                    ontology: oi,
                    concept: cid,
                };
                let node = node_of[&gc];
                let supers = ontology.direct_supers(cid);
                if supers.is_empty() {
                    // Ontology root: child of Super Thing (no edge needed in
                    // MergedThing mode — the root *is* node 0 there).
                    if node != 0 {
                        taxonomy.add_edge(node, 0);
                    }
                } else {
                    for &sup in supers {
                        let sup_gc = GlobalConcept {
                            ontology: oi,
                            concept: sup,
                        };
                        taxonomy.add_edge(node, node_of[&sup_gc]);
                    }
                }
            }
        }
        UnifiedTree {
            taxonomy,
            mode,
            concepts,
            node_of,
        }
    }

    /// The tree-join mode this tree was built with.
    pub fn mode(&self) -> TreeMode {
        self.mode
    }

    /// The underlying specialization DAG (rooted at node 0).
    pub fn taxonomy(&self) -> &Taxonomy {
        &self.taxonomy
    }

    /// Number of nodes including the synthetic root.
    pub fn node_count(&self) -> usize {
        self.concepts.len()
    }

    /// The tree node for a concept.
    pub fn node(&self, gc: GlobalConcept) -> u32 {
        self.node_of[&gc]
    }

    /// The concept at a node; `None` for the synthetic root (and, in
    /// merged mode, for the shared `Thing`).
    pub fn concept(&self, node: u32) -> Option<GlobalConcept> {
        self.concepts[node as usize]
    }

    /// All concepts in the subtree rooted at `node` (excluding synthetic
    /// nodes), in BFS order including the root concept itself if real.
    pub fn subtree_concepts(&self, node: u32) -> Vec<GlobalConcept> {
        let mut out = Vec::new();
        let mut seen = vec![false; self.node_count()];
        let mut queue = std::collections::VecDeque::from([node]);
        seen[node as usize] = true;
        while let Some(n) = queue.pop_front() {
            if let Some(gc) = self.concepts[n as usize] {
                out.push(gc);
            }
            for &c in self.taxonomy.children(n) {
                if !seen[c as usize] {
                    seen[c as usize] = true;
                    queue.push_back(c);
                }
            }
        }
        out
    }

    /// Every real concept in the tree.
    pub fn all_concepts(&self) -> Vec<GlobalConcept> {
        self.concepts.iter().flatten().copied().collect()
    }

    /// The path of concept names from the root to `gc` along shortest
    /// super chains — the token sequence the Levenshtein measure's M₂
    /// mapping uses.
    pub fn root_path_names(&self, soqa: &Soqa, gc: GlobalConcept) -> Vec<String> {
        let mut path = Vec::new();
        let mut node = self.node(gc);
        loop {
            match self.concept(node) {
                Some(c) => path.push(soqa.concept(c).name.clone()),
                None => path.push(SUPER_THING.to_owned()),
            }
            if node == 0 {
                break;
            }
            // Follow the parent on a shortest path to the root.
            let parents = self.taxonomy.parents(node);
            match parents.iter().min_by_key(|&&p| self.taxonomy.depth(p)) {
                Some(&p) => node = p,
                None => break,
            }
        }
        path.reverse();
        path
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sst_soqa::{Ontology, OntologyBuilder, OntologyMetadata};

    fn uni() -> Ontology {
        let mut b = OntologyBuilder::new(OntologyMetadata {
            name: "uni".into(),
            ..OntologyMetadata::default()
        });
        let thing = b.concept("Thing");
        let person = b.concept("Person");
        let student = b.concept("Student");
        let professor = b.concept("Professor");
        b.add_subclass(person, thing);
        b.add_subclass(student, person);
        b.add_subclass(professor, person);
        b.build()
    }

    fn birds() -> Ontology {
        let mut b = OntologyBuilder::new(OntologyMetadata {
            name: "birds".into(),
            ..OntologyMetadata::default()
        });
        let thing = b.concept("Thing");
        let bird = b.concept("Bird");
        let blackbird = b.concept("Blackbird");
        b.add_subclass(bird, thing);
        b.add_subclass(blackbird, bird);
        b.build()
    }

    fn setup() -> (Soqa, UnifiedTree, UnifiedTree) {
        let mut soqa = Soqa::new();
        soqa.register(uni()).unwrap();
        soqa.register(birds()).unwrap();
        let super_thing = UnifiedTree::build(&soqa, TreeMode::SuperThing);
        let merged = UnifiedTree::build(&soqa, TreeMode::MergedThing);
        (soqa, super_thing, merged)
    }

    #[test]
    fn super_thing_counts_every_concept() {
        let (soqa, tree, _) = setup();
        assert_eq!(tree.node_count(), 1 + soqa.total_concept_count());
        assert_eq!(tree.all_concepts().len(), soqa.total_concept_count());
    }

    #[test]
    fn merged_mode_collapses_roots() {
        let (soqa, _, merged) = setup();
        // Two Thing roots collapse into node 0.
        assert_eq!(merged.node_count(), 1 + soqa.total_concept_count() - 2);
        let uni_thing = soqa.resolve("uni", "Thing").unwrap();
        let birds_thing = soqa.resolve("birds", "Thing").unwrap();
        assert_eq!(merged.node(uni_thing), 0);
        assert_eq!(merged.node(birds_thing), 0);
    }

    /// Figure 3's argument, quantitatively: under Super Thing the distance
    /// Student–Professor (2) is far smaller than Student–Blackbird (6); in
    /// the merged tree Blackbird moves closer (4) while Professor stays
    /// at 2 — and Student–Bird becomes as close (3 vs … ) as in-domain
    /// concepts, blurring domains.
    #[test]
    fn figure3_distances() {
        let (soqa, st, merged) = setup();
        let student = soqa.resolve("uni", "Student").unwrap();
        let professor = soqa.resolve("uni", "Professor").unwrap();
        let blackbird = soqa.resolve("birds", "Blackbird").unwrap();

        let d = |t: &UnifiedTree, a, b| t.taxonomy().shortest_path(t.node(a), t.node(b)).unwrap();
        assert_eq!(d(&st, student, professor), 2);
        assert_eq!(d(&st, student, blackbird), 6);
        assert_eq!(d(&merged, student, professor), 2);
        assert_eq!(d(&merged, student, blackbird), 4);
        // The gap shrinks from 3× to 2× — with flatter ontologies (paper's
        // Fig. 3 has depth-1 domains) it vanishes entirely.
        let mut flat_soqa = Soqa::new();
        let mut b1 = OntologyBuilder::new(OntologyMetadata {
            name: "o1".into(),
            ..OntologyMetadata::default()
        });
        let t1 = b1.concept("Thing");
        for n in ["Student", "Professor"] {
            let c = b1.concept(n);
            b1.add_subclass(c, t1);
        }
        let mut b2 = OntologyBuilder::new(OntologyMetadata {
            name: "o2".into(),
            ..OntologyMetadata::default()
        });
        let t2 = b2.concept("Thing");
        let bb = b2.concept("Blackbird");
        b2.add_subclass(bb, t2);
        flat_soqa.register(b1.build()).unwrap();
        flat_soqa.register(b2.build()).unwrap();
        let flat_merged = UnifiedTree::build(&flat_soqa, TreeMode::MergedThing);
        let s = flat_soqa.resolve("o1", "Student").unwrap();
        let p = flat_soqa.resolve("o1", "Professor").unwrap();
        let blackb = flat_soqa.resolve("o2", "Blackbird").unwrap();
        // Exactly the paper's complaint: equal distances.
        assert_eq!(
            flat_merged
                .taxonomy()
                .shortest_path(flat_merged.node(s), flat_merged.node(p)),
            flat_merged
                .taxonomy()
                .shortest_path(flat_merged.node(s), flat_merged.node(blackb)),
        );
    }

    #[test]
    fn subtree_concepts_cover_descendants() {
        let (soqa, tree, _) = setup();
        let person = soqa.resolve("uni", "Person").unwrap();
        let names: Vec<String> = tree
            .subtree_concepts(tree.node(person))
            .iter()
            .map(|&gc| soqa.concept(gc).name.clone())
            .collect();
        assert_eq!(names, vec!["Person", "Student", "Professor"]);
        // From the synthetic root: everything.
        assert_eq!(tree.subtree_concepts(0).len(), soqa.total_concept_count());
    }

    #[test]
    fn root_paths_are_qualified_from_super_thing() {
        let (soqa, tree, _) = setup();
        let student = soqa.resolve("uni", "Student").unwrap();
        assert_eq!(
            tree.root_path_names(&soqa, student),
            vec![SUPER_THING, "Thing", "Person", "Student"]
        );
    }

    #[test]
    fn same_name_concepts_map_to_distinct_nodes() {
        let (soqa, tree, _) = setup();
        let a = soqa.resolve("uni", "Thing").unwrap();
        let b = soqa.resolve("birds", "Thing").unwrap();
        assert_ne!(tree.node(a), tree.node(b));
        assert_eq!(tree.concept(tree.node(a)), Some(a));
    }
}

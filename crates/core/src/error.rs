//! Error type for the SOQA-SimPack Toolkit facade.

use std::fmt;

use sst_limits::LimitViolation;
use sst_soqa::SoqaError;

/// Errors raised by SST services.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum SstError {
    /// Propagated from the SOQA layer (unknown ontology/concept, …).
    Soqa(SoqaError),
    /// No measure with this id or name is registered.
    UnknownMeasure(String),
    /// A service was invoked with invalid parameters.
    InvalidArgument(String),
    /// A resource-governed operation (e.g. alignment) blew its step
    /// budget before completing.
    Limit(LimitViolation),
    /// An internal failure the caller cannot repair (e.g. a worker
    /// thread died mid-computation).
    Internal(String),
}

impl fmt::Display for SstError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SstError::Soqa(e) => e.fmt(f),
            SstError::UnknownMeasure(m) => write!(f, "unknown similarity measure `{m}`"),
            SstError::InvalidArgument(m) => write!(f, "invalid argument: {m}"),
            SstError::Limit(v) => write!(f, "resource limit exceeded: {v}"),
            SstError::Internal(m) => write!(f, "internal error: {m}"),
        }
    }
}

impl From<LimitViolation> for SstError {
    fn from(v: LimitViolation) -> Self {
        SstError::Limit(v)
    }
}

impl std::error::Error for SstError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            SstError::Soqa(e) => Some(e),
            _ => None,
        }
    }
}

impl From<SoqaError> for SstError {
    fn from(e: SoqaError) -> Self {
        SstError::Soqa(e)
    }
}

/// Convenience alias.
pub type Result<T> = std::result::Result<T, SstError>;

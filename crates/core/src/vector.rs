//! Dense-vector retrieval: concept embeddings, the [`VectorStore`], and a
//! dependency-free NSW-lite approximate index.
//!
//! The paper's headline service — "rank all concepts by similarity to a
//! query" — is an O(n) scan per request on the measure paths. This module
//! is the sub-linear counterpart: every concept's TF-IDF document vector
//! (the artifact already memoized on `ConceptView`) is projected into a
//! fixed-dimension dense embedding by a *deterministic signed random
//! projection*, the embeddings live in a row-major matrix, and top-k
//! retrieval runs either as an exact brute-force scan (the reference
//! path, bit-identical to the naive facade scan under the
//! `dense_vector` measure) or through a navigable-small-world proximity
//! graph searched with a bounded best-first beam.
//!
//! Determinism is load-bearing everywhere:
//! * the projection is seeded per term id, so the same corpus always
//!   embeds to the same bits — on the naive per-pair path, the prepared
//!   batch path, and the store build alike;
//! * graph insertion order is a seeded shuffle and every neighbor
//!   selection ties to the lower row id, so the graph layout (and
//!   therefore every approximate result) is a pure function of the
//!   corpus;
//! * query-time beam search is seeded at the query's own row, so the
//!   query concept always appears in its own candidate set (score 1.0),
//!   exactly as on the exact scan.
//!
//! Embeddings can be exported to (and reloaded from) a small checksummed
//! binary format governed by [`sst_limits::Limits`], for the offline
//! derive-once/serve-many flow.

use std::collections::HashMap;
use std::fmt;

use sst_index::TermId;
use sst_limits::{Budget, LimitViolation, Limits};
use sst_simpack::{dense_dot, dense_is_zero, dense_normalize};
use sst_soqa::GlobalConcept;

/// Embedding width of the toolkit-built store. 64 dimensions keep a
/// million-concept matrix at half a gigabyte while a signed random
/// projection still preserves TF-IDF cosine order well enough for
/// recall@10 ≥ 0.95 under the default probe width (see `ann_bench`).
pub const EMBED_DIM: usize = 64;

/// Seed of the per-term sign streams of [`embed_tfidf`].
const PROJECTION_SEED: u64 = 0x5353_5456_4543_5631; // "SSTVEC1" as bytes

/// Seed of the deterministic graph-insertion shuffle.
const GRAPH_SEED: u64 = 0x4e53_575f_4c49_5445; // "NSW_LITE"

/// Edges added per inserted node (to its `GRAPH_M` nearest already
/// inserted rows, bidirectionally).
const GRAPH_M: usize = 16;

/// Adjacency cap: lists that overflow under bidirectional inserts are
/// pruned back to their `GRAPH_M_MAX` best edges.
const GRAPH_M_MAX: usize = 32;

/// Beam width of the construction-time neighbor search.
const EF_CONSTRUCTION: usize = 96;

/// Default beam width of [`VectorStore::approx_candidates`]: empirically
/// recall@10 ≥ 0.95 on TF-IDF projections while touching a
/// corpus-size-independent number of rows (see `results/BENCH_ann.json`).
const DEFAULT_EF: usize = 96;

const SPLITMIX_GAMMA: u64 = 0x9e37_79b9_7f4a_7c15;

/// One SplitMix64 step — the same generator `sst-bench` vendors, inlined
/// here because `sst-core` must not depend on the bench crate.
fn splitmix_next(state: &mut u64) -> u64 {
    *state = state.wrapping_add(SPLITMIX_GAMMA);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    z ^ (z >> 31)
}

/// Projects a sparse TF-IDF vector into a unit-norm dense embedding of
/// `dim` components by a signed random projection: every term id seeds
/// its own deterministic ±1 sign stream, and each term adds
/// `weight · sign(term, d)` to component `d`. Equal inputs produce
/// bit-equal outputs, which is what keeps the naive runner, the prepared
/// batch path, and the [`VectorStore`] mutually bit-identical. An empty
/// input (a concept with no indexed description) embeds to the zero
/// vector, which every similarity path scores 0 against.
pub fn embed_tfidf(tfidf: &[(TermId, f64)], dim: usize) -> Vec<f64> {
    let mut acc = vec![0.0; dim];
    for &(term, weight) in tfidf {
        let mut state = u64::from(term.0).wrapping_mul(SPLITMIX_GAMMA) ^ PROJECTION_SEED;
        let mut bits = 0u64;
        let mut left = 0u32;
        for slot in acc.iter_mut() {
            if left == 0 {
                bits = splitmix_next(&mut state);
                left = 64;
            }
            let sign = if bits & 1 == 1 { 1.0 } else { -1.0 };
            bits >>= 1;
            left -= 1;
            *slot += weight * sign;
        }
    }
    dense_normalize(&mut acc);
    acc
}

/// A `(dot product, row)` pair with a strict deterministic order: higher
/// dot first, ties to the lower row id. Drives every heap and every
/// neighbor selection in the graph, so search results are a pure
/// function of the matrix.
#[derive(Debug, Clone, Copy, PartialEq)]
struct Scored {
    dot: f64,
    row: u32,
}

impl Eq for Scored {}

impl Ord for Scored {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        self.dot
            .total_cmp(&other.dot)
            .then_with(|| other.row.cmp(&self.row))
    }
}

impl PartialOrd for Scored {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}

/// NSW-lite proximity graph: one navigable small-world layer, searched
/// with a bounded best-first beam. Nodes are store rows; edges connect
/// each row to its (approximately) nearest neighbors by embedding dot
/// product. Greedy beam search from a seed node converges on the query's
/// neighborhood while touching a corpus-size-independent number of rows,
/// which is what makes `most_similar_approx` sub-linear.
#[derive(Debug)]
struct NswGraph {
    /// Adjacency lists, row-aligned with the store matrix.
    neighbors: Vec<Vec<u32>>,
    /// Fixed entry node (first row of the deterministic insertion order)
    /// used while the graph is under construction.
    entry: u32,
}

impl NswGraph {
    /// Best-first beam search: returns the `ef` best rows reachable from
    /// `entry`, ordered by descending dot (ties to the lower row). The
    /// beam stops once the best unexpanded candidate scores below the
    /// worst of `ef` results — the classic HNSW layer-search loop, here
    /// on the single layer.
    fn search(
        &self,
        rows: &[f64],
        dim: usize,
        query: &[f64],
        ef: usize,
        entry: u32,
    ) -> Vec<Scored> {
        let n = self.neighbors.len();
        if n == 0 || (entry as usize) >= n {
            return Vec::new();
        }
        let ef = ef.max(1);
        let row_at = |i: usize| {
            let start = i * dim;
            let end = start.saturating_add(dim);
            rows.get(start..end).unwrap_or(&[])
        };
        let mut visited = vec![false; n];
        visited[entry as usize] = true;
        let seed = Scored {
            dot: dense_dot(row_at(entry as usize), query),
            row: entry,
        };
        // Frontier: max-heap of unexpanded nodes. Results: min-heap of
        // the best `ef` seen so far (worst on top, ready to evict).
        let mut frontier = std::collections::BinaryHeap::from([seed]);
        let mut results = std::collections::BinaryHeap::from([std::cmp::Reverse(seed)]);
        while let Some(best) = frontier.pop() {
            if results.len() >= ef {
                if let Some(&std::cmp::Reverse(worst)) = results.peek() {
                    if best < worst {
                        break;
                    }
                }
            }
            for &nb in self
                .neighbors
                .get(best.row as usize)
                .map(Vec::as_slice)
                .unwrap_or(&[])
            {
                let i = nb as usize;
                if visited.get(i).copied().unwrap_or(true) {
                    continue;
                }
                visited[i] = true;
                let cand = Scored {
                    dot: dense_dot(row_at(i), query),
                    row: nb,
                };
                let admit = results.len() < ef
                    || results
                        .peek()
                        .is_some_and(|&std::cmp::Reverse(worst)| cand > worst);
                if admit {
                    frontier.push(cand);
                    results.push(std::cmp::Reverse(cand));
                    if results.len() > ef {
                        results.pop();
                    }
                }
            }
        }
        let mut out: Vec<Scored> = results.into_iter().map(|r| r.0).collect();
        out.sort_by(|a, b| b.cmp(a));
        out
    }
}

/// Builds the proximity graph over the store matrix. Rows are inserted
/// in a seeded shuffled order (taxonomy order would chain near-duplicate
/// siblings and starve long-range links); each new row is connected
/// bidirectionally to its `GRAPH_M` best already-inserted rows found by
/// a construction-width beam search, and adjacency lists are pruned back
/// to the `GRAPH_M_MAX` best edges when they overflow. Every choice ties
/// to the lower row id, so the layout is a pure function of the matrix.
fn build_nsw(rows: &[f64], dim: usize, n: usize) -> NswGraph {
    let mut order: Vec<u32> = (0..n as u32).collect();
    let mut state = GRAPH_SEED;
    for i in (1..n).rev() {
        let j = (splitmix_next(&mut state) % (i as u64 + 1)) as usize;
        order.swap(i, j);
    }
    let row_at = |i: usize| {
        let start = i * dim;
        let end = start.saturating_add(dim);
        rows.get(start..end).unwrap_or(&[])
    };
    let mut graph = NswGraph {
        neighbors: vec![Vec::new(); n],
        entry: order.first().copied().unwrap_or(0),
    };
    let prune = |lists: &mut Vec<Vec<u32>>, node: u32| {
        let list = &mut lists[node as usize];
        if list.len() <= GRAPH_M_MAX {
            return;
        }
        let base = row_at(node as usize);
        list.sort_by(|&a, &b| {
            let sa = Scored {
                dot: dense_dot(row_at(a as usize), base),
                row: a,
            };
            let sb = Scored {
                dot: dense_dot(row_at(b as usize), base),
                row: b,
            };
            sb.cmp(&sa)
        });
        list.truncate(GRAPH_M_MAX);
    };
    for &v in order.iter().skip(1) {
        let found = graph.search(rows, dim, row_at(v as usize), EF_CONSTRUCTION, graph.entry);
        for link in found.iter().take(GRAPH_M) {
            graph.neighbors[v as usize].push(link.row);
            graph.neighbors[link.row as usize].push(v);
            prune(&mut graph.neighbors, link.row);
        }
    }
    graph
}

/// The per-concept embedding matrix with exact and approximate top-k
/// retrieval. Rows are unit (or zero) vectors in toolkit concept order;
/// the exact scan is the reference path, bit-identical to ranking with
/// the `dense_vector` measure on the naive facade scan.
pub struct VectorStore {
    dim: usize,
    concepts: Vec<GlobalConcept>,
    /// Qualified concept names, row-aligned (the stable identity used by
    /// the binary format).
    labels: Vec<String>,
    /// Row-major `n × dim` matrix of unit/zero vectors.
    vectors: Vec<f64>,
    /// Per row: the embedding is the zero vector (no description).
    zero: Vec<bool>,
    positions: HashMap<GlobalConcept, usize>,
    graph: Option<NswGraph>,
}

impl fmt::Debug for VectorStore {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("VectorStore")
            .field("len", &self.len())
            .field("dim", &self.dim)
            .field("default_probe", &self.default_probe())
            .finish()
    }
}

impl VectorStore {
    /// Builds a store from `(concept, qualified name, embedding)` rows.
    /// Embeddings must be unit or zero vectors of width `dim` (shorter
    /// rows are zero-padded); [`embed_tfidf`] produces exactly that.
    pub fn from_rows(rows: Vec<(GlobalConcept, String, Vec<f64>)>, dim: usize) -> VectorStore {
        let n = rows.len();
        let mut concepts = Vec::with_capacity(n);
        let mut labels = Vec::with_capacity(n);
        let mut vectors = Vec::with_capacity(n * dim);
        let mut zero = Vec::with_capacity(n);
        let mut positions = HashMap::with_capacity(n);
        for (i, (gc, label, mut v)) in rows.into_iter().enumerate() {
            v.resize(dim, 0.0);
            zero.push(dense_is_zero(&v));
            vectors.extend_from_slice(&v);
            positions.entry(gc).or_insert(i);
            concepts.push(gc);
            labels.push(label);
        }
        let graph = if n > 0 {
            Some(build_nsw(&vectors, dim, n))
        } else {
            None
        };
        VectorStore {
            dim,
            concepts,
            labels,
            vectors,
            zero,
            positions,
            graph,
        }
    }

    /// Number of stored concepts.
    pub fn len(&self) -> usize {
        self.concepts.len()
    }

    pub fn is_empty(&self) -> bool {
        self.concepts.is_empty()
    }

    /// Embedding width.
    pub fn dim(&self) -> usize {
        self.dim
    }

    /// Default probe (beam) width of [`VectorStore::approx_candidates`].
    pub fn default_probe(&self) -> usize {
        if self.is_empty() {
            0
        } else {
            DEFAULT_EF
        }
    }

    /// Row of `gc`, if stored.
    pub fn position(&self, gc: GlobalConcept) -> Option<usize> {
        self.positions.get(&gc).copied()
    }

    /// Concept at `row`.
    pub fn concept(&self, row: usize) -> Option<GlobalConcept> {
        self.concepts.get(row).copied()
    }

    /// Qualified name at `row`.
    pub fn label(&self, row: usize) -> Option<&str> {
        self.labels.get(row).map(String::as_str)
    }

    /// The embedding at `row` (empty slice when out of range).
    pub fn row(&self, row: usize) -> &[f64] {
        let start = row * self.dim;
        let end = start.saturating_add(self.dim);
        self.vectors.get(start..end).unwrap_or(&[])
    }

    /// Shifted-unit-cosine similarity of two rows, with the identity
    /// axiom: the same row scores 1.0 even when its embedding is zero —
    /// matching the `dense_vector` runner's concept-identity guard, so
    /// store scores and measure scores agree bit-for-bit.
    pub fn similarity(&self, a: usize, b: usize) -> f64 {
        if a == b {
            return 1.0;
        }
        if self.zero.get(a).copied().unwrap_or(true) || self.zero.get(b).copied().unwrap_or(true) {
            return 0.0;
        }
        (0.5 * (1.0 + dense_dot(self.row(a), self.row(b)))).clamp(0.0, 1.0)
    }

    /// Exact reference path: the query row scored against every row, in
    /// row order. Sorting `(row, score)` by the facade's shared rank
    /// comparator and truncating at `k` is bit-identical to the naive
    /// facade scan under the `dense_vector` measure.
    pub fn scores_exact(&self, query: usize) -> Vec<(usize, f64)> {
        (0..self.len())
            .map(|row| (row, self.similarity(query, row)))
            .collect()
    }

    /// Approximate path: the `probe` best rows found by a beam search of
    /// the proximity graph, seeded at the query's own row — so the beam
    /// starts at the optimum and the query is always among the
    /// candidates. Per-query cost scales with `probe`, not corpus size.
    /// Pass [`VectorStore::default_probe`] for the tuned default; larger
    /// values trade latency for recall, and `probe ≥ len` degenerates to
    /// the exact scan (bit-identical scores).
    pub fn approx_candidates(&self, query: usize, probe: usize) -> Vec<(usize, f64)> {
        if query >= self.len() {
            return Vec::new();
        }
        if probe >= self.len() {
            return self.scores_exact(query);
        }
        let Some(graph) = self.graph.as_ref() else {
            return Vec::new();
        };
        let found = graph.search(
            &self.vectors,
            self.dim,
            self.row(query),
            probe,
            query as u32,
        );
        let mut out: Vec<(usize, f64)> = found
            .into_iter()
            .map(|s| {
                let row = s.row as usize;
                (row, self.similarity(query, row))
            })
            .collect();
        if !out.iter().any(|&(row, _)| row == query) {
            out.push((query, 1.0));
        }
        out
    }

    // ---- checksummed binary format ------------------------------------

    /// Serializes the embedding matrix (not the proximity graph — that is
    /// deterministically rebuilt on load): a magic/version header, the
    /// dimension and row count, label + vector per row, and a trailing
    /// FNV-1a checksum over everything before it.
    pub fn to_bytes(&self) -> Vec<u8> {
        let mut out = Vec::new();
        out.extend_from_slice(FORMAT_MAGIC);
        out.extend_from_slice(&(self.dim as u32).to_le_bytes());
        out.extend_from_slice(&(self.len() as u64).to_le_bytes());
        for (label, row) in self.labels.iter().zip(self.vectors.chunks(self.dim.max(1))) {
            out.extend_from_slice(&(label.len() as u32).to_le_bytes());
            out.extend_from_slice(label.as_bytes());
            for v in row {
                out.extend_from_slice(&v.to_le_bytes());
            }
        }
        let checksum = fnv1a(&out);
        out.extend_from_slice(&checksum.to_le_bytes());
        out
    }
}

/// Magic + version prefix of the embedding file format.
pub const FORMAT_MAGIC: &[u8; 8] = b"SSTVEC1\n";

/// Upper bound on the embedding width the loader accepts; far above any
/// width the toolkit produces, low enough that `count · dim · 8` cannot
/// overflow the input-size check.
const MAX_FORMAT_DIM: usize = 4096;

pub(crate) fn fnv1a(bytes: &[u8]) -> u64 {
    let mut hash = 0xcbf2_9ce4_8422_2325u64;
    for &b in bytes {
        hash ^= u64::from(b);
        hash = hash.wrapping_mul(0x0000_0100_0000_01b3);
    }
    hash
}

/// A parse failure of the embedding binary format.
#[derive(Debug, Clone, PartialEq)]
pub enum VectorFormatError {
    /// The input ended before the named field.
    Truncated(&'static str),
    /// The magic/version prefix does not match [`FORMAT_MAGIC`].
    BadMagic,
    /// Dimension outside `1..=4096`.
    BadDimension(usize),
    /// A row label is not valid UTF-8.
    BadLabel(usize),
    /// Trailing bytes after the checksum.
    TrailingBytes(usize),
    /// The stored checksum does not match the content.
    Checksum { expected: u64, actual: u64 },
    /// A resource limit was exceeded while loading.
    Limit(LimitViolation),
}

impl fmt::Display for VectorFormatError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            VectorFormatError::Truncated(what) => {
                write!(f, "vector file truncated at {what}")
            }
            VectorFormatError::BadMagic => write!(f, "not an SSTVEC1 vector file"),
            VectorFormatError::BadDimension(d) => {
                write!(f, "vector dimension {d} outside 1..={MAX_FORMAT_DIM}")
            }
            VectorFormatError::BadLabel(row) => {
                write!(f, "row {row} label is not valid UTF-8")
            }
            VectorFormatError::TrailingBytes(n) => {
                write!(f, "{n} trailing byte(s) after checksum")
            }
            VectorFormatError::Checksum { expected, actual } => write!(
                f,
                "checksum mismatch: stored {expected:#018x}, computed {actual:#018x}"
            ),
            VectorFormatError::Limit(v) => write!(f, "vector file over limit: {v}"),
        }
    }
}

impl std::error::Error for VectorFormatError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            VectorFormatError::Limit(v) => Some(v),
            _ => None,
        }
    }
}

impl From<LimitViolation> for VectorFormatError {
    fn from(v: LimitViolation) -> Self {
        VectorFormatError::Limit(v)
    }
}

/// A decoded embedding file: rows of `(qualified name, vector)`. The
/// facade re-resolves labels against its registered concepts when
/// importing into a [`VectorStore`].
#[derive(Debug, Clone, PartialEq)]
pub struct DenseVectorFile {
    pub dim: usize,
    pub rows: Vec<(String, Vec<f64>)>,
}

/// Byte-slice cursor for the loader; every read is bounds-checked.
struct Cursor<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> Cursor<'a> {
    fn take(&mut self, n: usize, what: &'static str) -> Result<&'a [u8], VectorFormatError> {
        let end = self.pos.saturating_add(n);
        let slice = self
            .bytes
            .get(self.pos..end)
            .ok_or(VectorFormatError::Truncated(what))?;
        self.pos = end;
        Ok(slice)
    }

    fn u32(&mut self, what: &'static str) -> Result<u32, VectorFormatError> {
        let b = self.take(4, what)?;
        let mut le = [0u8; 4];
        le.copy_from_slice(b);
        Ok(u32::from_le_bytes(le))
    }

    fn u64(&mut self, what: &'static str) -> Result<u64, VectorFormatError> {
        let b = self.take(8, what)?;
        let mut le = [0u8; 8];
        le.copy_from_slice(b);
        Ok(u64::from_le_bytes(le))
    }

    fn f64(&mut self, what: &'static str) -> Result<f64, VectorFormatError> {
        Ok(f64::from_bits(self.u64(what)?))
    }
}

impl DenseVectorFile {
    /// Decodes and validates an embedding file under `limits`: the whole
    /// input is bounded by `max_input_bytes`, each label by
    /// `max_literal_bytes`, and the row count by `max_items`. The
    /// checksum is verified before any row is returned.
    pub fn from_bytes(bytes: &[u8], limits: &Limits) -> Result<DenseVectorFile, VectorFormatError> {
        let mut budget = Budget::new(limits);
        budget.check_input(bytes.len(), "vector file")?;

        // Verify the checksum first: a flipped byte anywhere must be a
        // checksum error, not an arbitrary downstream parse error.
        let body_len = bytes
            .len()
            .checked_sub(8)
            .ok_or(VectorFormatError::Truncated("checksum"))?;
        let body = bytes.get(..body_len).unwrap_or(&[]);
        let stored = bytes.get(body_len..).unwrap_or(&[]);
        let mut le = [0u8; 8];
        if stored.len() == 8 {
            le.copy_from_slice(stored);
        }
        let expected = u64::from_le_bytes(le);
        let actual = fnv1a(body);
        if expected != actual {
            return Err(VectorFormatError::Checksum { expected, actual });
        }

        let mut cur = Cursor {
            bytes: body,
            pos: 0,
        };
        if cur.take(FORMAT_MAGIC.len(), "magic")? != FORMAT_MAGIC {
            return Err(VectorFormatError::BadMagic);
        }
        let dim = cur.u32("dimension")? as usize;
        if dim == 0 || dim > MAX_FORMAT_DIM {
            return Err(VectorFormatError::BadDimension(dim));
        }
        let count = cur.u64("row count")?;
        let mut rows = Vec::new();
        for i in 0..count {
            budget.item("vector row")?;
            let label_len = cur.u32("label length")? as usize;
            budget.check_literal(label_len, "vector label")?;
            let label = std::str::from_utf8(cur.take(label_len, "label")?)
                .map_err(|_| VectorFormatError::BadLabel(i as usize))?
                .to_owned();
            let mut v = Vec::with_capacity(dim);
            for _ in 0..dim {
                v.push(cur.f64("vector component")?);
            }
            rows.push((label, v));
        }
        if cur.pos != body.len() {
            return Err(VectorFormatError::TrailingBytes(body.len() - cur.pos));
        }
        Ok(DenseVectorFile { dim, rows })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn gc(i: u32) -> GlobalConcept {
        GlobalConcept {
            ontology: 0,
            concept: sst_soqa::ConceptId(i),
        }
    }

    fn unit(components: &[f64]) -> Vec<f64> {
        let mut v = components.to_vec();
        dense_normalize(&mut v);
        v
    }

    fn tiny_store() -> VectorStore {
        let rows = vec![
            (gc(0), "o:a".to_owned(), unit(&[1.0, 0.0, 0.0, 0.0])),
            (gc(1), "o:b".to_owned(), unit(&[0.9, 0.1, 0.0, 0.0])),
            (gc(2), "o:c".to_owned(), unit(&[0.0, 1.0, 0.0, 0.0])),
            (gc(3), "o:d".to_owned(), vec![0.0; 4]),
        ];
        VectorStore::from_rows(rows, 4)
    }

    #[test]
    fn embed_is_deterministic_and_unit_norm() {
        let tfidf = vec![(TermId(3), 0.5), (TermId(17), 1.25), (TermId(90000), 0.75)];
        let a = embed_tfidf(&tfidf, EMBED_DIM);
        let b = embed_tfidf(&tfidf, EMBED_DIM);
        assert_eq!(a, b);
        let norm: f64 = a.iter().map(|v| v * v).sum::<f64>().sqrt();
        assert!((norm - 1.0).abs() < 1e-12);
        assert!(dense_is_zero(&embed_tfidf(&[], EMBED_DIM)));
    }

    #[test]
    fn embed_preserves_self_similarity_structure() {
        // A vector far from another in TF-IDF space should project far
        // in embedding space more often than not; at minimum, identical
        // inputs must coincide and disjoint supports must differ.
        let x = embed_tfidf(&[(TermId(1), 1.0), (TermId(2), 1.0)], EMBED_DIM);
        let y = embed_tfidf(&[(TermId(1), 1.0), (TermId(2), 1.0)], EMBED_DIM);
        let z = embed_tfidf(&[(TermId(7), 1.0), (TermId(8), 1.0)], EMBED_DIM);
        assert_eq!(x, y);
        assert_ne!(x, z);
    }

    #[test]
    fn store_identity_and_zero_axioms() {
        let s = tiny_store();
        assert_eq!(s.similarity(0, 0), 1.0);
        assert_eq!(s.similarity(3, 3), 1.0); // identity even for zero rows
        assert_eq!(s.similarity(3, 0), 0.0);
        assert_eq!(s.similarity(0, 3), 0.0);
        let close = s.similarity(0, 1);
        let far = s.similarity(0, 2);
        assert!(close > far);
        assert!((0.0..=1.0).contains(&close) && (0.0..=1.0).contains(&far));
    }

    #[test]
    fn exact_scores_cover_every_row_in_order() {
        let s = tiny_store();
        let scores = s.scores_exact(1);
        assert_eq!(scores.len(), 4);
        assert_eq!(scores[1], (1, 1.0));
        for (i, &(row, _)) in scores.iter().enumerate() {
            assert_eq!(row, i);
        }
    }

    #[test]
    fn approx_candidates_always_include_the_query() {
        let s = tiny_store();
        for q in 0..s.len() {
            let cands = s.approx_candidates(q, 1);
            assert!(
                cands.iter().any(|&(row, score)| row == q && score == 1.0),
                "query {q} missing from its own candidates"
            );
        }
    }

    #[test]
    fn full_probe_matches_exact_scores() {
        let s = tiny_store();
        let mut exact = s.scores_exact(0);
        let mut approx = s.approx_candidates(0, s.len());
        exact.sort_by_key(|a| a.0);
        approx.sort_by_key(|a| a.0);
        // A corpus-wide probe must see every row exactly once, with
        // bit-identical scores.
        assert_eq!(exact.len(), approx.len());
        for (e, a) in exact.iter().zip(&approx) {
            assert_eq!(e.0, a.0);
            assert_eq!(e.1.to_bits(), a.1.to_bits());
        }
    }

    #[test]
    fn format_round_trips() {
        let s = tiny_store();
        let bytes = s.to_bytes();
        let file = DenseVectorFile::from_bytes(&bytes, &Limits::default()).unwrap();
        assert_eq!(file.dim, 4);
        assert_eq!(file.rows.len(), 4);
        assert_eq!(file.rows[0].0, "o:a");
        for (i, (_, v)) in file.rows.iter().enumerate() {
            assert_eq!(v, s.row(i));
        }
    }

    #[test]
    fn format_rejects_corruption() {
        let s = tiny_store();
        let good = s.to_bytes();

        // Flip one payload byte: checksum error.
        let mut flipped = good.clone();
        flipped[10] ^= 0xff;
        assert!(matches!(
            DenseVectorFile::from_bytes(&flipped, &Limits::default()),
            Err(VectorFormatError::Checksum { .. })
        ));

        // Truncate: error, not a panic.
        assert!(DenseVectorFile::from_bytes(&good[..good.len() - 3], &Limits::default()).is_err());
        assert!(DenseVectorFile::from_bytes(&[], &Limits::default()).is_err());

        // Wrong magic with a recomputed checksum: BadMagic.
        let mut wrong = good[..good.len() - 8].to_vec();
        wrong[0] = b'X';
        let sum = fnv1a(&wrong);
        wrong.extend_from_slice(&sum.to_le_bytes());
        assert!(matches!(
            DenseVectorFile::from_bytes(&wrong, &Limits::default()),
            Err(VectorFormatError::BadMagic)
        ));
    }

    #[test]
    fn format_is_governed_by_limits() {
        let s = tiny_store();
        let bytes = s.to_bytes();
        let tight = Limits::default().with_max_input_bytes(8);
        assert!(matches!(
            DenseVectorFile::from_bytes(&bytes, &tight),
            Err(VectorFormatError::Limit(_))
        ));
        let few_items = Limits::default().with_max_items(2);
        assert!(matches!(
            DenseVectorFile::from_bytes(&bytes, &few_items),
            Err(VectorFormatError::Limit(_))
        ));
    }

    #[test]
    fn graph_layout_is_deterministic() {
        let rows: Vec<(GlobalConcept, String, Vec<f64>)> = (0..64)
            .map(|i| {
                let tfidf = vec![(TermId(i), 1.0), (TermId(i / 4), 0.5)];
                (gc(i), format!("o:c{i}"), embed_tfidf(&tfidf, 8))
            })
            .collect();
        let a = VectorStore::from_rows(rows.clone(), 8);
        let b = VectorStore::from_rows(rows, 8);
        assert_eq!(a.default_probe(), b.default_probe());
        for q in 0..a.len() {
            assert_eq!(a.approx_candidates(q, 12), b.approx_candidates(q, 12));
        }
    }

    #[test]
    fn beam_search_finds_true_neighbors_on_a_structured_corpus() {
        // 20 clusters of 16 near-duplicate rows each: a beam of 32 must
        // recover the query's own cluster as its top candidates.
        let rows: Vec<(GlobalConcept, String, Vec<f64>)> = (0..320u32)
            .map(|i| {
                let cluster = i / 16;
                let tfidf = vec![(TermId(cluster), 4.0), (TermId(1000 + i), 0.5)];
                (gc(i), format!("o:c{i}"), embed_tfidf(&tfidf, 16))
            })
            .collect();
        let s = VectorStore::from_rows(rows, 16);
        for q in [0usize, 17, 155, 319] {
            let cands = s.approx_candidates(q, 32);
            let cluster = (q as u32) / 16;
            let mut top: Vec<(usize, f64)> = cands.clone();
            top.sort_by(|a, b| b.1.total_cmp(&a.1).then_with(|| a.0.cmp(&b.0)));
            let in_cluster = top
                .iter()
                .take(16)
                .filter(|&&(row, _)| (row as u32) / 16 == cluster)
                .count();
            assert!(
                in_cluster >= 14,
                "query {q}: only {in_cluster}/16 of the top candidates are in its cluster"
            );
        }
    }
}

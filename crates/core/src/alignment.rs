//! Ontology alignment on top of the similarity services — the application
//! area the paper's introduction leads with ("such similarity information
//! can be useful for … ontology alignment and integration").
//!
//! [`align`] proposes a one-to-one correspondence between two registered
//! ontologies. Candidate pairs are generated per source concept through
//! *blocking* (shared name tokens, shared features, and the dense-vector
//! NSW graph as a recall channel) so the full n×m similarity matrix is
//! never materialized; preference lists are scored over one
//! [`PreparedContext`](crate::runner::PreparedContext) batch fanned out on
//! the work-stealing tile scheduler; and the final matching is either
//! greedy first-come best-first or Gale–Shapley deferred acceptance
//! ([`MatchMode::Stable`], the default), whose output contains no blocking
//! pair: no source/target pair that both strictly prefer each other over
//! their assigned partners.

use std::collections::HashMap;

use sst_limits::{Budget, Limits};
use sst_simpack::{Amalgamation, Combiner};
use sst_soqa::GlobalConcept;

use crate::error::{Result, SstError};
use crate::facade::{PairScorer, SstToolkit};

/// One proposed correspondence. Concepts are identified by their
/// [`GlobalConcept`] ids — display names are carried for presentation only
/// and may collide between distinct concepts.
#[derive(Debug, Clone, PartialEq)]
pub struct Correspondence {
    /// Identity of the matched source concept.
    pub source: GlobalConcept,
    /// Identity of the matched target concept.
    pub target: GlobalConcept,
    /// Display name of the source concept (not necessarily unique).
    pub source_concept: String,
    /// Display name of the target concept (not necessarily unique).
    pub target_concept: String,
    pub similarity: f64,
}

/// How admitted candidate pairs are resolved into a one-to-one matching.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum MatchMode {
    /// Each source concept, in id order, claims its best still-free
    /// candidate target. Order-dependent: an early source can lock a
    /// target away from a later source that scores it higher, so the
    /// result may contain blocking pairs.
    Greedy,
    /// Proposer-optimal Gale–Shapley deferred acceptance: sources propose
    /// down their preference lists, targets hold the best proposal seen so
    /// far and trade up. The result contains no blocking pair.
    #[default]
    Stable,
}

impl MatchMode {
    /// Stable lowercase name (used in metrics and the HTTP API).
    pub fn name(self) -> &'static str {
        match self {
            MatchMode::Greedy => "greedy",
            MatchMode::Stable => "stable",
        }
    }
}

/// How candidate target concepts are generated per source concept.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CandidateGen {
    /// Every source × target pair is a candidate (small ontologies,
    /// reference runs). Materializes the full rectangle.
    Exhaustive,
    /// Blocked generation: per source concept, the union of up to `width`
    /// targets from each of three recall channels — shared lowercase name
    /// tokens, shared features (attributes/methods/relationships/types),
    /// and the dense-vector NSW proximity graph.
    Blocked { width: usize },
}

/// Default per-channel blocking width.
pub const DEFAULT_BLOCK_WIDTH: usize = 16;

impl Default for CandidateGen {
    fn default() -> Self {
        CandidateGen::Blocked {
            width: DEFAULT_BLOCK_WIDTH,
        }
    }
}

/// Parameters of an alignment run.
#[derive(Debug, Clone)]
pub struct AlignmentConfig {
    /// Measure ids whose scores are combined per pair.
    pub measures: Vec<usize>,
    /// How the per-measure scores are amalgamated.
    pub strategy: Amalgamation,
    /// Pairs below this combined similarity are not proposed.
    pub threshold: f64,
    /// Matching discipline (stable by default).
    pub mode: MatchMode,
    /// Candidate generation policy (blocked by default).
    pub candidates: CandidateGen,
}

impl Default for AlignmentConfig {
    fn default() -> Self {
        AlignmentConfig {
            measures: vec![
                crate::facade::measure_ids::CONCEPTUAL_SIMILARITY_MEASURE,
                crate::facade::measure_ids::TFIDF_MEASURE,
            ],
            strategy: Amalgamation::WeightedAverage,
            threshold: 0.25,
            mode: MatchMode::default(),
            candidates: CandidateGen::default(),
        }
    }
}

/// Size and effort counters of one alignment run.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct AlignStats {
    /// Source / target ontology concept counts.
    pub sources: usize,
    pub targets: usize,
    /// Distinct candidate pairs generated (and scored). The blocked
    /// generator keeps this well under `sources * targets`.
    pub candidate_pairs: usize,
    /// Source concepts whose candidate set came back empty.
    pub sources_without_candidates: usize,
    /// Candidate pairs whose combined score passed the threshold.
    pub admitted_pairs: usize,
    /// Pair inspections during matching: Gale–Shapley proposals in stable
    /// mode, preference-list probes in greedy mode.
    pub proposals: u64,
    /// Correspondences in the result.
    pub matches: usize,
}

/// An alignment result: the correspondences (sorted by descending
/// similarity) plus run counters.
#[derive(Debug, Clone, PartialEq)]
pub struct Alignment {
    pub correspondences: Vec<Correspondence>,
    pub stats: AlignStats,
}

/// [`align_with_limits`] without resource governance (unbounded budget).
/// Returns only the correspondences, for callers that don't need counters.
pub fn align(
    sst: &SstToolkit,
    source: &str,
    target: &str,
    config: &AlignmentConfig,
) -> Result<Vec<Correspondence>> {
    align_with_limits(sst, source, target, config, &Limits::unbounded()).map(|a| a.correspondences)
}

/// Aligns `source` to `target`: proposes at most one target concept per
/// source concept (and vice versa), dropping pairs under the threshold.
/// Scoring work is charged against a step budget derived from `limits`
/// (one step per measure evaluation), so a service can bound the cost of
/// an alignment request the same way parsers bound ingestion.
pub fn align_with_limits(
    sst: &SstToolkit,
    source: &str,
    target: &str,
    config: &AlignmentConfig,
    limits: &Limits,
) -> Result<Alignment> {
    if config.measures.is_empty() {
        return Err(SstError::InvalidArgument(
            "alignment needs at least one measure".into(),
        ));
    }
    if !(0.0..=1.0).contains(&config.threshold) {
        return Err(SstError::InvalidArgument(format!(
            "threshold must be in [0, 1], got {}",
            config.threshold
        )));
    }
    if let CandidateGen::Blocked { width: 0 } = config.candidates {
        return Err(SstError::InvalidArgument(
            "blocking width must be at least 1".into(),
        ));
    }
    sst.metrics().inc("core.align.calls");
    let _span = sst.metrics().span("core.align.latency");
    let combiner = Combiner::uniform(config.strategy, config.measures.len());
    let mut budget = Budget::new(limits);

    // Concept identities are threaded end to end: ids are taken straight
    // from the ontologies and never round-tripped through display names
    // (names may collide between distinct concepts; `resolve` by name
    // would silently alias such concepts onto one id).
    let src_idx = sst.soqa().ontology_index(source)?;
    let tgt_idx = sst.soqa().ontology_index(target)?;
    let sources: Vec<GlobalConcept> = sst
        .soqa()
        .ontology_at(src_idx)
        .concept_ids()
        .map(|id| GlobalConcept {
            ontology: src_idx,
            concept: id,
        })
        .collect();
    let targets: Vec<GlobalConcept> = sst
        .soqa()
        .ontology_at(tgt_idx)
        .concept_ids()
        .map(|id| GlobalConcept {
            ontology: tgt_idx,
            concept: id,
        })
        .collect();

    let mut stats = AlignStats {
        sources: sources.len(),
        targets: targets.len(),
        ..AlignStats::default()
    };
    if sources.is_empty() || targets.is_empty() {
        return Ok(Alignment {
            correspondences: Vec::new(),
            stats,
        });
    }

    // ---- Candidate generation -------------------------------------------
    let candidates: Vec<Vec<usize>> = match config.candidates {
        CandidateGen::Exhaustive => sources
            .iter()
            .map(|_| (0..targets.len()).collect())
            .collect(),
        CandidateGen::Blocked { width } => blocked_candidates(sst, &sources, &targets, width),
    };
    stats.sources_without_candidates = candidates.iter().filter(|c| c.is_empty()).count();
    let pair_list: Vec<(usize, usize)> = candidates
        .iter()
        .enumerate()
        .flat_map(|(si, c)| c.iter().map(move |&tj| (si, tj)))
        .collect();
    stats.candidate_pairs = pair_list.len();
    sst.metrics()
        .add("core.align.candidates", pair_list.len() as u64);

    // Charge the scoring work before fanning out: one step per measure
    // evaluation plus one per prepared concept. Deterministic, so a budget
    // rejects oversized requests identically on every run.
    budget.charge_steps(
        (sources.len().saturating_add(targets.len())) as u64,
        "align.prepare",
    )?;
    budget.charge_steps(
        (pair_list.len() as u64).saturating_mul(config.measures.len() as u64),
        "align.score",
    )?;

    // ---- Preference-list scoring over one prepared batch ----------------
    // One batch context over source ∪ target concepts; only candidate
    // pairs are scored, fanned out over the work-stealing scheduler in
    // chunks of the flat candidate list. Per-chunk results are assembled
    // by chunk index, so scores are deterministic for any worker count.
    let mut batch: Vec<GlobalConcept> = Vec::with_capacity(sources.len() + targets.len());
    batch.extend_from_slice(&sources);
    batch.extend_from_slice(&targets);
    let prep = sst.prepare_for(&batch, sst.needs_union(&config.measures)?);
    let scorers: Vec<PairScorer<'_>> = config
        .measures
        .iter()
        .map(|&m| Ok(PairScorer::new(sst.runner(m)?, &prep)))
        .collect::<Result<_>>()?;

    let source_count = sources.len();
    let tiles = crate::sched::rect_tiles(1, pair_list.len().max(1), 64);
    let workers = crate::sched::default_workers().min(tiles.len());
    let measures = &config.measures;
    let scorers = &scorers;
    let pairs = &pair_list;
    let (results, sched_stats) = crate::sched::run_tiles(&tiles, workers, |_, tile| {
        let mut vals = Vec::with_capacity(tile.len());
        let mut scores = vec![0.0; measures.len()];
        tile.for_each(|_, k| {
            if let Some(&(si, tj)) = pairs.get(k) {
                for ((&m, scorer), slot) in measures.iter().zip(scorers).zip(&mut scores) {
                    *slot = sst.timed_score(m, || scorer.score(si, source_count + tj));
                }
                vals.push(combiner.combine(&scores));
            }
        });
        vals
    });
    if sched_stats.panicked > 0 {
        return Err(SstError::Internal("alignment worker thread died".into()));
    }
    sst.record_sched_stats(&sched_stats);
    let mut results = results;
    results.sort_unstable_by_key(|&(idx, _)| idx);
    let mut admitted: Vec<(usize, usize, f64)> = Vec::new();
    let mut flat = pair_list.iter();
    for (_, vals) in results {
        for combined in vals {
            if let Some(&(si, tj)) = flat.next() {
                // `NaN >= t` is false, so NaN combined scores (now
                // propagated uniformly by every amalgamation strategy)
                // are dropped here.
                if combined >= config.threshold {
                    admitted.push((si, tj, combined));
                }
            }
        }
    }
    stats.admitted_pairs = admitted.len();

    // Per-source preference lists, best first; `total_cmp` plus the target
    // index keeps the order a strict total order, so matching is
    // deterministic for any worker count.
    let mut prefs: Vec<Vec<(usize, f64)>> = vec![Vec::new(); sources.len()];
    for &(si, tj, s) in &admitted {
        if let Some(list) = prefs.get_mut(si) {
            list.push((tj, s));
        }
    }
    for list in &mut prefs {
        list.sort_unstable_by(|a, b| b.1.total_cmp(&a.1).then_with(|| a.0.cmp(&b.0)));
    }

    // ---- Matching --------------------------------------------------------
    let mut proposals: u64 = 0;
    let matched: Vec<(usize, usize, f64)> = match config.mode {
        MatchMode::Greedy => {
            let mut target_taken = vec![false; targets.len()];
            let mut out = Vec::new();
            for (si, list) in prefs.iter().enumerate() {
                for &(tj, s) in list {
                    proposals = proposals.saturating_add(1);
                    if let Some(taken) = target_taken.get_mut(tj) {
                        if !*taken {
                            *taken = true;
                            out.push((si, tj, s));
                            break;
                        }
                    }
                }
            }
            out
        }
        MatchMode::Stable => {
            // Deferred acceptance. `free` is a stack of unengaged sources
            // with proposals left; `next` is each source's cursor into its
            // preference list. Targets hold the best proposal seen so far
            // (ties to the lower source index), trading up when a better
            // one arrives — the displaced source goes back on the stack.
            let mut next = vec![0usize; sources.len()];
            let mut engaged_t: Vec<Option<(usize, f64)>> = vec![None; targets.len()];
            let mut free: Vec<usize> = (0..sources.len()).rev().collect();
            while let Some(si) = free.pop() {
                let cursor = next.get(si).copied().unwrap_or(usize::MAX);
                let proposal = prefs.get(si).and_then(|list| list.get(cursor)).copied();
                let Some((tj, s)) = proposal else {
                    continue; // preference list exhausted: stays unmatched
                };
                if let Some(c) = next.get_mut(si) {
                    *c = cursor.saturating_add(1);
                }
                proposals = proposals.saturating_add(1);
                let Some(slot) = engaged_t.get_mut(tj) else {
                    continue;
                };
                match *slot {
                    None => *slot = Some((si, s)),
                    Some((held_si, held_s)) => {
                        let take = match s.total_cmp(&held_s) {
                            std::cmp::Ordering::Greater => true,
                            std::cmp::Ordering::Less => false,
                            std::cmp::Ordering::Equal => si < held_si,
                        };
                        if take {
                            *slot = Some((si, s));
                            free.push(held_si);
                        } else {
                            free.push(si);
                        }
                    }
                }
            }
            engaged_t
                .iter()
                .enumerate()
                .filter_map(|(tj, held)| held.map(|(si, s)| (si, tj, s)))
                .collect()
        }
    };
    stats.proposals = proposals;
    sst.metrics().add("core.align.proposals", proposals);

    // Present sorted by descending similarity (deterministic tiebreak on
    // the index pair), like every other ranking service.
    let mut matched = matched;
    matched.sort_unstable_by(|a, b| {
        b.2.total_cmp(&a.2)
            .then_with(|| (a.0, a.1).cmp(&(b.0, b.1)))
    });
    let src_onto = sst.soqa().ontology_at(src_idx);
    let tgt_onto = sst.soqa().ontology_at(tgt_idx);
    let mut out = Vec::with_capacity(matched.len());
    for (si, tj, sim) in matched {
        let (Some(&sgc), Some(&tgc)) = (sources.get(si), targets.get(tj)) else {
            continue;
        };
        out.push(Correspondence {
            source: sgc,
            target: tgc,
            source_concept: src_onto.concept(sgc.concept).name.clone(),
            target_concept: tgt_onto.concept(tgc.concept).name.clone(),
            similarity: sim,
        });
    }
    stats.matches = out.len();
    sst.metrics().add("core.align.matches", out.len() as u64);
    Ok(Alignment {
        correspondences: out,
        stats,
    })
}

/// Blocked candidate generation: per source concept, the union of up to
/// `width` target indices from each recall channel. All channels are
/// deterministic (counts descending, then ascending target index; the ANN
/// channel inherits the NSW graph's lower-row tie-breaking).
fn blocked_candidates(
    sst: &SstToolkit,
    sources: &[GlobalConcept],
    targets: &[GlobalConcept],
    width: usize,
) -> Vec<Vec<usize>> {
    let ctx = sst.ctx();

    // Target-side postings: lowercase name token -> target indices, and
    // feature string -> target indices. Posting lists longer than `cap`
    // are skipped as non-discriminative (a token shared by most of the
    // target ontology recalls nothing specific and would push candidate
    // generation back toward O(n·m)).
    let cap = (targets.len() / 2).max(width.saturating_mul(8));
    let mut token_postings: HashMap<String, Vec<usize>> = HashMap::new();
    let mut feature_postings: HashMap<String, Vec<usize>> = HashMap::new();
    for (tj, &gc) in targets.iter().enumerate() {
        for tok in sst_index::tokenize(ctx.name(gc)) {
            token_postings.entry(tok).or_default().push(tj);
        }
        for feat in ctx.feature_set(gc) {
            feature_postings.entry(feat).or_default().push(tj);
        }
    }

    let vectors = sst.vector_store();
    // A beam a few times wider than the per-channel width keeps ANN recall
    // high after filtering out same-ontology rows.
    let probe = width.saturating_mul(4).max(vectors.default_probe());
    let target_rows: HashMap<usize, usize> = targets
        .iter()
        .enumerate()
        .filter_map(|(tj, &gc)| vectors.position(gc).map(|row| (row, tj)))
        .collect();

    let mut out = Vec::with_capacity(sources.len());
    for &gc in sources {
        let mut merged: Vec<usize> = Vec::new();

        // Channel 1: shared name tokens, ranked by overlap count.
        let mut overlap: HashMap<usize, u32> = HashMap::new();
        for tok in sst_index::tokenize(ctx.name(gc)) {
            if let Some(postings) = token_postings.get(&tok) {
                if postings.len() > cap {
                    continue;
                }
                for &tj in postings {
                    *overlap.entry(tj).or_insert(0) += 1;
                }
            }
        }
        merged.extend(top_by_count(overlap, width));

        // Channel 2: shared features, ranked by overlap count.
        let mut overlap: HashMap<usize, u32> = HashMap::new();
        for feat in ctx.feature_set(gc) {
            if let Some(postings) = feature_postings.get(&feat) {
                if postings.len() > cap {
                    continue;
                }
                for &tj in postings {
                    *overlap.entry(tj).or_insert(0) += 1;
                }
            }
        }
        merged.extend(top_by_count(overlap, width));

        // Channel 3: dense-vector neighborhood via the NSW graph, filtered
        // to the target ontology. Catches documentation-level similarity
        // that shares no surface tokens or features.
        if let Some(row) = vectors.position(gc) {
            let mut taken = 0usize;
            for (r, _) in vectors.approx_candidates(row, probe) {
                if let Some(&tj) = target_rows.get(&r) {
                    merged.push(tj);
                    taken += 1;
                    if taken >= width {
                        break;
                    }
                }
            }
        }

        merged.sort_unstable();
        merged.dedup();
        out.push(merged);
    }
    out
}

/// The `width` keys with the highest counts (count descending, key
/// ascending — deterministic despite hash-map iteration order).
fn top_by_count(overlap: HashMap<usize, u32>, width: usize) -> Vec<usize> {
    let mut ranked: Vec<(usize, u32)> = overlap.into_iter().collect();
    ranked.sort_unstable_by(|a, b| b.1.cmp(&a.1).then_with(|| a.0.cmp(&b.0)));
    ranked.truncate(width);
    ranked.into_iter().map(|(tj, _)| tj).collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::facade::{measure_ids as m, SstBuilder};
    use sst_soqa::{OntologyBuilder, OntologyMetadata};

    fn ontology(name: &str, concepts: &[(&str, Option<&str>, &str)]) -> sst_soqa::Ontology {
        let mut b = OntologyBuilder::new(OntologyMetadata {
            name: name.into(),
            language: "Test".into(),
            ..OntologyMetadata::default()
        });
        for &(cname, parent, doc) in concepts {
            let id = b.concept(cname);
            b.concept_mut(id).documentation = Some(doc.to_owned());
            if let Some(p) = parent {
                let pid = b.concept(p);
                b.add_subclass(id, pid);
            }
        }
        b.build()
    }

    fn toolkit() -> SstToolkit {
        let a = ontology(
            "left",
            &[
                ("Thing", None, "top"),
                ("Person", Some("Thing"), "a human being"),
                (
                    "Student",
                    Some("Person"),
                    "a person who studies at a university",
                ),
                ("Professor", Some("Person"), "a person who teaches courses"),
                ("Course", Some("Thing"), "a unit of teaching"),
            ],
        );
        let b = ontology(
            "right",
            &[
                ("Top", None, "root"),
                ("Human", Some("Top"), "a human being"),
                (
                    "Learner",
                    Some("Human"),
                    "a human who studies at a university",
                ),
                ("Teacher", Some("Human"), "a human who teaches courses"),
                ("Module", Some("Top"), "a unit of teaching"),
            ],
        );
        SstBuilder::new()
            .register_ontology(a)
            .unwrap()
            .register_ontology(b)
            .unwrap()
            .build()
    }

    #[test]
    fn aligns_semantically_matching_concepts() {
        let sst = toolkit();
        let config = AlignmentConfig {
            measures: vec![m::TFIDF_MEASURE],
            strategy: Amalgamation::WeightedAverage,
            threshold: 0.2,
            ..AlignmentConfig::default()
        };
        let result = align(&sst, "left", "right", &config).unwrap();
        let find = |s: &str| {
            result
                .iter()
                .find(|c| c.source_concept == s)
                .map(|c| c.target_concept.as_str())
        };
        assert_eq!(find("Student"), Some("Learner"));
        assert_eq!(find("Professor"), Some("Teacher"));
        assert_eq!(find("Course"), Some("Module"));
        assert_eq!(find("Person"), Some("Human"));
    }

    #[test]
    fn matching_is_one_to_one_and_sorted() {
        let sst = toolkit();
        let result = align(&sst, "left", "right", &AlignmentConfig::default()).unwrap();
        let mut targets: Vec<&str> = result.iter().map(|c| c.target_concept.as_str()).collect();
        let before = targets.len();
        targets.sort_unstable();
        targets.dedup();
        assert_eq!(targets.len(), before, "duplicate targets in 1:1 alignment");
        for w in result.windows(2) {
            assert!(w[0].similarity >= w[1].similarity);
        }
    }

    #[test]
    fn threshold_filters_weak_pairs() {
        let sst = toolkit();
        let strict = AlignmentConfig {
            threshold: 0.9,
            ..AlignmentConfig::default()
        };
        let loose = AlignmentConfig {
            threshold: 0.0,
            ..AlignmentConfig::default()
        };
        let strict_result = align(&sst, "left", "right", &strict).unwrap();
        let loose_result = align(&sst, "left", "right", &loose).unwrap();
        assert!(strict_result.len() <= loose_result.len());
        // With threshold 0 every source concept finds some partner (equal
        // sizes here).
        assert_eq!(loose_result.len(), 5);
    }

    #[test]
    fn invalid_configs_are_rejected() {
        let sst = toolkit();
        assert!(align(
            &sst,
            "left",
            "right",
            &AlignmentConfig {
                measures: vec![],
                ..AlignmentConfig::default()
            }
        )
        .is_err());
        assert!(align(
            &sst,
            "left",
            "right",
            &AlignmentConfig {
                threshold: 1.5,
                ..AlignmentConfig::default()
            }
        )
        .is_err());
        assert!(align(
            &sst,
            "left",
            "right",
            &AlignmentConfig {
                candidates: CandidateGen::Blocked { width: 0 },
                ..AlignmentConfig::default()
            }
        )
        .is_err());
        assert!(align(&sst, "left", "ghost", &AlignmentConfig::default()).is_err());
    }

    #[test]
    fn greedy_and_stable_agree_on_small_exhaustive_corpora() {
        // With symmetric scores and distinct values the stable matching is
        // unique; both disciplines must find it on this toy corpus.
        let sst = toolkit();
        let greedy = align(
            &sst,
            "left",
            "right",
            &AlignmentConfig {
                mode: MatchMode::Greedy,
                candidates: CandidateGen::Exhaustive,
                ..AlignmentConfig::default()
            },
        )
        .unwrap();
        let stable = align(
            &sst,
            "left",
            "right",
            &AlignmentConfig {
                mode: MatchMode::Stable,
                candidates: CandidateGen::Exhaustive,
                ..AlignmentConfig::default()
            },
        )
        .unwrap();
        assert!(!stable.is_empty());
        assert_eq!(greedy, stable);
    }

    #[test]
    fn duplicate_display_names_do_not_alias() {
        // Regression: the engine used to round-trip concepts through
        // display names (`concept(id).name` then `resolve(name)`), so two
        // concepts sharing a name resolved to one id and correspondences
        // collapsed or mis-attributed. Ids are now threaded end to end.
        let mut left = OntologyBuilder::new(OntologyMetadata {
            name: "dup_left".into(),
            language: "Test".into(),
            ..OntologyMetadata::default()
        });
        let gear = left.concept("Widget");
        left.concept_mut(gear).documentation =
            Some("a rotating gear mechanism with brass teeth".to_owned());
        let bird = left.concept("Gadget");
        left.concept_mut(bird).documentation =
            Some("a chirping bird automaton with tiny bellows".to_owned());
        // Rename so both concepts *display* as "Widget" while remaining
        // distinct concepts.
        left.concept_mut(bird).name = "Widget".to_owned();
        let mut right = OntologyBuilder::new(OntologyMetadata {
            name: "dup_right".into(),
            language: "Test".into(),
            ..OntologyMetadata::default()
        });
        let gear_t = right.concept("GearWork");
        right.concept_mut(gear_t).documentation =
            Some("a rotating gear mechanism with brass teeth".to_owned());
        let bird_t = right.concept("BirdBox");
        right.concept_mut(bird_t).documentation =
            Some("a chirping bird automaton with tiny bellows".to_owned());
        let sst = SstBuilder::new()
            .register_ontology(left.build())
            .unwrap()
            .register_ontology(right.build())
            .unwrap()
            .build();
        let config = AlignmentConfig {
            measures: vec![m::TFIDF_MEASURE],
            strategy: Amalgamation::WeightedAverage,
            threshold: 0.2,
            ..AlignmentConfig::default()
        };
        let result = align(&sst, "dup_left", "dup_right", &config).unwrap();
        assert_eq!(result.len(), 2, "both duplicate-named concepts matched");
        assert_ne!(
            result[0].source, result[1].source,
            "duplicate-named source concepts aliased onto one id"
        );
        let by_target = |t: &str| {
            result
                .iter()
                .find(|c| c.target_concept == t)
                .map(|c| c.source.concept)
        };
        assert_eq!(by_target("GearWork"), Some(gear));
        assert_eq!(by_target("BirdBox"), Some(bird));
        for c in &result {
            assert_eq!(c.source_concept, "Widget");
        }
    }

    #[test]
    fn blocked_candidates_and_budget_are_reported() {
        let sst = toolkit();
        let result = align_with_limits(
            &sst,
            "left",
            "right",
            &AlignmentConfig::default(),
            &Limits::unbounded(),
        )
        .unwrap();
        assert_eq!(result.stats.sources, 5);
        assert_eq!(result.stats.targets, 5);
        assert!(result.stats.candidate_pairs <= 25);
        assert!(result.stats.proposals > 0);
        assert_eq!(result.stats.matches, result.correspondences.len());
        // A starved step budget rejects the run with a limit violation.
        let tiny = sst_limits::Limits {
            max_steps: 1,
            ..sst_limits::Limits::default()
        };
        let err = align_with_limits(&sst, "left", "right", &AlignmentConfig::default(), &tiny)
            .unwrap_err();
        assert!(matches!(err, SstError::Limit(_)), "got {err:?}");
    }
}

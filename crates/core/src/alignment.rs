//! Ontology alignment on top of the similarity services — the application
//! area the paper's introduction leads with ("such similarity information
//! can be useful for … ontology alignment and integration").
//!
//! [`align`] produces a one-to-one correspondence proposal between two
//! registered ontologies by greedy best-first matching over the pairwise
//! similarity matrix, optionally combining several measures with an
//! [`Amalgamation`] strategy.

use sst_simpack::{Amalgamation, Combiner};
use sst_soqa::GlobalConcept;

use crate::error::{Result, SstError};
use crate::facade::{PairScorer, SstToolkit};

/// One proposed correspondence.
#[derive(Debug, Clone, PartialEq)]
pub struct Correspondence {
    pub source_concept: String,
    pub target_concept: String,
    pub similarity: f64,
}

/// Parameters of an alignment run.
#[derive(Debug, Clone)]
pub struct AlignmentConfig {
    /// Measure ids whose scores are combined per pair.
    pub measures: Vec<usize>,
    /// How the per-measure scores are amalgamated.
    pub strategy: Amalgamation,
    /// Pairs below this combined similarity are not proposed.
    pub threshold: f64,
}

impl Default for AlignmentConfig {
    fn default() -> Self {
        AlignmentConfig {
            measures: vec![
                crate::facade::measure_ids::CONCEPTUAL_SIMILARITY_MEASURE,
                crate::facade::measure_ids::TFIDF_MEASURE,
            ],
            strategy: Amalgamation::WeightedAverage,
            threshold: 0.25,
        }
    }
}

/// Aligns `source` to `target`: proposes at most one target concept per
/// source concept (and vice versa), greedily by descending combined
/// similarity, dropping pairs under the threshold. Results are sorted by
/// descending similarity.
pub fn align(
    sst: &SstToolkit,
    source: &str,
    target: &str,
    config: &AlignmentConfig,
) -> Result<Vec<Correspondence>> {
    if config.measures.is_empty() {
        return Err(SstError::InvalidArgument(
            "alignment needs at least one measure".into(),
        ));
    }
    if !(0.0..=1.0).contains(&config.threshold) {
        return Err(SstError::InvalidArgument(format!(
            "threshold must be in [0, 1], got {}",
            config.threshold
        )));
    }
    sst.metrics().inc("core.align.calls");
    let _span = sst.metrics().span("core.align.latency");
    let combiner = Combiner::uniform(config.strategy, config.measures.len());

    let source_names: Vec<String> = {
        let o = sst.soqa().ontology(source)?;
        o.concept_ids()
            .map(|id| o.concept(id).name.clone())
            .collect()
    };
    let target_names: Vec<String> = {
        let o = sst.soqa().ontology(target)?;
        o.concept_ids()
            .map(|id| o.concept(id).name.clone())
            .collect()
    };

    if source_names.is_empty() || target_names.is_empty() {
        return Ok(Vec::new());
    }

    // Resolve every concept once (names resolve exactly as the pairwise
    // service would) and prepare one batch context over source ∪ target,
    // instead of re-resolving and rederiving runner inputs per pair.
    let mut batch: Vec<GlobalConcept> = Vec::with_capacity(source_names.len() + target_names.len());
    for s_name in &source_names {
        batch.push(sst.soqa().resolve(source, s_name)?);
    }
    for t_name in &target_names {
        batch.push(sst.soqa().resolve(target, t_name)?);
    }
    let prep = sst.prepare_for(&batch, sst.needs_union(&config.measures)?);
    let scorers: Vec<PairScorer<'_>> = config
        .measures
        .iter()
        .map(|&m| Ok(PairScorer::new(sst.runner(m)?, &prep)))
        .collect::<Result<_>>()?;

    // Score every pair under the combined measure, fanned out over the
    // work-stealing scheduler in cache-blocked source × target tiles
    // (crate::sched). Per-tile results are assembled by tile index, so the
    // candidate list is deterministic for any worker count.
    let source_count = source_names.len();
    let tiles = crate::sched::rect_tiles(source_count, target_names.len(), 32);
    let workers = crate::sched::default_workers().min(tiles.len());
    let measures = &config.measures;
    let scorers = &scorers;
    let combiner = &combiner;
    let (results, stats) = crate::sched::run_tiles(&tiles, workers, |_, tile| {
        let mut vals = Vec::with_capacity(tile.len());
        let mut scores = vec![0.0; measures.len()];
        tile.for_each(|si, ti| {
            let tpos = source_count + ti;
            for ((&m, scorer), slot) in measures.iter().zip(scorers).zip(&mut scores) {
                *slot = sst.timed_score(m, || scorer.score(si, tpos));
            }
            vals.push(combiner.combine(&scores));
        });
        vals
    });
    if stats.panicked > 0 {
        return Err(SstError::Internal("alignment worker thread died".into()));
    }
    sst.record_sched_stats(&stats);
    let mut results = results;
    results.sort_unstable_by_key(|&(idx, _)| idx);
    let mut scored: Vec<(usize, usize, f64)> = Vec::new();
    for (idx, vals) in results {
        if let Some(tile) = tiles.get(idx) {
            let mut it = vals.into_iter();
            tile.for_each(|si, ti| {
                if let Some(combined) = it.next() {
                    if combined >= config.threshold {
                        scored.push((si, ti, combined));
                    }
                }
            });
        }
    }
    // Greedy best-first one-to-one matching. `total_cmp` keeps the order
    // deterministic even if a user-registered runner produces NaN (such
    // pairs are already dropped by the threshold filter above, since
    // `NaN >= t` is false, but combined scores stay defensive).
    scored.sort_by(|a, b| {
        b.2.total_cmp(&a.2)
            .then_with(|| (a.0, a.1).cmp(&(b.0, b.1)))
    });
    let mut source_used = vec![false; source_names.len()];
    let mut target_used = vec![false; target_names.len()];
    let mut out = Vec::new();
    for (si, ti, sim) in scored {
        if source_used[si] || target_used[ti] {
            continue;
        }
        source_used[si] = true;
        target_used[ti] = true;
        out.push(Correspondence {
            source_concept: source_names[si].clone(),
            target_concept: target_names[ti].clone(),
            similarity: sim,
        });
    }
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::facade::{measure_ids as m, SstBuilder};
    use sst_soqa::{OntologyBuilder, OntologyMetadata};

    fn ontology(name: &str, concepts: &[(&str, Option<&str>, &str)]) -> sst_soqa::Ontology {
        let mut b = OntologyBuilder::new(OntologyMetadata {
            name: name.into(),
            language: "Test".into(),
            ..OntologyMetadata::default()
        });
        for &(cname, parent, doc) in concepts {
            let id = b.concept(cname);
            b.concept_mut(id).documentation = Some(doc.to_owned());
            if let Some(p) = parent {
                let pid = b.concept(p);
                b.add_subclass(id, pid);
            }
        }
        b.build()
    }

    fn toolkit() -> SstToolkit {
        let a = ontology(
            "left",
            &[
                ("Thing", None, "top"),
                ("Person", Some("Thing"), "a human being"),
                (
                    "Student",
                    Some("Person"),
                    "a person who studies at a university",
                ),
                ("Professor", Some("Person"), "a person who teaches courses"),
                ("Course", Some("Thing"), "a unit of teaching"),
            ],
        );
        let b = ontology(
            "right",
            &[
                ("Top", None, "root"),
                ("Human", Some("Top"), "a human being"),
                (
                    "Learner",
                    Some("Human"),
                    "a human who studies at a university",
                ),
                ("Teacher", Some("Human"), "a human who teaches courses"),
                ("Module", Some("Top"), "a unit of teaching"),
            ],
        );
        SstBuilder::new()
            .register_ontology(a)
            .unwrap()
            .register_ontology(b)
            .unwrap()
            .build()
    }

    #[test]
    fn aligns_semantically_matching_concepts() {
        let sst = toolkit();
        let config = AlignmentConfig {
            measures: vec![m::TFIDF_MEASURE],
            strategy: Amalgamation::WeightedAverage,
            threshold: 0.2,
        };
        let result = align(&sst, "left", "right", &config).unwrap();
        let find = |s: &str| {
            result
                .iter()
                .find(|c| c.source_concept == s)
                .map(|c| c.target_concept.as_str())
        };
        assert_eq!(find("Student"), Some("Learner"));
        assert_eq!(find("Professor"), Some("Teacher"));
        assert_eq!(find("Course"), Some("Module"));
        assert_eq!(find("Person"), Some("Human"));
    }

    #[test]
    fn matching_is_one_to_one_and_sorted() {
        let sst = toolkit();
        let result = align(&sst, "left", "right", &AlignmentConfig::default()).unwrap();
        let mut targets: Vec<&str> = result.iter().map(|c| c.target_concept.as_str()).collect();
        let before = targets.len();
        targets.sort_unstable();
        targets.dedup();
        assert_eq!(targets.len(), before, "duplicate targets in 1:1 alignment");
        for w in result.windows(2) {
            assert!(w[0].similarity >= w[1].similarity);
        }
    }

    #[test]
    fn threshold_filters_weak_pairs() {
        let sst = toolkit();
        let strict = AlignmentConfig {
            threshold: 0.9,
            ..AlignmentConfig::default()
        };
        let loose = AlignmentConfig {
            threshold: 0.0,
            ..AlignmentConfig::default()
        };
        let strict_result = align(&sst, "left", "right", &strict).unwrap();
        let loose_result = align(&sst, "left", "right", &loose).unwrap();
        assert!(strict_result.len() <= loose_result.len());
        // With threshold 0 every source concept finds some partner (equal
        // sizes here).
        assert_eq!(loose_result.len(), 5);
    }

    #[test]
    fn invalid_configs_are_rejected() {
        let sst = toolkit();
        assert!(align(
            &sst,
            "left",
            "right",
            &AlignmentConfig {
                measures: vec![],
                ..AlignmentConfig::default()
            }
        )
        .is_err());
        assert!(align(
            &sst,
            "left",
            "right",
            &AlignmentConfig {
                threshold: 1.5,
                ..AlignmentConfig::default()
            }
        )
        .is_err());
        assert!(align(&sst, "left", "ghost", &AlignmentConfig::default()).is_err());
    }
}

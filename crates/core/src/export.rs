//! Machine-readable export of similarity results: CSV and JSON writers for
//! ranked lists, similarity matrices, and alignment proposals — the
//! "textual lists" output channel of the paper, made tool-friendly.
//!
//! The writers are hand-rolled (no serde dependency): the formats involved
//! are flat and the escaping rules are small.

use crate::alignment::Correspondence;
use crate::facade::ConceptAndSimilarity;

/// Escapes one CSV field per RFC 4180 (quote when needed, double quotes).
fn csv_field(s: &str) -> String {
    if s.contains([',', '"', '\n', '\r']) {
        format!("\"{}\"", s.replace('"', "\"\""))
    } else {
        s.to_owned()
    }
}

/// JSON string escaping.
fn json_string(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out.push('"');
    out
}

fn json_number(v: f64) -> String {
    if v.is_finite() {
        format!("{v}")
    } else {
        "null".to_owned()
    }
}

/// Ranked similarity list → CSV (`ontology,concept,similarity`).
pub fn ranking_to_csv(rows: &[ConceptAndSimilarity]) -> String {
    let mut out = String::from("ontology,concept,similarity\n");
    for r in rows {
        out.push_str(&format!(
            "{},{},{}\n",
            csv_field(&r.ontology),
            csv_field(&r.concept),
            r.similarity
        ));
    }
    out
}

/// Ranked similarity list → JSON array of objects.
pub fn ranking_to_json(rows: &[ConceptAndSimilarity]) -> String {
    let items: Vec<String> = rows
        .iter()
        .map(|r| {
            format!(
                "{{\"ontology\":{},\"concept\":{},\"similarity\":{}}}",
                json_string(&r.ontology),
                json_string(&r.concept),
                json_number(r.similarity)
            )
        })
        .collect();
    format!("[{}]", items.join(","))
}

/// Similarity matrix → CSV with labeled header row and column.
pub fn matrix_to_csv(labels: &[String], matrix: &[Vec<f64>]) -> String {
    let mut out = String::from("concept");
    for label in labels {
        out.push(',');
        out.push_str(&csv_field(label));
    }
    out.push('\n');
    for (label, row) in labels.iter().zip(matrix) {
        out.push_str(&csv_field(label));
        for v in row {
            out.push_str(&format!(",{v}"));
        }
        out.push('\n');
    }
    out
}

/// Alignment proposal → CSV (`source,target,similarity`).
pub fn alignment_to_csv(correspondences: &[Correspondence]) -> String {
    let mut out = String::from("source,target,similarity\n");
    for c in correspondences {
        out.push_str(&format!(
            "{},{},{}\n",
            csv_field(&c.source_concept),
            csv_field(&c.target_concept),
            c.similarity
        ));
    }
    out
}

/// Alignment proposal → JSON array.
pub fn alignment_to_json(correspondences: &[Correspondence]) -> String {
    let items: Vec<String> = correspondences
        .iter()
        .map(|c| {
            format!(
                "{{\"source\":{},\"target\":{},\"similarity\":{}}}",
                json_string(&c.source_concept),
                json_string(&c.target_concept),
                json_number(c.similarity)
            )
        })
        .collect();
    format!("[{}]", items.join(","))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn rows() -> Vec<ConceptAndSimilarity> {
        vec![
            ConceptAndSimilarity {
                concept: "Professor".into(),
                ontology: "uni".into(),
                similarity: 1.0,
            },
            ConceptAndSimilarity {
                concept: "weird,\"name\"".into(),
                ontology: "o\n2".into(),
                similarity: 0.25,
            },
        ]
    }

    #[test]
    fn csv_escapes_delimiters_and_quotes() {
        let csv = ranking_to_csv(&rows());
        let lines: Vec<&str> = csv.lines().collect();
        assert_eq!(lines[0], "ontology,concept,similarity");
        assert_eq!(lines[1], "uni,Professor,1");
        // The second record has a quoted, multi-line ontology field and a
        // quoted concept field with doubled quotes.
        assert!(csv.contains("\"o\n2\""));
        assert!(csv.contains("\"weird,\"\"name\"\"\""));
    }

    #[test]
    fn json_escapes_strings() {
        let json = ranking_to_json(&rows());
        assert!(json.starts_with('[') && json.ends_with(']'));
        assert!(json.contains("\"concept\":\"Professor\""));
        assert!(json.contains("weird,\\\"name\\\""));
        assert!(json.contains("\"o\\n2\""));
        // Sanity: both rows present.
        assert_eq!(json.matches("\"similarity\"").count(), 2);
    }

    #[test]
    fn matrix_round_shape() {
        let labels = vec!["a".to_owned(), "b,x".to_owned()];
        let matrix = vec![vec![1.0, 0.5], vec![0.5, 1.0]];
        let csv = matrix_to_csv(&labels, &matrix);
        let lines: Vec<&str> = csv.lines().collect();
        assert_eq!(lines.len(), 3);
        assert_eq!(lines[0], "concept,a,\"b,x\"");
        assert_eq!(lines[1], "a,1,0.5");
    }

    #[test]
    fn alignment_exports() {
        let cs = vec![Correspondence {
            source: sst_soqa::GlobalConcept {
                ontology: 0,
                concept: sst_soqa::ConceptId(0),
            },
            target: sst_soqa::GlobalConcept {
                ontology: 1,
                concept: sst_soqa::ConceptId(0),
            },
            source_concept: "Student".into(),
            target_concept: "Learner".into(),
            similarity: 0.75,
        }];
        assert!(alignment_to_csv(&cs).contains("Student,Learner,0.75"));
        assert!(alignment_to_json(&cs).contains("\"target\":\"Learner\""));
    }

    #[test]
    fn empty_inputs_produce_valid_documents() {
        assert_eq!(ranking_to_json(&[]), "[]");
        assert_eq!(ranking_to_csv(&[]), "ontology,concept,similarity\n");
        assert_eq!(alignment_to_json(&[]), "[]");
    }
}

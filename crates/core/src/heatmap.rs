//! Similarity-matrix heatmaps — part of the "more advanced result
//! visualizations" the paper lists as future work. Renders a pairwise
//! similarity matrix as an ASCII shade grid and as a Gnuplot
//! `plot ... with image` script (the same emit-script pipeline as
//! [`crate::chart::Chart`]).

use crate::chart::GnuplotArtifacts;

/// A labeled similarity matrix ready for rendering.
#[derive(Debug, Clone, PartialEq)]
pub struct Heatmap {
    pub title: String,
    pub labels: Vec<String>,
    /// Row-major, `labels.len()²` values in [0, 1] (values are clamped at
    /// render time).
    pub matrix: Vec<Vec<f64>>,
}

/// Shade ramp from empty to full.
const SHADES: [char; 5] = [' ', '░', '▒', '▓', '█'];

impl Heatmap {
    /// Builds a heatmap; panics if the matrix is not square over the labels.
    pub fn new(title: impl Into<String>, labels: Vec<String>, matrix: Vec<Vec<f64>>) -> Heatmap {
        // lint: allow(panic) documented constructor contract: callers pass matrices from similarity_matrix, which is square by construction
        assert_eq!(labels.len(), matrix.len(), "matrix rows must match labels");
        for row in &matrix {
            // lint: allow(panic) documented constructor contract (see above)
            assert_eq!(labels.len(), row.len(), "matrix must be square");
        }
        Heatmap {
            title: title.into(),
            labels,
            matrix,
        }
    }

    /// ASCII rendering: one shade cell (two chars wide) per pair, with
    /// numbered axes and a legend mapping numbers to labels.
    pub fn to_ascii(&self) -> String {
        let n = self.labels.len();
        let mut out = format!("{}\n", self.title);
        // Column header: indices.
        out.push_str("      ");
        for j in 0..n {
            out.push_str(&format!("{:>3}", j + 1));
        }
        out.push('\n');
        for (i, row) in self.matrix.iter().enumerate() {
            out.push_str(&format!("  {:>3} ", i + 1));
            for &v in row {
                let clamped = v.clamp(0.0, 1.0);
                let idx = (clamped * (SHADES.len() - 1) as f64).round() as usize;
                let shade = SHADES.get(idx).copied().unwrap_or('█');
                out.push_str(&format!(" {shade}{shade}"));
            }
            out.push('\n');
        }
        out.push('\n');
        for (i, label) in self.labels.iter().enumerate() {
            out.push_str(&format!("  {:>3} = {label}\n", i + 1));
        }
        out
    }

    /// Gnuplot `with image` artifacts.
    pub fn to_gnuplot(&self, basename: &str) -> GnuplotArtifacts {
        let mut data = String::new();
        for (i, row) in self.matrix.iter().enumerate() {
            for (j, &v) in row.iter().enumerate() {
                data.push_str(&format!("{j}\t{i}\t{v}\n"));
            }
            data.push('\n');
        }
        let tics: Vec<String> = self
            .labels
            .iter()
            .enumerate()
            .map(|(i, l)| format!("\"{}\" {i}", l.replace('"', "'")))
            .collect();
        let tics = tics.join(", ");
        let script = format!(
            "set title \"{title}\"\n\
             set xtics ({tics}) rotate by -45\n\
             set ytics ({tics})\n\
             set cbrange [0:1]\n\
             set palette grey\n\
             set terminal png size 900,800\n\
             set output \"{basename}.png\"\n\
             plot \"{basename}.dat\" using 1:2:3 with image notitle\n",
            title = self.title.replace('"', "'"),
        );
        GnuplotArtifacts { script, data }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> Heatmap {
        Heatmap::new(
            "test",
            vec!["a".into(), "b".into()],
            vec![vec![1.0, 0.25], vec![0.25, 1.0]],
        )
    }

    #[test]
    fn ascii_has_full_diagonal() {
        let text = sample().to_ascii();
        // Two full-shade cells on the diagonal.
        assert_eq!(text.matches('█').count(), 4); // 2 cells × 2 chars
        assert!(text.contains("1 = a"));
        assert!(text.contains("2 = b"));
    }

    #[test]
    fn values_are_clamped() {
        let h = Heatmap::new("clamp", vec!["x".into()], vec![vec![42.0]]);
        let text = h.to_ascii();
        assert!(text.contains('█'));
    }

    #[test]
    fn gnuplot_emits_one_cell_per_pair() {
        let art = sample().to_gnuplot("hm");
        let cells = art.data.lines().filter(|l| !l.is_empty()).count();
        assert_eq!(cells, 4);
        assert!(art.script.contains("with image"));
        assert!(art.script.contains("\"a\" 0, \"b\" 1"));
    }

    #[test]
    #[should_panic(expected = "square")]
    fn non_square_matrix_panics() {
        Heatmap::new("bad", vec!["a".into()], vec![vec![1.0, 2.0]]);
    }
}

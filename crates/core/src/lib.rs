//! # sst-core — the SOQA-SimPack Toolkit (SST)
//!
//! Rust reimplementation of the toolkit from *Detecting Similarities in
//! Ontologies with the SOQA-SimPack Toolkit* (Ziegler, Kiefer, Sturm,
//! Dittrich, Bernstein — EDBT 2006): an ontology-language-independent API
//! for generic similarity detection and visualization in ontologies.
//!
//! SST couples **SOQA** (`sst-soqa`, unified access to OWL / DAML /
//! PowerLoom / WordNet ontologies via `sst-wrappers`) with **SimPack**
//! (`sst-simpack`, the similarity-measure library): all registered
//! ontologies are incorporated into a single tree under a synthetic
//! *Super Thing* root, and `MeasureRunner`s feed SOQA data into SimPack
//! measures.
//!
//! ```
//! use sst_core::{measure_ids, ConceptSet, SstBuilder};
//! use sst_soqa::{OntologyBuilder, OntologyMetadata};
//!
//! // Normally ontologies come from sst-wrappers parsers; build one by hand:
//! let mut b = OntologyBuilder::new(OntologyMetadata {
//!     name: "uni".into(), language: "Test".into(), ..Default::default()
//! });
//! let thing = b.concept("Thing");
//! let person = b.concept("Person");
//! let student = b.concept("Student");
//! b.add_subclass(person, thing);
//! b.add_subclass(student, person);
//!
//! let sst = SstBuilder::new().register_ontology(b.build()).unwrap().build();
//! let sim = sst.get_similarity("Student", "uni", "Person", "uni",
//!                              measure_ids::CONCEPTUAL_SIMILARITY_MEASURE).unwrap();
//! assert!(sim > 0.0 && sim < 1.0);
//! ```

#![warn(missing_debug_implementations)]
#![forbid(unsafe_code)]

pub mod alignment;
pub mod cache;
pub mod chart;
pub mod clustering;
pub mod error;
pub mod export;
pub mod facade;
pub mod heatmap;
mod lru;
pub mod runner;
pub mod sched;
pub mod snapshot;
pub mod tree;
pub mod vector;

pub use alignment::{
    align, align_with_limits, AlignStats, Alignment, AlignmentConfig, CandidateGen, Correspondence,
    MatchMode, DEFAULT_BLOCK_WIDTH,
};
pub use cache::CachedSimilarity;
pub use chart::{Bar, Chart, GnuplotArtifacts};
pub use clustering::{cluster, cluster_matrix, Dendrogram, Linkage};
pub use error::{Result, SstError};
pub use export::{
    alignment_to_csv, alignment_to_json, matrix_to_csv, ranking_to_csv, ranking_to_json,
};
pub use facade::{
    measure_ids, BatchMode, ConceptAndSimilarity, ConceptRef, ConceptSet, ProbabilityModeConfig,
    SstBuilder, SstConfig, SstToolkit,
};
pub use heatmap::Heatmap;
pub use runner::{
    ConceptView, MeasureRunner, PrepareNeeds, PreparedContext, PreparedMeasure, RunnerInfo,
    SimilarityContext, TokenId,
};
pub use sched::{
    default_workers, rect_tiles, run_tiles, tile_size, triangle_tiles, SchedStats, Tile,
    WorkerStats,
};
pub use snapshot::{SnapshotFile, SnapshotFormatError, SNAPSHOT_MAGIC};
pub use sst_obs::{Metrics, MetricsSnapshot};
pub use sst_simpack::Amalgamation;
pub use tree::{TreeMode, UnifiedTree, SUPER_THING};
pub use vector::{
    embed_tfidf, DenseVectorFile, VectorFormatError, VectorStore, EMBED_DIM, FORMAT_MAGIC,
};

//! `SSTSNAP1` — versioned binary snapshots of a built toolkit.
//!
//! A snapshot captures everything a replica needs to reconstruct an
//! [`SstToolkit`](crate::SstToolkit) without re-parsing ontology source
//! documents: the build configuration, the exact component arenas of every
//! registered ontology, and the prepared dense-vector tables (an embedded
//! `SSTVEC1` section). Because `SstBuilder::build` is a pure function of
//! the registered ontologies and the configuration, serializing the arenas
//! verbatim is sufficient for *bit-identical* round trips — all 20
//! measures score exactly the same on an imported toolkit.
//!
//! Layout (all integers little-endian):
//!
//! ```text
//! magic            8 bytes   b"SSTSNAP1"
//! tree mode        u8        0 = SuperThing, 1 = MergedThing
//! probability mode u8        0 = InstanceCorpusWithFallback, 1 = SubclassCount
//! ontology count   u32
//! per ontology     u64 len + payload (metadata, then the five arenas)
//! vectors section  u64 len + SSTVEC1 bytes (prepared tables)
//! checksum         u64       FNV-1a over everything before it
//! ```
//!
//! Like the `SSTVEC1` loader, the checksum is verified **before** any
//! field is parsed — a flipped byte anywhere is a checksum error, never an
//! arbitrary downstream parse error — and the whole load is governed by
//! [`sst_limits::Limits`] (input size, per-component item budget, string
//! literal lengths). Every cross-arena id is validated by
//! [`Ontology::from_arenas`] before an ontology is handed to the builder.

use crate::facade::{ProbabilityModeConfig, SstConfig, SstToolkit};
use crate::tree::TreeMode;
use crate::vector::fnv1a;
use sst_limits::{Budget, LimitViolation, Limits};
use sst_soqa::{
    Attribute, AttributeId, Concept, ConceptId, Instance, InstanceId, Method, MethodId, Ontology,
    OntologyMetadata, Parameter, Relationship, RelationshipId,
};
use std::fmt;

/// Magic + version prefix of the snapshot format.
pub const SNAPSHOT_MAGIC: &[u8; 8] = b"SSTSNAP1";

/// A parse failure of the snapshot binary format.
#[derive(Debug, Clone, PartialEq)]
pub enum SnapshotFormatError {
    /// The input ended before the named field.
    Truncated(&'static str),
    /// The magic/version prefix does not match [`SNAPSHOT_MAGIC`].
    BadMagic,
    /// A field holds a value outside its legal range.
    BadValue { field: &'static str, value: u64 },
    /// A string field is not valid UTF-8.
    BadUtf8(&'static str),
    /// Trailing bytes after the checksum, or inside a length-prefixed
    /// section after its payload.
    TrailingBytes(usize),
    /// The stored checksum does not match the content.
    Checksum { expected: u64, actual: u64 },
    /// A decoded ontology failed arena validation (dangling id,
    /// duplicate concept name).
    Ontology(String),
    /// A resource limit was exceeded while loading.
    Limit(LimitViolation),
}

impl fmt::Display for SnapshotFormatError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SnapshotFormatError::Truncated(what) => {
                write!(f, "snapshot truncated at {what}")
            }
            SnapshotFormatError::BadMagic => write!(f, "not an SSTSNAP1 snapshot"),
            SnapshotFormatError::BadValue { field, value } => {
                write!(f, "snapshot field {field} holds invalid value {value}")
            }
            SnapshotFormatError::BadUtf8(what) => {
                write!(f, "snapshot field {what} is not valid UTF-8")
            }
            SnapshotFormatError::TrailingBytes(n) => {
                write!(f, "{n} unexpected trailing byte(s)")
            }
            SnapshotFormatError::Checksum { expected, actual } => write!(
                f,
                "snapshot checksum mismatch: stored {expected:#018x}, computed {actual:#018x}"
            ),
            SnapshotFormatError::Ontology(message) => {
                write!(f, "snapshot ontology invalid: {message}")
            }
            SnapshotFormatError::Limit(v) => write!(f, "snapshot over limit: {v}"),
        }
    }
}

impl std::error::Error for SnapshotFormatError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            SnapshotFormatError::Limit(v) => Some(v),
            _ => None,
        }
    }
}

impl From<LimitViolation> for SnapshotFormatError {
    fn from(v: LimitViolation) -> Self {
        SnapshotFormatError::Limit(v)
    }
}

/// A decoded snapshot: the build configuration, the reconstructed
/// ontologies (in registration order), and the raw embedded `SSTVEC1`
/// prepared-table section. [`SstToolkit::import_snapshot`] rebuilds the
/// toolkit from these and verifies the rebuilt prepared tables against
/// the stored ones.
#[derive(Debug)]
pub struct SnapshotFile {
    pub config: SstConfig,
    pub ontologies: Vec<Ontology>,
    /// The embedded `SSTVEC1` bytes, exactly as stored.
    pub vectors: Vec<u8>,
}

// ---- encoding ---------------------------------------------------------

fn put_u32(out: &mut Vec<u8>, v: u32) {
    out.extend_from_slice(&v.to_le_bytes());
}

fn put_u64(out: &mut Vec<u8>, v: u64) {
    out.extend_from_slice(&v.to_le_bytes());
}

fn put_str(out: &mut Vec<u8>, s: &str) {
    put_u32(out, s.len() as u32);
    out.extend_from_slice(s.as_bytes());
}

fn put_opt(out: &mut Vec<u8>, s: &Option<String>) {
    match s {
        Some(s) => {
            out.push(1);
            put_str(out, s);
        }
        None => out.push(0),
    }
}

fn put_ids(out: &mut Vec<u8>, ids: &[u32]) {
    put_u32(out, ids.len() as u32);
    for &id in ids {
        put_u32(out, id);
    }
}

fn encode_metadata(out: &mut Vec<u8>, m: &OntologyMetadata) {
    put_str(out, &m.name);
    put_opt(out, &m.author);
    put_opt(out, &m.last_modified);
    put_opt(out, &m.documentation);
    put_opt(out, &m.version);
    put_opt(out, &m.copyright);
    put_opt(out, &m.uri);
    put_str(out, &m.language);
}

fn encode_ontology(ontology: &Ontology) -> Vec<u8> {
    let mut out = Vec::new();
    encode_metadata(&mut out, &ontology.metadata);

    put_u32(&mut out, ontology.concept_count() as u32);
    for id in ontology.concept_ids() {
        let c = ontology.concept(id);
        put_str(&mut out, &c.name);
        put_opt(&mut out, &c.documentation);
        put_opt(&mut out, &c.definition);
        // Every link vector is stored verbatim (including the derived
        // `sub_concepts`): replaying builder calls would not reproduce
        // an ontology whose relationships were declared before all of
        // their participant concepts existed.
        let as_raw = |ids: &[ConceptId]| ids.iter().map(|i| i.0).collect::<Vec<_>>();
        put_ids(&mut out, &as_raw(&c.super_concepts));
        put_ids(&mut out, &as_raw(&c.sub_concepts));
        put_ids(&mut out, &as_raw(&c.equivalent_concepts));
        put_ids(&mut out, &as_raw(&c.antonym_concepts));
        put_ids(
            &mut out,
            &c.attributes.iter().map(|i| i.0).collect::<Vec<_>>(),
        );
        put_ids(&mut out, &c.methods.iter().map(|i| i.0).collect::<Vec<_>>());
        put_ids(
            &mut out,
            &c.relationships.iter().map(|i| i.0).collect::<Vec<_>>(),
        );
        put_ids(
            &mut out,
            &c.instances.iter().map(|i| i.0).collect::<Vec<_>>(),
        );
    }

    put_u32(&mut out, ontology.attributes().len() as u32);
    for a in ontology.attributes() {
        put_str(&mut out, &a.name);
        put_opt(&mut out, &a.documentation);
        put_opt(&mut out, &a.data_type);
        put_opt(&mut out, &a.definition);
        put_u32(&mut out, a.concept.0);
    }

    put_u32(&mut out, ontology.methods().len() as u32);
    for m in ontology.methods() {
        put_str(&mut out, &m.name);
        put_opt(&mut out, &m.documentation);
        put_opt(&mut out, &m.definition);
        put_u32(&mut out, m.parameters.len() as u32);
        for p in &m.parameters {
            put_str(&mut out, &p.name);
            put_opt(&mut out, &p.data_type);
        }
        put_opt(&mut out, &m.return_type);
        put_u32(&mut out, m.concept.0);
    }

    put_u32(&mut out, ontology.relationships().len() as u32);
    for r in ontology.relationships() {
        put_str(&mut out, &r.name);
        put_opt(&mut out, &r.documentation);
        put_opt(&mut out, &r.definition);
        put_u64(&mut out, r.arity as u64);
        put_u32(&mut out, r.related_concepts.len() as u32);
        for name in &r.related_concepts {
            put_str(&mut out, name);
        }
    }

    put_u32(&mut out, ontology.instances().len() as u32);
    for i in ontology.instances() {
        put_str(&mut out, &i.name);
        put_u32(&mut out, i.concept.0);
        put_u32(&mut out, i.attribute_values.len() as u32);
        for (k, v) in &i.attribute_values {
            put_str(&mut out, k);
            put_str(&mut out, v);
        }
        put_u32(&mut out, i.relationship_values.len() as u32);
        for (k, v) in &i.relationship_values {
            put_str(&mut out, k);
            put_str(&mut out, v);
        }
    }

    out
}

/// Serializes a built toolkit into an `SSTSNAP1` snapshot.
pub fn encode_snapshot(toolkit: &SstToolkit) -> Vec<u8> {
    let mut out = Vec::new();
    out.extend_from_slice(SNAPSHOT_MAGIC);
    out.push(match toolkit.config().tree_mode {
        TreeMode::SuperThing => 0,
        TreeMode::MergedThing => 1,
    });
    out.push(match toolkit.config().probability_mode {
        ProbabilityModeConfig::InstanceCorpusWithFallback => 0,
        ProbabilityModeConfig::SubclassCount => 1,
    });
    let soqa = toolkit.soqa();
    put_u32(&mut out, soqa.ontology_count() as u32);
    for idx in 0..soqa.ontology_count() {
        let section = encode_ontology(soqa.ontology_at(idx));
        put_u64(&mut out, section.len() as u64);
        out.extend_from_slice(&section);
    }
    let vectors = toolkit.export_vectors();
    put_u64(&mut out, vectors.len() as u64);
    out.extend_from_slice(&vectors);
    let checksum = fnv1a(&out);
    out.extend_from_slice(&checksum.to_le_bytes());
    out
}

// ---- decoding ---------------------------------------------------------

/// Byte-slice cursor for the loader; every read is bounds-checked.
struct Cursor<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> Cursor<'a> {
    fn take(&mut self, n: usize, what: &'static str) -> Result<&'a [u8], SnapshotFormatError> {
        let end = self.pos.saturating_add(n);
        let slice = self
            .bytes
            .get(self.pos..end)
            .ok_or(SnapshotFormatError::Truncated(what))?;
        self.pos = end;
        Ok(slice)
    }

    fn u8(&mut self, what: &'static str) -> Result<u8, SnapshotFormatError> {
        Ok(self.take(1, what)?[0])
    }

    fn u32(&mut self, what: &'static str) -> Result<u32, SnapshotFormatError> {
        let b = self.take(4, what)?;
        let mut le = [0u8; 4];
        le.copy_from_slice(b);
        Ok(u32::from_le_bytes(le))
    }

    fn u64(&mut self, what: &'static str) -> Result<u64, SnapshotFormatError> {
        let b = self.take(8, what)?;
        let mut le = [0u8; 8];
        le.copy_from_slice(b);
        Ok(u64::from_le_bytes(le))
    }

    fn string(
        &mut self,
        budget: &mut Budget,
        what: &'static str,
    ) -> Result<String, SnapshotFormatError> {
        let len = self.u32(what)? as usize;
        budget.check_literal(len, what)?;
        std::str::from_utf8(self.take(len, what)?)
            .map(str::to_owned)
            .map_err(|_| SnapshotFormatError::BadUtf8(what))
    }

    fn opt_string(
        &mut self,
        budget: &mut Budget,
        what: &'static str,
    ) -> Result<Option<String>, SnapshotFormatError> {
        match self.u8(what)? {
            0 => Ok(None),
            1 => Ok(Some(self.string(budget, what)?)),
            v => Err(SnapshotFormatError::BadValue {
                field: what,
                value: u64::from(v),
            }),
        }
    }

    fn ids<T>(
        &mut self,
        budget: &mut Budget,
        what: &'static str,
        wrap: fn(u32) -> T,
    ) -> Result<Vec<T>, SnapshotFormatError> {
        let count = self.u32(what)? as usize;
        // Each id is 4 bytes of remaining input, so a hostile count is
        // caught by `take` before any large allocation.
        budget.check_literal(count.saturating_mul(4), what)?;
        let mut out = Vec::new();
        for _ in 0..count {
            out.push(wrap(self.u32(what)?));
        }
        Ok(out)
    }
}

fn decode_metadata(
    cur: &mut Cursor<'_>,
    budget: &mut Budget,
) -> Result<OntologyMetadata, SnapshotFormatError> {
    Ok(OntologyMetadata {
        name: cur.string(budget, "metadata name")?,
        author: cur.opt_string(budget, "metadata author")?,
        last_modified: cur.opt_string(budget, "metadata last_modified")?,
        documentation: cur.opt_string(budget, "metadata documentation")?,
        version: cur.opt_string(budget, "metadata version")?,
        copyright: cur.opt_string(budget, "metadata copyright")?,
        uri: cur.opt_string(budget, "metadata uri")?,
        language: cur.string(budget, "metadata language")?,
    })
}

fn decode_ontology(section: &[u8], budget: &mut Budget) -> Result<Ontology, SnapshotFormatError> {
    let mut cur = Cursor {
        bytes: section,
        pos: 0,
    };
    let metadata = decode_metadata(&mut cur, budget)?;

    let concept_count = cur.u32("concept count")?;
    let mut concepts = Vec::new();
    for _ in 0..concept_count {
        budget.item("snapshot concept")?;
        concepts.push(Concept {
            name: cur.string(budget, "concept name")?,
            documentation: cur.opt_string(budget, "concept documentation")?,
            definition: cur.opt_string(budget, "concept definition")?,
            super_concepts: cur.ids(budget, "super concepts", ConceptId)?,
            sub_concepts: cur.ids(budget, "sub concepts", ConceptId)?,
            equivalent_concepts: cur.ids(budget, "equivalent concepts", ConceptId)?,
            antonym_concepts: cur.ids(budget, "antonym concepts", ConceptId)?,
            attributes: cur.ids(budget, "concept attributes", AttributeId)?,
            methods: cur.ids(budget, "concept methods", MethodId)?,
            relationships: cur.ids(budget, "concept relationships", RelationshipId)?,
            instances: cur.ids(budget, "concept instances", InstanceId)?,
        });
    }

    let attribute_count = cur.u32("attribute count")?;
    let mut attributes = Vec::new();
    for _ in 0..attribute_count {
        budget.item("snapshot attribute")?;
        attributes.push(Attribute {
            name: cur.string(budget, "attribute name")?,
            documentation: cur.opt_string(budget, "attribute documentation")?,
            data_type: cur.opt_string(budget, "attribute data type")?,
            definition: cur.opt_string(budget, "attribute definition")?,
            concept: ConceptId(cur.u32("attribute concept")?),
        });
    }

    let method_count = cur.u32("method count")?;
    let mut methods = Vec::new();
    for _ in 0..method_count {
        budget.item("snapshot method")?;
        let name = cur.string(budget, "method name")?;
        let documentation = cur.opt_string(budget, "method documentation")?;
        let definition = cur.opt_string(budget, "method definition")?;
        let parameter_count = cur.u32("parameter count")?;
        let mut parameters = Vec::new();
        for _ in 0..parameter_count {
            budget.item("snapshot parameter")?;
            parameters.push(Parameter {
                name: cur.string(budget, "parameter name")?,
                data_type: cur.opt_string(budget, "parameter data type")?,
            });
        }
        methods.push(Method {
            name,
            documentation,
            definition,
            parameters,
            return_type: cur.opt_string(budget, "method return type")?,
            concept: ConceptId(cur.u32("method concept")?),
        });
    }

    let relationship_count = cur.u32("relationship count")?;
    let mut relationships = Vec::new();
    for _ in 0..relationship_count {
        budget.item("snapshot relationship")?;
        let name = cur.string(budget, "relationship name")?;
        let documentation = cur.opt_string(budget, "relationship documentation")?;
        let definition = cur.opt_string(budget, "relationship definition")?;
        let arity = cur.u64("relationship arity")?;
        let arity = usize::try_from(arity).map_err(|_| SnapshotFormatError::BadValue {
            field: "relationship arity",
            value: arity,
        })?;
        let related_count = cur.u32("related concept count")?;
        let mut related_concepts = Vec::new();
        for _ in 0..related_count {
            budget.item("snapshot related concept")?;
            related_concepts.push(cur.string(budget, "related concept name")?);
        }
        relationships.push(Relationship {
            name,
            documentation,
            definition,
            arity,
            related_concepts,
        });
    }

    let instance_count = cur.u32("instance count")?;
    let mut instances = Vec::new();
    for _ in 0..instance_count {
        budget.item("snapshot instance")?;
        let name = cur.string(budget, "instance name")?;
        let concept = ConceptId(cur.u32("instance concept")?);
        let attribute_value_count = cur.u32("attribute value count")?;
        let mut attribute_values = Vec::new();
        for _ in 0..attribute_value_count {
            budget.item("snapshot attribute value")?;
            let k = cur.string(budget, "attribute value name")?;
            let v = cur.string(budget, "attribute value")?;
            attribute_values.push((k, v));
        }
        let relationship_value_count = cur.u32("relationship value count")?;
        let mut relationship_values = Vec::new();
        for _ in 0..relationship_value_count {
            budget.item("snapshot relationship value")?;
            let k = cur.string(budget, "relationship value name")?;
            let v = cur.string(budget, "relationship value")?;
            relationship_values.push((k, v));
        }
        instances.push(Instance {
            name,
            concept,
            attribute_values,
            relationship_values,
        });
    }

    if cur.pos != section.len() {
        return Err(SnapshotFormatError::TrailingBytes(section.len() - cur.pos));
    }

    Ontology::from_arenas(
        metadata,
        concepts,
        attributes,
        methods,
        relationships,
        instances,
    )
    .map_err(|e| SnapshotFormatError::Ontology(e.to_string()))
}

impl SnapshotFile {
    /// Decodes and validates a snapshot under `limits`: the whole input
    /// is bounded by `max_input_bytes`, every component by `max_items`,
    /// and every string by `max_literal_bytes`. The checksum is verified
    /// before any field is parsed, so a flipped byte anywhere surfaces
    /// as [`SnapshotFormatError::Checksum`].
    pub fn from_bytes(bytes: &[u8], limits: &Limits) -> Result<SnapshotFile, SnapshotFormatError> {
        let mut budget = Budget::new(limits);
        budget.check_input(bytes.len(), "snapshot")?;

        let body_len = bytes
            .len()
            .checked_sub(8)
            .ok_or(SnapshotFormatError::Truncated("checksum"))?;
        let body = bytes.get(..body_len).unwrap_or(&[]);
        let stored = bytes.get(body_len..).unwrap_or(&[]);
        let mut le = [0u8; 8];
        if stored.len() == 8 {
            le.copy_from_slice(stored);
        }
        let expected = u64::from_le_bytes(le);
        let actual = fnv1a(body);
        if expected != actual {
            return Err(SnapshotFormatError::Checksum { expected, actual });
        }

        let mut cur = Cursor {
            bytes: body,
            pos: 0,
        };
        if cur.take(SNAPSHOT_MAGIC.len(), "magic")? != SNAPSHOT_MAGIC {
            return Err(SnapshotFormatError::BadMagic);
        }
        let tree_mode = match cur.u8("tree mode")? {
            0 => TreeMode::SuperThing,
            1 => TreeMode::MergedThing,
            v => {
                return Err(SnapshotFormatError::BadValue {
                    field: "tree mode",
                    value: u64::from(v),
                })
            }
        };
        let probability_mode = match cur.u8("probability mode")? {
            0 => ProbabilityModeConfig::InstanceCorpusWithFallback,
            1 => ProbabilityModeConfig::SubclassCount,
            v => {
                return Err(SnapshotFormatError::BadValue {
                    field: "probability mode",
                    value: u64::from(v),
                })
            }
        };

        let ontology_count = cur.u32("ontology count")?;
        let mut ontologies = Vec::new();
        for _ in 0..ontology_count {
            budget.item("snapshot ontology")?;
            let len = cur.u64("ontology section length")?;
            let len = usize::try_from(len).map_err(|_| SnapshotFormatError::BadValue {
                field: "ontology section length",
                value: len,
            })?;
            let section = cur.take(len, "ontology section")?;
            ontologies.push(decode_ontology(section, &mut budget)?);
        }

        let vectors_len = cur.u64("vectors section length")?;
        let vectors_len =
            usize::try_from(vectors_len).map_err(|_| SnapshotFormatError::BadValue {
                field: "vectors section length",
                value: vectors_len,
            })?;
        let vectors = cur.take(vectors_len, "vectors section")?.to_vec();

        if cur.pos != body.len() {
            return Err(SnapshotFormatError::TrailingBytes(body.len() - cur.pos));
        }

        Ok(SnapshotFile {
            config: SstConfig {
                tree_mode,
                probability_mode,
            },
            ontologies,
            vectors,
        })
    }
}

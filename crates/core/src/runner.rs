//! MeasureRunners (paper §3, Fig. 4): one coupling module per SimPack
//! measure, each pulling the data it needs from SOQA through the
//! [`SimilarityContext`] and producing a pairwise similarity value.
//!
//! Adding a measure to SST = implementing [`MeasureRunner`] and registering
//! it with the facade — exactly the extension mechanism the paper
//! advertises.

use std::collections::HashMap;
use std::fmt;
use std::sync::Arc;

use sst_index::{cosine_sparse, DocId, InvertedIndex, TermId};
use sst_simpack::{
    dense_unit_similarity, edge_similarity, edge_similarity_compact, jaro, jaro_fast, jaro_winkler,
    jaro_winkler_fast, jiang_conrath_similarity, jiang_conrath_similarity_compact,
    levenshtein_similarity, lin_similarity, lin_similarity_compact, monge_elkan,
    myers_sequence_similarity_from, myers_similarity_chars_from, needleman_wunsch_similarity,
    needleman_wunsch_similarity_scratch, qgram, qgram_packed_from, resnik_similarity,
    resnik_similarity_compact, sequence_similarity, shortest_path_similarity,
    shortest_path_similarity_from, smith_waterman_similarity, smith_waterman_similarity_scratch,
    tree_similarity, tree_similarity_zs_scratch, with_align_scratch, with_jaro_scratch,
    with_myers_scratch, with_zs_scratch, wu_palmer_similarity_rooted,
    wu_palmer_similarity_rooted_compact, AlignmentScoring, AncestorList, CostModel, DepthTable,
    FeatureSet, InformationContent, InternedFeatures, JaroMask, LabeledTree, MeasureKind,
    MyersPattern, NodeId, QGramPacked, SourceTables, ZsTree,
};
use sst_soqa::{GlobalConcept, Soqa};

use crate::tree::UnifiedTree;

/// Runtime metadata for a registered runner (dynamic counterpart of
/// `sst_simpack::MeasureDescriptor`, so user-supplied runners can carry
/// their own names).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct RunnerInfo {
    pub name: String,
    pub display: String,
    pub kind: MeasureKind,
    /// True when scores are guaranteed to lie in [0, 1].
    pub normalized: bool,
}

/// Everything a runner may need: the SOQA facade, the unified tree, the
/// precomputed information content, and the full-text index (one document
/// per concept).
#[derive(Clone, Copy)]
pub struct SimilarityContext<'a> {
    pub soqa: &'a Soqa,
    pub tree: &'a UnifiedTree,
    pub ic: &'a InformationContent,
    pub index: &'a InvertedIndex,
    /// Per tree node: the concept's document in `index` (`None` for the
    /// synthetic root).
    pub doc_ids: &'a [Option<DocId>],
}

impl fmt::Debug for SimilarityContext<'_> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("SimilarityContext")
            .field("nodes", &self.tree.node_count())
            .field("docs", &self.index.doc_count())
            .finish()
    }
}

impl SimilarityContext<'_> {
    /// The feature set of a concept (the paper's M₁ view): its declared and
    /// inherited attributes, methods, relationships, and typed super links.
    pub fn feature_set(&self, gc: GlobalConcept) -> FeatureSet {
        let mut set = FeatureSet::new();
        for a in self.soqa.attributes_with_inherited(gc) {
            set.insert(format!("attr:{}", a.name));
        }
        for m in self.soqa.methods_of(gc) {
            set.insert(format!("method:{}", m.name));
        }
        for r in self.soqa.relationships_of(gc) {
            set.insert(format!("rel:{}", r.name));
        }
        for s in self.soqa.super_concepts(gc) {
            set.insert(format!("type:{}", self.soqa.concept(s).name));
        }
        set
    }

    /// The token sequence of a concept (the paper's M₂ view): the
    /// *ontology-qualified* names on the root path through the unified
    /// tree, followed by the concept's property names. Qualification
    /// matters: concepts of different ontologies traverse different
    /// resources even when their local names coincide, so cross-ontology
    /// sequences share little — exactly the behaviour Table 1 shows for the
    /// Levenshtein column.
    pub fn token_sequence(&self, gc: GlobalConcept) -> Vec<String> {
        let prefix = self.soqa.ontology_at(gc.ontology).name();
        let mut tokens: Vec<String> = self
            .tree
            .root_path_names(self.soqa, gc)
            .into_iter()
            .enumerate()
            .map(|(i, name)| {
                // The Super-Thing root (position 0) is shared by design.
                if i == 0 {
                    name
                } else {
                    format!("{prefix}:{name}")
                }
            })
            .collect();
        for a in self.soqa.attributes_of(gc) {
            tokens.push(format!("{prefix}:{}", a.name));
        }
        for r in self.soqa.relationships_of(gc) {
            tokens.push(format!("{prefix}:{}", r.name));
        }
        tokens
    }

    /// The concept's name (for the character-level string measures).
    pub fn name(&self, gc: GlobalConcept) -> &str {
        &self.soqa.concept(gc).name
    }

    /// The concept's dense embedding: its TF-IDF document vector under
    /// the deterministic signed random projection of
    /// [`crate::vector::embed_tfidf`]. This is the exact computation the
    /// toolkit's `VectorStore` runs at build time, so per-pair scores and
    /// store scores agree bit-for-bit.
    pub fn dense_embedding(&self, gc: GlobalConcept) -> Vec<f64> {
        let tfidf = self.doc_ids[self.tree.node(gc) as usize]
            .map(|d| self.index.tfidf_vector(d))
            .unwrap_or_default();
        crate::vector::embed_tfidf(&tfidf, crate::vector::EMBED_DIM)
    }

    /// Labeled subtree of the unified tree rooted at `gc`, truncated at
    /// `depth` levels (for the tree-edit measure).
    pub fn subtree(&self, gc: GlobalConcept, depth: usize) -> LabeledTree {
        let mut tree = LabeledTree::new();
        let root_node = self.tree.node(gc);
        let root = tree.add_node(self.soqa.concept(gc).name.clone(), None);
        self.fill_subtree(root_node, root, depth, &mut tree);
        tree
    }

    fn fill_subtree(&self, node: u32, parent: usize, depth: usize, out: &mut LabeledTree) {
        if depth == 0 {
            return;
        }
        // Children sorted by name for order-invariance of the comparison.
        let mut kids: Vec<(String, u32)> = self
            .tree
            .taxonomy()
            .children(node)
            .iter()
            .filter_map(|&c| {
                self.tree
                    .concept(c)
                    .map(|gc| (self.soqa.concept(gc).name.clone(), c))
            })
            .collect();
        kids.sort();
        for (name, child) in kids {
            let id = out.add_node(name, Some(parent));
            self.fill_subtree(child, id, depth - 1, out);
        }
    }
}

/// Interned M₂ token: sequence and alignment DP compare these `u32` ids
/// instead of `String`s. Ids are assigned per [`PreparedContext`]; equal ids
/// ⟺ equal token strings, so the DP outcome is bit-identical.
pub type TokenId = u32;

/// Which prepared-artifact families a batch operation derives — a
/// dependency-free bitflag set. Preparing a 2 000-concept batch for a
/// single string measure should not pay for BFS tables, subtree forms, and
/// TF-IDF vectors it never reads, so the facade asks each runner for its
/// [`MeasureRunner::needs`] and prepares exactly that. Artifacts that were
/// not prepared leave their [`ConceptView`] fields `None`; every prepared
/// scorer falls back to its naive per-pair formula in that case, so a
/// mismatched (too-narrow) context degrades to the reference path instead
/// of to wrong scores.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct PrepareNeeds(u16);

impl PrepareNeeds {
    /// No batch artifacts (pure naive fallback scoring).
    pub const NONE: PrepareNeeds = PrepareNeeds(0);
    /// M₁ feature sets and their batch-interned id form.
    pub const FEATURES: PrepareNeeds = PrepareNeeds(1 << 0);
    /// M₂ token sequences, interned, plus their Myers bit-vector patterns.
    pub const TOKENS: PrepareNeeds = PrepareNeeds(1 << 1);
    /// Name character slices and Jaro bitmask tables.
    pub const NAME_CHARS: PrepareNeeds = PrepareNeeds(1 << 2);
    /// Lowercase name-token pool (Monge-Elkan).
    pub const NAME_TOKENS: PrepareNeeds = PrepareNeeds(1 << 3);
    /// Packed q-gram profiles of the names.
    pub const QGRAMS: PrepareNeeds = PrepareNeeds(1 << 4);
    /// Depth-limited subtrees in Zhang-Shasha form.
    pub const SUBTREES: PrepareNeeds = PrepareNeeds(1 << 5);
    /// TF-IDF document vectors (full-text and dense measures).
    pub const TFIDF: PrepareNeeds = PrepareNeeds(1 << 6);
    /// Per-concept BFS tables, compact ancestor lists, and depths
    /// (graph and information-content measures).
    pub const TABLES: PrepareNeeds = PrepareNeeds(1 << 7);
    /// Every artifact family (the safe default).
    pub const ALL: PrepareNeeds = PrepareNeeds(u16::MAX);

    /// Set union of two need sets.
    pub const fn union(self, other: PrepareNeeds) -> PrepareNeeds {
        PrepareNeeds(self.0 | other.0)
    }

    /// Whether every flag of `other` is set in `self`.
    pub const fn contains(self, other: PrepareNeeds) -> bool {
        self.0 & other.0 == other.0
    }
}

/// Memoized per-concept artifacts for one batch operation: everything the
/// default runners rederive per *pair* on the naive path, computed once per
/// *concept* instead. Fields gated by [`PrepareNeeds`] are `None` when the
/// batch was prepared without that artifact family.
#[derive(Debug)]
pub struct ConceptView {
    /// The concept these views describe.
    pub concept: GlobalConcept,
    /// Its node in the unified tree.
    pub node: NodeId,
    /// The concept's local name.
    pub name: String,
    /// The concept's document in the full-text index, if any.
    pub doc: Option<DocId>,
    /// M₁ feature set (attributes, methods, relationships, typed supers).
    pub features: Option<FeatureSet>,
    /// `features` interned to sorted distinct ids against the batch
    /// vocabulary — the set measures intersect these by sorted merge.
    pub features_interned: Option<InternedFeatures>,
    /// M₂ token sequence, interned to [`TokenId`]s.
    pub tokens: Option<Vec<TokenId>>,
    /// Myers bit-vector pattern over `tokens` (the bit-parallel
    /// Levenshtein core of the sequence measure).
    pub token_pattern: Option<MyersPattern>,
    /// `name` as a character slice (for the Jaro-family measures).
    pub name_chars: Option<Vec<char>>,
    /// Position bitmasks of `name_chars` for the masked Jaro kernel
    /// (`None` also for names longer than 64 characters).
    pub jaro_mask: Option<JaroMask>,
    /// `name` split into lowercase word tokens, interned across the batch
    /// (for Monge-Elkan; resolve via [`PreparedContext::name_token_pool`]).
    pub name_tokens: Option<Vec<TokenId>>,
    /// Packed (bitset-backed) padded q-gram profile of `name`.
    pub qgrams: Option<QGramPacked>,
    /// Depth-2 unified-tree subtree in preprocessed Zhang-Shasha form.
    pub subtree: Option<ZsTree>,
    /// Cached TF-IDF vector of `doc` (`Some` but empty when `doc` is
    /// `None` and the artifact family was prepared).
    pub tfidf: Option<Vec<(TermId, f64)>>,
}

/// A prepared batch context: per-concept [`ConceptView`]s plus per-concept
/// BFS tables and the shared depth table, constructed once per matrix /
/// rank / set operation. An n-concept scan costs n preparations instead of
/// O(n²) rederivations.
#[derive(Debug)]
pub struct PreparedContext<'a> {
    base: SimilarityContext<'a>,
    views: Vec<ConceptView>,
    /// First position of each distinct concept in `views`.
    index_of: HashMap<GlobalConcept, usize>,
    /// Per-concept upward + undirected BFS tables over the unified tree
    /// (empty unless [`PrepareNeeds::TABLES`] was requested).
    tables: Vec<SourceTables>,
    /// Compact sorted ancestor lists derived from `tables` (same gating).
    ancestors: Vec<AncestorList>,
    depths: Arc<DepthTable>,
    /// Distinct lowercase name tokens across the batch, indexed by the ids
    /// in [`ConceptView::name_tokens`].
    name_token_pool: Vec<String>,
}

impl<'a> PreparedContext<'a> {
    /// Builds every artifact family for `concepts` (one entry per position;
    /// duplicates are kept so positions line up with the caller's list).
    pub fn new(base: SimilarityContext<'a>, concepts: &[GlobalConcept]) -> Self {
        PreparedContext::new_with_needs(base, concepts, PrepareNeeds::ALL)
    }

    /// [`PreparedContext::new`] restricted to the artifact families in
    /// `needs` — the facade passes the union of the participating runners'
    /// [`MeasureRunner::needs`], so a single-measure batch stops paying
    /// the prepare cost of the other eighteen measures.
    pub fn new_with_needs(
        base: SimilarityContext<'a>,
        concepts: &[GlobalConcept],
        needs: PrepareNeeds,
    ) -> Self {
        let nodes: Vec<NodeId> = concepts.iter().map(|&gc| base.tree.node(gc)).collect();
        let (tables, ancestors) = if needs.contains(PrepareNeeds::TABLES) {
            let tables = base.tree.taxonomy().source_tables_for(&nodes);
            let ancestors = tables
                .iter()
                .map(|t| AncestorList::from_table(&t.up))
                .collect();
            (tables, ancestors)
        } else {
            (Vec::new(), Vec::new())
        };
        let depths = base.tree.taxonomy().depths();
        let mut interner: HashMap<String, TokenId> = HashMap::new();
        let mut feature_interner: HashMap<String, TokenId> = HashMap::new();
        let mut name_interner: HashMap<String, TokenId> = HashMap::new();
        let mut name_token_pool: Vec<String> = Vec::new();
        let mut index_of = HashMap::with_capacity(concepts.len());
        let mut views = Vec::with_capacity(concepts.len());
        for (i, (&gc, &node)) in concepts.iter().zip(&nodes).enumerate() {
            index_of.entry(gc).or_insert(i);
            let tokens: Option<Vec<TokenId>> = needs.contains(PrepareNeeds::TOKENS).then(|| {
                base.token_sequence(gc)
                    .into_iter()
                    .map(|t| {
                        let next = interner.len() as TokenId;
                        *interner.entry(t).or_insert(next)
                    })
                    .collect()
            });
            let token_pattern = tokens.as_deref().map(MyersPattern::new);
            let name = base.name(gc).to_owned();
            let name_tokens: Option<Vec<TokenId>> =
                needs.contains(PrepareNeeds::NAME_TOKENS).then(|| {
                    sst_index::tokenize(&name)
                        .into_iter()
                        .map(|t| {
                            if let Some(&id) = name_interner.get(&t) {
                                id
                            } else {
                                let id = name_token_pool.len() as TokenId;
                                name_interner.insert(t.clone(), id);
                                name_token_pool.push(t);
                                id
                            }
                        })
                        .collect()
                });
            let name_chars: Option<Vec<char>> = needs
                .contains(PrepareNeeds::NAME_CHARS)
                .then(|| name.chars().collect());
            let jaro_mask = name_chars.as_deref().and_then(JaroMask::new);
            let qgrams = if needs.contains(PrepareNeeds::QGRAMS) {
                QGramPacked::new(&name, QGRAM_Q)
            } else {
                None
            };
            let features = needs
                .contains(PrepareNeeds::FEATURES)
                .then(|| base.feature_set(gc));
            let features_interned = features.as_ref().map(|set| {
                let ids = set
                    .iter()
                    .map(|f| {
                        if let Some(&id) = feature_interner.get(f.as_str()) {
                            id
                        } else {
                            let id = feature_interner.len() as TokenId;
                            feature_interner.insert(f.clone(), id);
                            id
                        }
                    })
                    .collect();
                InternedFeatures::new(ids)
            });
            let subtree = needs
                .contains(PrepareNeeds::SUBTREES)
                .then(|| ZsTree::new(&base.subtree(gc, 2)));
            let doc = base.doc_ids[node as usize];
            let tfidf = needs
                .contains(PrepareNeeds::TFIDF)
                .then(|| doc.map(|d| base.index.tfidf_vector(d)).unwrap_or_default());
            views.push(ConceptView {
                concept: gc,
                node,
                name,
                doc,
                features,
                features_interned,
                tokens,
                token_pattern,
                name_chars,
                jaro_mask,
                name_tokens,
                qgrams,
                subtree,
                tfidf,
            });
        }
        PreparedContext {
            base,
            views,
            index_of,
            tables,
            ancestors,
            depths,
            name_token_pool,
        }
    }

    /// The distinct name tokens of the batch (the strings behind the ids in
    /// [`ConceptView::name_tokens`]).
    pub fn name_token_pool(&self) -> &[String] {
        &self.name_token_pool
    }

    /// The underlying per-pair context (for naive fallback scoring).
    pub fn base(&self) -> &SimilarityContext<'a> {
        &self.base
    }

    /// Number of prepared positions.
    pub fn len(&self) -> usize {
        self.views.len()
    }

    pub fn is_empty(&self) -> bool {
        self.views.is_empty()
    }

    /// The concept at position `i`.
    pub fn concept(&self, i: usize) -> GlobalConcept {
        self.views[i].concept
    }

    /// The memoized views of the concept at position `i`.
    pub fn view(&self, i: usize) -> &ConceptView {
        &self.views[i]
    }

    /// The BFS tables of the concept at position `i`.
    pub fn tables(&self, i: usize) -> &SourceTables {
        &self.tables[i]
    }

    /// The BFS tables of position `i`, or `None` when the context was
    /// prepared without [`PrepareNeeds::TABLES`].
    pub fn try_tables(&self, i: usize) -> Option<&SourceTables> {
        self.tables.get(i)
    }

    /// The compact ancestor list of position `i`, or `None` when the
    /// context was prepared without [`PrepareNeeds::TABLES`].
    pub fn ancestors(&self, i: usize) -> Option<&AncestorList> {
        self.ancestors.get(i)
    }

    /// The shared depth table of the unified tree.
    pub fn depths(&self) -> &DepthTable {
        &self.depths
    }

    /// First position of `gc`, if it was prepared.
    pub fn position(&self, gc: GlobalConcept) -> Option<usize> {
        self.index_of.get(&gc).copied()
    }
}

/// A measure specialized to one [`PreparedContext`]: scores pairs by
/// *position* in the prepared concept list. Implementations must be
/// bit-identical to the runner's [`MeasureRunner::similarity`] on the same
/// concepts.
pub trait PreparedMeasure: Send + Sync {
    /// Similarity of the prepared concepts at positions `a` and `b`.
    fn similarity(&self, a: usize, b: usize) -> f64;
}

/// A coupling module for one similarity measure.
pub trait MeasureRunner: Send + Sync {
    /// Metadata shown to clients (name, normalization, …).
    fn info(&self) -> RunnerInfo;
    /// Pairwise similarity of two concepts under this measure.
    fn similarity(&self, ctx: &SimilarityContext<'_>, a: GlobalConcept, b: GlobalConcept) -> f64;
    /// Batch hook: a scorer specialized to `prep`, or `None` to keep the
    /// per-pair path (the default, so user-registered runners keep working
    /// unchanged — the facade falls back to calling `similarity` per pair).
    fn prepare<'p>(&self, _prep: &'p PreparedContext<'_>) -> Option<Box<dyn PreparedMeasure + 'p>> {
        None
    }
    /// The artifact families this runner's [`MeasureRunner::prepare`] scorer
    /// reads. The facade prepares the union of the participating runners'
    /// needs; the default is the safe over-approximation so user-registered
    /// runners always see a fully-built context.
    fn needs(&self) -> PrepareNeeds {
        PrepareNeeds::ALL
    }
}

impl fmt::Debug for dyn MeasureRunner {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "MeasureRunner({})", self.info().name)
    }
}

/// Prepared scorer over M₁ feature sets: sorted-merge intersection of the
/// batch-interned id lists, folded through the measure's count-based core
/// (bit-identical to the set formula by construction — see
/// `sst_simpack::vector`). The concept-identity check mirrors the naive
/// runners' identity axiom (compare concepts, not positions: duplicated
/// concepts must still score 1).
struct PreparedFeatures<'p> {
    prep: &'p PreparedContext<'p>,
    /// Count-based core: `f(|x∩y|, |x|, |y|)`.
    counts: fn(usize, usize, usize) -> f64,
    /// Set-based reference formula (naive fallback).
    sets: fn(&FeatureSet, &FeatureSet) -> f64,
}

impl PreparedMeasure for PreparedFeatures<'_> {
    fn similarity(&self, a: usize, b: usize) -> f64 {
        let (va, vb) = (self.prep.view(a), self.prep.view(b));
        if va.concept == vb.concept {
            return 1.0; // identity axiom, even for featureless concepts
        }
        match (&va.features_interned, &vb.features_interned) {
            (Some(ia), Some(ib)) => (self.counts)(ia.intersection_size(ib), ia.len(), ib.len()),
            _ => {
                let base = self.prep.base();
                (self.sets)(&base.feature_set(va.concept), &base.feature_set(vb.concept))
            }
        }
    }
}

/// Prepared scorer over interned M₂ token sequences (alignment measures).
struct PreparedTokens<'p> {
    prep: &'p PreparedContext<'p>,
    f: fn(&[TokenId], &[TokenId]) -> f64,
    /// Reference formula over raw token strings (naive fallback).
    fallback: fn(&[String], &[String]) -> f64,
}

impl PreparedMeasure for PreparedTokens<'_> {
    fn similarity(&self, a: usize, b: usize) -> f64 {
        let (va, vb) = (self.prep.view(a), self.prep.view(b));
        match (&va.tokens, &vb.tokens) {
            (Some(ta), Some(tb)) => (self.f)(ta, tb),
            _ => {
                let base = self.prep.base();
                (self.fallback)(
                    &base.token_sequence(va.concept),
                    &base.token_sequence(vb.concept),
                )
            }
        }
    }
}

/// Prepared Levenshtein sequence scorer on the bit-parallel Myers core:
/// the pattern bit-vectors are preprocessed per concept, the column scan
/// runs over the other concept's interned ids, and the per-thread scratch
/// is reused across pairs. Bit-identical to
/// `sequence_similarity(…, CostModel::UNIT)` (pinned by the simpack
/// differential tests).
struct PreparedSeqLevenshtein<'p> {
    prep: &'p PreparedContext<'p>,
}

impl PreparedMeasure for PreparedSeqLevenshtein<'_> {
    fn similarity(&self, a: usize, b: usize) -> f64 {
        let (va, vb) = (self.prep.view(a), self.prep.view(b));
        match (&va.token_pattern, &vb.tokens) {
            (Some(pa), Some(tb)) => {
                with_myers_scratch(|s| myers_sequence_similarity_from(pa, tb, s))
            }
            _ => {
                let base = self.prep.base();
                sequence_similarity(
                    &base.token_sequence(va.concept),
                    &base.token_sequence(vb.concept),
                    CostModel::UNIT,
                )
            }
        }
    }
}

/// Prepared Jaro / Jaro-Winkler scorer: bitmask match windows for names
/// that fit one 64-bit word (`jaro_chars_masked`), per-thread scratch
/// buffers otherwise — both bit-identical to `jaro_chars`.
struct PreparedJaro<'p> {
    prep: &'p PreparedContext<'p>,
    winkler: bool,
}

impl PreparedMeasure for PreparedJaro<'_> {
    fn similarity(&self, a: usize, b: usize) -> f64 {
        let (va, vb) = (self.prep.view(a), self.prep.view(b));
        match (&va.name_chars, &vb.name_chars) {
            (Some(ca), Some(cb)) => with_jaro_scratch(|s| {
                if self.winkler {
                    jaro_winkler_fast(ca, cb, vb.jaro_mask.as_ref(), s)
                } else {
                    jaro_fast(ca, cb, vb.jaro_mask.as_ref(), s)
                }
            }),
            _ => {
                let base = self.prep.base();
                let (na, nb) = (base.name(va.concept), base.name(vb.concept));
                if self.winkler {
                    jaro_winkler(na, nb)
                } else {
                    jaro(na, nb)
                }
            }
        }
    }
}

/// Gram size of the registered q-gram measure (padded trigrams); the
/// profiles cached on [`ConceptView`] are built with the same size.
const QGRAM_Q: usize = 3;

/// Prepared q-gram scorer over packed per-concept gram profiles: a sorted
/// `u64` merge intersection instead of hash-map counting, folded through
/// the shared Dice expression (bit-identical to `qgram`).
struct PreparedQGram<'p> {
    prep: &'p PreparedContext<'p>,
}

impl PreparedMeasure for PreparedQGram<'_> {
    fn similarity(&self, a: usize, b: usize) -> f64 {
        let (va, vb) = (self.prep.view(a), self.prep.view(b));
        match (&va.qgrams, &vb.qgrams) {
            (Some(qa), Some(qb)) => qgram_packed_from(qa, qb),
            _ => {
                let base = self.prep.base();
                qgram(base.name(va.concept), base.name(vb.concept), QGRAM_Q)
            }
        }
    }
}

/// Prepared Monge-Elkan over interned name tokens. A batch's distinct
/// tokens form a small pool, so the inner [`levenshtein_similarity`] of
/// every distinct token pair is computed once at prepare time; per-pair
/// scoring then replays `monge_elkan` in both directions as pure table
/// lookups — the same inner values consumed in the same fold order, so the
/// result is bit-identical while the dominant inner DP drops from
/// O(pairs · tokens²) to O(pool²).
struct PreparedMongeElkan<'p> {
    prep: &'p PreparedContext<'p>,
    /// `rows[x][y] = levenshtein_similarity(pool[x], pool[y])`. Only the
    /// upper triangle is computed; the lower is mirrored, which is bitwise
    /// safe because the inner similarity is exactly symmetric (a symmetric
    /// integer distance over a symmetric max length).
    rows: Vec<Vec<f64>>,
}

impl<'p> PreparedMongeElkan<'p> {
    fn new(prep: &'p PreparedContext<'_>) -> Self {
        let pool = prep.name_token_pool();
        let chars: Vec<Vec<char>> = pool.iter().map(|t| t.chars().collect()).collect();
        // The inner Levenshtein runs on the bit-parallel Myers core: one
        // preprocessed pattern per pool token, one scratch for the whole
        // table build (bit-identical to `levenshtein_similarity_chars`).
        let patterns: Vec<MyersPattern> =
            chars.iter().map(|c| MyersPattern::from_chars(c)).collect();
        let mut rows: Vec<Vec<f64>> = Vec::with_capacity(pool.len());
        with_myers_scratch(|scratch| {
            for (i, x) in patterns.iter().enumerate() {
                let mut row = Vec::with_capacity(pool.len());
                for prev in &rows {
                    // Mirror of the already-computed sim(pool[j], pool[i]).
                    row.push(prev.get(i).copied().unwrap_or(0.0));
                }
                for y in chars.iter().skip(i) {
                    row.push(myers_similarity_chars_from(x, y, scratch));
                }
                rows.push(row);
            }
        });
        PreparedMongeElkan { prep, rows }
    }

    /// The precomputed inner-similarity row of token `x` (empty only if the
    /// pool itself is empty, in which case no token ids exist either).
    fn row(&self, x: TokenId) -> &[f64] {
        self.rows.get(x as usize).map(Vec::as_slice).unwrap_or(&[])
    }

    /// `monge_elkan(a, b, levenshtein_similarity)` replayed on the table.
    fn directed(&self, a: &[TokenId], b: &[TokenId]) -> f64 {
        if a.is_empty() {
            return f64::from(u8::from(b.is_empty()));
        }
        if b.is_empty() {
            return 0.0;
        }
        let mut total = 0.0;
        for &x in a {
            let row = self.row(x);
            let best = b
                .iter()
                .map(|&y| row.get(y as usize).copied().unwrap_or(0.0))
                .fold(0.0_f64, f64::max);
            total += best;
        }
        total / a.len() as f64
    }
}

impl PreparedMeasure for PreparedMongeElkan<'_> {
    fn similarity(&self, a: usize, b: usize) -> f64 {
        let (va, vb) = (self.prep.view(a), self.prep.view(b));
        match (&va.name_tokens, &vb.name_tokens) {
            (Some(ta), Some(tb)) => {
                let ab = self.directed(ta, tb);
                let ba = self.directed(tb, ta);
                (ab + ba) / 2.0
            }
            _ => {
                let base = self.prep.base();
                let ta = sst_index::tokenize(base.name(va.concept));
                let tb = sst_index::tokenize(base.name(vb.concept));
                let ra: Vec<&str> = ta.iter().map(String::as_str).collect();
                let rb: Vec<&str> = tb.iter().map(String::as_str).collect();
                let ab = monge_elkan(&ra, &rb, levenshtein_similarity);
                let ba = monge_elkan(&rb, &ra, levenshtein_similarity);
                (ab + ba) / 2.0
            }
        }
    }
}

/// Which graph formula a [`PreparedGraph`] scorer applies.
enum GraphFormula {
    ShortestPath,
    Edge,
    WuPalmerRooted,
}

/// Prepared scorer over per-concept BFS tables, compact sorted ancestor
/// lists, and the shared depth table. The compact paths scan the two
/// concepts' ancestor lists by sorted merge instead of walking full
/// node-indexed distance tables, visiting candidates in the same ascending
/// id order with the same tie-breaks (bit-identical by construction).
struct PreparedGraph<'p> {
    prep: &'p PreparedContext<'p>,
    formula: GraphFormula,
}

impl PreparedMeasure for PreparedGraph<'_> {
    fn similarity(&self, a: usize, b: usize) -> f64 {
        let (va, vb) = (self.prep.view(a), self.prep.view(b));
        match self.formula {
            GraphFormula::ShortestPath => match self.prep.try_tables(a) {
                Some(ta) => shortest_path_similarity_from(ta, vb.node),
                None => {
                    shortest_path_similarity(self.prep.base().tree.taxonomy(), va.node, vb.node)
                }
            },
            GraphFormula::Edge => match (self.prep.ancestors(a), self.prep.ancestors(b)) {
                (Some(la), Some(lb)) => {
                    edge_similarity_compact(la, lb, va.node == vb.node, self.prep.depths().max())
                }
                _ => edge_similarity(self.prep.base().tree.taxonomy(), va.node, vb.node),
            },
            GraphFormula::WuPalmerRooted => {
                match (self.prep.ancestors(a), self.prep.ancestors(b)) {
                    (Some(la), Some(lb)) => {
                        wu_palmer_similarity_rooted_compact(la, lb, self.prep.depths())
                    }
                    _ => wu_palmer_similarity_rooted(
                        self.prep.base().tree.taxonomy(),
                        va.node,
                        vb.node,
                    ),
                }
            }
        }
    }
}

/// Which IC formula a [`PreparedIc`] scorer applies.
enum IcFormula {
    Resnik,
    Lin,
    JiangConrath,
}

/// Prepared information-content scorer over compact ancestor lists: the
/// best-subsumer scan merges two sorted id lists instead of intersecting
/// node-indexed tables, with the same candidate order and tie-breaks.
struct PreparedIc<'p> {
    prep: &'p PreparedContext<'p>,
    formula: IcFormula,
}

impl PreparedMeasure for PreparedIc<'_> {
    fn similarity(&self, a: usize, b: usize) -> f64 {
        let base = self.prep.base();
        let ic = base.ic;
        let (na, nb) = (self.prep.view(a).node, self.prep.view(b).node);
        match (self.prep.ancestors(a), self.prep.ancestors(b)) {
            (Some(la), Some(lb)) => match self.formula {
                IcFormula::Resnik => resnik_similarity_compact(ic, la, lb),
                IcFormula::Lin => lin_similarity_compact(ic, na, nb, la, lb),
                IcFormula::JiangConrath => jiang_conrath_similarity_compact(ic, na, nb, la, lb),
            },
            _ => match self.formula {
                IcFormula::Resnik => resnik_similarity(base.tree.taxonomy(), ic, na, nb),
                IcFormula::Lin => lin_similarity(base.tree.taxonomy(), ic, na, nb),
                IcFormula::JiangConrath => {
                    jiang_conrath_similarity(base.tree.taxonomy(), ic, na, nb)
                }
            },
        }
    }
}

/// Prepared TF-IDF cosine over cached per-concept term vectors.
struct PreparedTfidf<'p> {
    prep: &'p PreparedContext<'p>,
}

impl PreparedMeasure for PreparedTfidf<'_> {
    fn similarity(&self, a: usize, b: usize) -> f64 {
        let (va, vb) = (self.prep.view(a), self.prep.view(b));
        let (Some(da), Some(db)) = (va.doc, vb.doc) else {
            return 0.0;
        };
        match (&va.tfidf, &vb.tfidf) {
            (Some(ta), Some(tb)) => cosine_sparse(ta, tb),
            _ => self.prep.base().index.cosine(da, db),
        }
    }
}

/// Prepared dense-embedding scorer: every prepared concept's cached
/// TF-IDF vector is projected once at prepare time, then pairs score as
/// a dim-wide dot product. The projection is the same
/// [`crate::vector::embed_tfidf`] the naive path runs per pair, so both
/// paths are bit-identical.
struct PreparedDense<'p> {
    prep: &'p PreparedContext<'p>,
    /// `None` when the context was prepared without TF-IDF vectors.
    embeddings: Option<Vec<Vec<f64>>>,
}

impl<'p> PreparedDense<'p> {
    fn new(prep: &'p PreparedContext<'_>) -> Self {
        let embeddings = (0..prep.len())
            .map(|i| {
                prep.view(i)
                    .tfidf
                    .as_ref()
                    .map(|t| crate::vector::embed_tfidf(t, crate::vector::EMBED_DIM))
            })
            .collect::<Option<Vec<_>>>();
        PreparedDense { prep, embeddings }
    }
}

impl PreparedMeasure for PreparedDense<'_> {
    fn similarity(&self, a: usize, b: usize) -> f64 {
        let (va, vb) = (self.prep.view(a), self.prep.view(b));
        if va.concept == vb.concept {
            return 1.0; // identity axiom, even for undescribed concepts
        }
        match &self.embeddings {
            Some(embeddings) => {
                let empty: &[f64] = &[];
                let ea = embeddings.get(a).map(Vec::as_slice).unwrap_or(empty);
                let eb = embeddings.get(b).map(Vec::as_slice).unwrap_or(empty);
                dense_unit_similarity(ea, eb)
            }
            None => {
                let base = self.prep.base();
                dense_unit_similarity(
                    &base.dense_embedding(va.concept),
                    &base.dense_embedding(vb.concept),
                )
            }
        }
    }
}

/// Prepared Zhang-Shasha similarity over cached subtree forms, reusing the
/// per-thread DP scratch across pairs.
struct PreparedTreeEdit<'p> {
    prep: &'p PreparedContext<'p>,
}

impl PreparedMeasure for PreparedTreeEdit<'_> {
    fn similarity(&self, a: usize, b: usize) -> f64 {
        let (va, vb) = (self.prep.view(a), self.prep.view(b));
        match (&va.subtree, &vb.subtree) {
            (Some(ta), Some(tb)) => with_zs_scratch(|s| tree_similarity_zs_scratch(ta, tb, s)),
            _ => {
                let base = self.prep.base();
                tree_similarity(&base.subtree(va.concept, 2), &base.subtree(vb.concept, 2))
            }
        }
    }
}

macro_rules! runner {
    ($(#[$doc:meta])* $ty:ident, $name:literal, $display:literal, $kind:expr,
     $normalized:literal, |$ctx:ident, $a:ident, $b:ident| $body:expr) => {
        runner!(
            $(#[$doc])* $ty, $name, $display, $kind, $normalized,
            |$ctx, $a, $b| $body,
            needs: PrepareNeeds::NONE,
            prepare: |_prep| None
        );
    };
    ($(#[$doc:meta])* $ty:ident, $name:literal, $display:literal, $kind:expr,
     $normalized:literal, |$ctx:ident, $a:ident, $b:ident| $body:expr,
     needs: $needs:expr,
     prepare: |$prep:ident| $pbody:expr) => {
        $(#[$doc])*
        #[derive(Debug, Default, Clone, Copy)]
        pub struct $ty;

        impl MeasureRunner for $ty {
            fn info(&self) -> RunnerInfo {
                RunnerInfo {
                    name: $name.to_owned(),
                    display: $display.to_owned(),
                    kind: $kind,
                    normalized: $normalized,
                }
            }

            fn similarity(
                &self,
                $ctx: &SimilarityContext<'_>,
                $a: GlobalConcept,
                $b: GlobalConcept,
            ) -> f64 {
                $body
            }

            fn prepare<'p>(
                &self,
                $prep: &'p PreparedContext<'_>,
            ) -> Option<Box<dyn PreparedMeasure + 'p>> {
                $pbody
            }

            fn needs(&self) -> PrepareNeeds {
                $needs
            }
        }
    };
}

runner!(
    /// Cosine over feature sets (Eq. 1).
    CosineRunner, "cosine", "Cosine", MeasureKind::Vector, true,
    |ctx, a, b| {
        if a == b {
            return 1.0; // identity axiom, even for featureless concepts
        }
        sst_simpack::cosine(&ctx.feature_set(a), &ctx.feature_set(b))
    },
    needs: PrepareNeeds::FEATURES,
    prepare: |prep| Some(Box::new(PreparedFeatures {
        prep,
        counts: sst_simpack::cosine_from_counts,
        sets: sst_simpack::cosine,
    }))
);
runner!(
    /// Extended Jaccard over feature sets (Eq. 2).
    JaccardRunner, "jaccard", "Extended Jaccard", MeasureKind::Vector, true,
    |ctx, a, b| {
        if a == b {
            return 1.0; // identity axiom, even for featureless concepts
        }
        sst_simpack::jaccard(&ctx.feature_set(a), &ctx.feature_set(b))
    },
    needs: PrepareNeeds::FEATURES,
    prepare: |prep| Some(Box::new(PreparedFeatures {
        prep,
        counts: sst_simpack::jaccard_from_counts,
        sets: sst_simpack::jaccard,
    }))
);
runner!(
    /// Overlap over feature sets (Eq. 3).
    OverlapRunner, "overlap", "Overlap", MeasureKind::Vector, true,
    |ctx, a, b| {
        if a == b {
            return 1.0; // identity axiom, even for featureless concepts
        }
        sst_simpack::overlap(&ctx.feature_set(a), &ctx.feature_set(b))
    },
    needs: PrepareNeeds::FEATURES,
    prepare: |prep| Some(Box::new(PreparedFeatures {
        prep,
        counts: sst_simpack::overlap_from_counts,
        sets: sst_simpack::overlap,
    }))
);
runner!(
    /// Dice over feature sets (extension).
    DiceRunner, "dice", "Dice", MeasureKind::Vector, true,
    |ctx, a, b| {
        if a == b {
            return 1.0; // identity axiom, even for featureless concepts
        }
        sst_simpack::dice(&ctx.feature_set(a), &ctx.feature_set(b))
    },
    needs: PrepareNeeds::FEATURES,
    prepare: |prep| Some(Box::new(PreparedFeatures {
        prep,
        counts: sst_simpack::dice_from_counts,
        sets: sst_simpack::dice,
    }))
);
runner!(
    /// Normalized token-sequence edit distance over M₂ sequences (Eq. 4).
    LevenshteinRunner, "levenshtein", "Levenshtein", MeasureKind::Sequence, true,
    |ctx, a, b| {
        let x = ctx.token_sequence(a);
        let y = ctx.token_sequence(b);
        sequence_similarity(&x, &y, CostModel::UNIT)
    },
    needs: PrepareNeeds::TOKENS,
    prepare: |prep| Some(Box::new(PreparedSeqLevenshtein { prep }))
);
runner!(
    /// Jaro on concept names (SecondString extension).
    JaroRunner, "jaro", "Jaro", MeasureKind::String, true,
    |ctx, a, b| jaro(ctx.name(a), ctx.name(b)),
    needs: PrepareNeeds::NAME_CHARS,
    prepare: |prep| Some(Box::new(PreparedJaro { prep, winkler: false }))
);
runner!(
    /// Jaro-Winkler on concept names (SecondString extension).
    JaroWinklerRunner, "jaro_winkler", "Jaro-Winkler", MeasureKind::String, true,
    |ctx, a, b| jaro_winkler(ctx.name(a), ctx.name(b)),
    needs: PrepareNeeds::NAME_CHARS,
    prepare: |prep| Some(Box::new(PreparedJaro { prep, winkler: true }))
);
runner!(
    /// Padded trigram Dice on concept names (SimMetrics extension).
    QGramRunner, "qgram", "Q-Gram", MeasureKind::String, true,
    |ctx, a, b| qgram(ctx.name(a), ctx.name(b), QGRAM_Q),
    needs: PrepareNeeds::QGRAMS,
    prepare: |prep| Some(Box::new(PreparedQGram { prep }))
);
runner!(
    /// Monge-Elkan over name tokens with Levenshtein inner similarity,
    /// symmetrized by averaging both directions.
    MongeElkanRunner, "monge_elkan", "Monge-Elkan", MeasureKind::String, true,
    |ctx, a, b| {
        let ta = sst_index::tokenize(ctx.name(a));
        let tb = sst_index::tokenize(ctx.name(b));
        let ra: Vec<&str> = ta.iter().map(String::as_str).collect();
        let rb: Vec<&str> = tb.iter().map(String::as_str).collect();
        let ab = monge_elkan(&ra, &rb, levenshtein_similarity);
        let ba = monge_elkan(&rb, &ra, levenshtein_similarity);
        (ab + ba) / 2.0
    },
    needs: PrepareNeeds::NAME_TOKENS,
    prepare: |prep| Some(Box::new(PreparedMongeElkan::new(prep)))
);
runner!(
    /// `1 / (1 + len)` over the undirected shortest path in the unified
    /// tree.
    ShortestPathRunner, "shortest_path", "Shortest Path", MeasureKind::Graph, true,
    |ctx, a, b| {
        shortest_path_similarity(ctx.tree.taxonomy(), ctx.tree.node(a), ctx.tree.node(b))
    },
    needs: PrepareNeeds::TABLES,
    prepare: |prep| Some(Box::new(PreparedGraph { prep, formula: GraphFormula::ShortestPath }))
);
runner!(
    /// Normalized edge counting (Eq. 5).
    EdgeRunner, "edge", "Edge Counting", MeasureKind::Graph, true,
    |ctx, a, b| edge_similarity(ctx.tree.taxonomy(), ctx.tree.node(a), ctx.tree.node(b)),
    needs: PrepareNeeds::TABLES,
    prepare: |prep| Some(Box::new(PreparedGraph { prep, formula: GraphFormula::Edge }))
);
runner!(
    /// Wu & Palmer conceptual similarity (Eq. 6) — the paper's "Conceptual
    /// Similarity" column. Uses the rooted (node-counted depth) convention
    /// so cross-ontology pairs keep a small nonzero score, as in Table 1.
    WuPalmerRunner, "wu_palmer", "Conceptual Similarity", MeasureKind::Graph, true,
    |ctx, a, b| {
        wu_palmer_similarity_rooted(ctx.tree.taxonomy(), ctx.tree.node(a), ctx.tree.node(b))
    },
    needs: PrepareNeeds::TABLES,
    prepare: |prep| Some(Box::new(PreparedGraph { prep, formula: GraphFormula::WuPalmerRooted }))
);
runner!(
    /// Resnik information content similarity (Eq. 7) — **unnormalized**,
    /// reported in bits.
    ResnikRunner, "resnik", "Resnik", MeasureKind::InformationTheoretic, false,
    |ctx, a, b| {
        resnik_similarity(ctx.tree.taxonomy(), ctx.ic, ctx.tree.node(a), ctx.tree.node(b))
    },
    needs: PrepareNeeds::TABLES,
    prepare: |prep| Some(Box::new(PreparedIc { prep, formula: IcFormula::Resnik }))
);
runner!(
    /// Lin similarity (Eq. 8).
    LinRunner, "lin", "Lin", MeasureKind::InformationTheoretic, true,
    |ctx, a, b| {
        lin_similarity(ctx.tree.taxonomy(), ctx.ic, ctx.tree.node(a), ctx.tree.node(b))
    },
    needs: PrepareNeeds::TABLES,
    prepare: |prep| Some(Box::new(PreparedIc { prep, formula: IcFormula::Lin }))
);
runner!(
    /// Jiang-Conrath similarity (IC extension).
    JiangConrathRunner, "jiang_conrath", "Jiang-Conrath",
    MeasureKind::InformationTheoretic, true,
    |ctx, a, b| {
        jiang_conrath_similarity(ctx.tree.taxonomy(), ctx.ic, ctx.tree.node(a), ctx.tree.node(b))
    },
    needs: PrepareNeeds::TABLES,
    prepare: |prep| Some(Box::new(PreparedIc { prep, formula: IcFormula::JiangConrath }))
);
runner!(
    /// TF-IDF cosine over the concepts' exported full-text descriptions —
    /// the paper's Lucene-backed measure.
    TfidfRunner, "tfidf", "TFIDF", MeasureKind::FullText, true,
    |ctx, a, b| {
        let (Some(da), Some(db)) = (
            ctx.doc_ids[ctx.tree.node(a) as usize],
            ctx.doc_ids[ctx.tree.node(b) as usize],
        ) else {
            return 0.0;
        };
        ctx.index.cosine(da, db)
    },
    needs: PrepareNeeds::TFIDF,
    prepare: |prep| Some(Box::new(PreparedTfidf { prep }))
);
runner!(
    /// Zhang-Shasha tree edit similarity of the concepts' subtrees
    /// (depth-limited to 2) — the future-work tree measure.
    TreeEditRunner, "tree_edit", "Tree Edit Distance", MeasureKind::Tree, true,
    |ctx, a, b| tree_similarity(&ctx.subtree(a, 2), &ctx.subtree(b, 2)),
    needs: PrepareNeeds::SUBTREES,
    prepare: |prep| Some(Box::new(PreparedTreeEdit { prep }))
);
runner!(
    /// Needleman-Wunsch global alignment of the M₂ token sequences
    /// (SimPack's alignment-based sequence measure).
    NeedlemanWunschRunner, "needleman_wunsch", "Needleman-Wunsch",
    MeasureKind::Sequence, true,
    |ctx, a, b| {
        let x = ctx.token_sequence(a);
        let y = ctx.token_sequence(b);
        needleman_wunsch_similarity(&x, &y, AlignmentScoring::default())
    },
    needs: PrepareNeeds::TOKENS,
    prepare: |prep| Some(Box::new(PreparedTokens {
        prep,
        f: |x, y| {
            with_align_scratch(|s| {
                needleman_wunsch_similarity_scratch(x, y, AlignmentScoring::default(), s)
            })
        },
        fallback: |x, y| needleman_wunsch_similarity(x, y, AlignmentScoring::default()),
    }))
);
runner!(
    /// Smith-Waterman local alignment of the M₂ token sequences: scores the
    /// best-matching shared *subpath* (e.g. a common taxonomy fragment).
    SmithWatermanRunner, "smith_waterman", "Smith-Waterman",
    MeasureKind::Sequence, true,
    |ctx, a, b| {
        let x = ctx.token_sequence(a);
        let y = ctx.token_sequence(b);
        smith_waterman_similarity(&x, &y, AlignmentScoring::default())
    },
    needs: PrepareNeeds::TOKENS,
    prepare: |prep| Some(Box::new(PreparedTokens {
        prep,
        f: |x, y| {
            with_align_scratch(|s| {
                smith_waterman_similarity_scratch(x, y, AlignmentScoring::default(), s)
            })
        },
        fallback: |x, y| smith_waterman_similarity(x, y, AlignmentScoring::default()),
    }))
);

runner!(
    /// Shifted unit cosine over dense concept embeddings — the measure
    /// behind the toolkit's vector-retrieval subsystem. Embeddings are
    /// deterministic signed random projections of the TF-IDF document
    /// vectors (see `crate::vector`); the shifted unit cosine
    /// `(1 + x·y)/2` is a strictly monotone transform of cosine, so
    /// rankings agree with cosine order while scores stay in [0, 1].
    DenseVectorRunner, "dense_vector", "Dense Vector", MeasureKind::Vector, true,
    |ctx, a, b| {
        if a == b {
            return 1.0; // identity axiom, even for undescribed concepts
        }
        dense_unit_similarity(&ctx.dense_embedding(a), &ctx.dense_embedding(b))
    },
    needs: PrepareNeeds::TFIDF,
    prepare: |prep| Some(Box::new(PreparedDense::new(prep)))
);

/// The default runner set, in registration order. The position of each
/// runner is its paper-style integer measure constant (see
/// `facade::measure_ids`).
pub fn default_runners() -> Vec<Box<dyn MeasureRunner>> {
    vec![
        Box::new(CosineRunner),
        Box::new(JaccardRunner),
        Box::new(OverlapRunner),
        Box::new(DiceRunner),
        Box::new(LevenshteinRunner),
        Box::new(JaroRunner),
        Box::new(JaroWinklerRunner),
        Box::new(QGramRunner),
        Box::new(MongeElkanRunner),
        Box::new(ShortestPathRunner),
        Box::new(EdgeRunner),
        Box::new(WuPalmerRunner),
        Box::new(ResnikRunner),
        Box::new(LinRunner),
        Box::new(JiangConrathRunner),
        Box::new(TfidfRunner),
        Box::new(TreeEditRunner),
        Box::new(NeedlemanWunschRunner),
        Box::new(SmithWatermanRunner),
        Box::new(DenseVectorRunner),
    ]
}

//! MeasureRunners (paper §3, Fig. 4): one coupling module per SimPack
//! measure, each pulling the data it needs from SOQA through the
//! [`SimilarityContext`] and producing a pairwise similarity value.
//!
//! Adding a measure to SST = implementing [`MeasureRunner`] and registering
//! it with the facade — exactly the extension mechanism the paper
//! advertises.

use std::fmt;

use sst_index::{DocId, InvertedIndex};
use sst_simpack::{
    edge_similarity, jaro, jaro_winkler, jiang_conrath_similarity, levenshtein_similarity,
    lin_similarity, monge_elkan, needleman_wunsch_similarity, qgram, resnik_similarity,
    sequence_similarity, shortest_path_similarity, smith_waterman_similarity, tree_similarity,
    wu_palmer_similarity_rooted, AlignmentScoring, CostModel, FeatureSet, InformationContent,
    LabeledTree, MeasureKind,
};
use sst_soqa::{GlobalConcept, Soqa};

use crate::tree::UnifiedTree;

/// Runtime metadata for a registered runner (dynamic counterpart of
/// `sst_simpack::MeasureDescriptor`, so user-supplied runners can carry
/// their own names).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct RunnerInfo {
    pub name: String,
    pub display: String,
    pub kind: MeasureKind,
    /// True when scores are guaranteed to lie in [0, 1].
    pub normalized: bool,
}

/// Everything a runner may need: the SOQA facade, the unified tree, the
/// precomputed information content, and the full-text index (one document
/// per concept).
pub struct SimilarityContext<'a> {
    pub soqa: &'a Soqa,
    pub tree: &'a UnifiedTree,
    pub ic: &'a InformationContent,
    pub index: &'a InvertedIndex,
    /// Per tree node: the concept's document in `index` (`None` for the
    /// synthetic root).
    pub doc_ids: &'a [Option<DocId>],
}

impl fmt::Debug for SimilarityContext<'_> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("SimilarityContext")
            .field("nodes", &self.tree.node_count())
            .field("docs", &self.index.doc_count())
            .finish()
    }
}

impl SimilarityContext<'_> {
    /// The feature set of a concept (the paper's M₁ view): its declared and
    /// inherited attributes, methods, relationships, and typed super links.
    pub fn feature_set(&self, gc: GlobalConcept) -> FeatureSet {
        let mut set = FeatureSet::new();
        for a in self.soqa.attributes_with_inherited(gc) {
            set.insert(format!("attr:{}", a.name));
        }
        for m in self.soqa.methods_of(gc) {
            set.insert(format!("method:{}", m.name));
        }
        for r in self.soqa.relationships_of(gc) {
            set.insert(format!("rel:{}", r.name));
        }
        for s in self.soqa.super_concepts(gc) {
            set.insert(format!("type:{}", self.soqa.concept(s).name));
        }
        set
    }

    /// The token sequence of a concept (the paper's M₂ view): the
    /// *ontology-qualified* names on the root path through the unified
    /// tree, followed by the concept's property names. Qualification
    /// matters: concepts of different ontologies traverse different
    /// resources even when their local names coincide, so cross-ontology
    /// sequences share little — exactly the behaviour Table 1 shows for the
    /// Levenshtein column.
    pub fn token_sequence(&self, gc: GlobalConcept) -> Vec<String> {
        let prefix = self.soqa.ontology_at(gc.ontology).name();
        let mut tokens: Vec<String> = self
            .tree
            .root_path_names(self.soqa, gc)
            .into_iter()
            .enumerate()
            .map(|(i, name)| {
                // The Super-Thing root (position 0) is shared by design.
                if i == 0 {
                    name
                } else {
                    format!("{prefix}:{name}")
                }
            })
            .collect();
        for a in self.soqa.attributes_of(gc) {
            tokens.push(format!("{prefix}:{}", a.name));
        }
        for r in self.soqa.relationships_of(gc) {
            tokens.push(format!("{prefix}:{}", r.name));
        }
        tokens
    }

    /// The concept's name (for the character-level string measures).
    pub fn name(&self, gc: GlobalConcept) -> &str {
        &self.soqa.concept(gc).name
    }

    /// Labeled subtree of the unified tree rooted at `gc`, truncated at
    /// `depth` levels (for the tree-edit measure).
    pub fn subtree(&self, gc: GlobalConcept, depth: usize) -> LabeledTree {
        let mut tree = LabeledTree::new();
        let root_node = self.tree.node(gc);
        let root = tree.add_node(self.soqa.concept(gc).name.clone(), None);
        self.fill_subtree(root_node, root, depth, &mut tree);
        tree
    }

    fn fill_subtree(&self, node: u32, parent: usize, depth: usize, out: &mut LabeledTree) {
        if depth == 0 {
            return;
        }
        // Children sorted by name for order-invariance of the comparison.
        let mut kids: Vec<(String, u32)> = self
            .tree
            .taxonomy()
            .children(node)
            .iter()
            .filter_map(|&c| {
                self.tree
                    .concept(c)
                    .map(|gc| (self.soqa.concept(gc).name.clone(), c))
            })
            .collect();
        kids.sort();
        for (name, child) in kids {
            let id = out.add_node(name, Some(parent));
            self.fill_subtree(child, id, depth - 1, out);
        }
    }
}

/// A coupling module for one similarity measure.
pub trait MeasureRunner: Send + Sync {
    /// Metadata shown to clients (name, normalization, …).
    fn info(&self) -> RunnerInfo;
    /// Pairwise similarity of two concepts under this measure.
    fn similarity(&self, ctx: &SimilarityContext<'_>, a: GlobalConcept, b: GlobalConcept) -> f64;
}

impl fmt::Debug for dyn MeasureRunner {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "MeasureRunner({})", self.info().name)
    }
}

macro_rules! runner {
    ($(#[$doc:meta])* $ty:ident, $name:literal, $display:literal, $kind:expr,
     $normalized:literal, |$ctx:ident, $a:ident, $b:ident| $body:expr) => {
        $(#[$doc])*
        #[derive(Debug, Default, Clone, Copy)]
        pub struct $ty;

        impl MeasureRunner for $ty {
            fn info(&self) -> RunnerInfo {
                RunnerInfo {
                    name: $name.to_owned(),
                    display: $display.to_owned(),
                    kind: $kind,
                    normalized: $normalized,
                }
            }

            fn similarity(
                &self,
                $ctx: &SimilarityContext<'_>,
                $a: GlobalConcept,
                $b: GlobalConcept,
            ) -> f64 {
                $body
            }
        }
    };
}

runner!(
    /// Cosine over feature sets (Eq. 1).
    CosineRunner, "cosine", "Cosine", MeasureKind::Vector, true,
    |ctx, a, b| {
        if a == b {
            return 1.0; // identity axiom, even for featureless concepts
        }
        sst_simpack::cosine(&ctx.feature_set(a), &ctx.feature_set(b))
    }
);
runner!(
    /// Extended Jaccard over feature sets (Eq. 2).
    JaccardRunner, "jaccard", "Extended Jaccard", MeasureKind::Vector, true,
    |ctx, a, b| {
        if a == b {
            return 1.0; // identity axiom, even for featureless concepts
        }
        sst_simpack::jaccard(&ctx.feature_set(a), &ctx.feature_set(b))
    }
);
runner!(
    /// Overlap over feature sets (Eq. 3).
    OverlapRunner, "overlap", "Overlap", MeasureKind::Vector, true,
    |ctx, a, b| {
        if a == b {
            return 1.0; // identity axiom, even for featureless concepts
        }
        sst_simpack::overlap(&ctx.feature_set(a), &ctx.feature_set(b))
    }
);
runner!(
    /// Dice over feature sets (extension).
    DiceRunner, "dice", "Dice", MeasureKind::Vector, true,
    |ctx, a, b| {
        if a == b {
            return 1.0; // identity axiom, even for featureless concepts
        }
        sst_simpack::dice(&ctx.feature_set(a), &ctx.feature_set(b))
    }
);
runner!(
    /// Normalized token-sequence edit distance over M₂ sequences (Eq. 4).
    LevenshteinRunner, "levenshtein", "Levenshtein", MeasureKind::Sequence, true,
    |ctx, a, b| {
        let x = ctx.token_sequence(a);
        let y = ctx.token_sequence(b);
        sequence_similarity(&x, &y, CostModel::UNIT)
    }
);
runner!(
    /// Jaro on concept names (SecondString extension).
    JaroRunner, "jaro", "Jaro", MeasureKind::String, true,
    |ctx, a, b| jaro(ctx.name(a), ctx.name(b))
);
runner!(
    /// Jaro-Winkler on concept names (SecondString extension).
    JaroWinklerRunner, "jaro_winkler", "Jaro-Winkler", MeasureKind::String, true,
    |ctx, a, b| jaro_winkler(ctx.name(a), ctx.name(b))
);
runner!(
    /// Padded trigram Dice on concept names (SimMetrics extension).
    QGramRunner, "qgram", "Q-Gram", MeasureKind::String, true,
    |ctx, a, b| qgram(ctx.name(a), ctx.name(b), 3)
);
runner!(
    /// Monge-Elkan over name tokens with Levenshtein inner similarity,
    /// symmetrized by averaging both directions.
    MongeElkanRunner, "monge_elkan", "Monge-Elkan", MeasureKind::String, true,
    |ctx, a, b| {
        let ta = sst_index::tokenize(ctx.name(a));
        let tb = sst_index::tokenize(ctx.name(b));
        let ra: Vec<&str> = ta.iter().map(String::as_str).collect();
        let rb: Vec<&str> = tb.iter().map(String::as_str).collect();
        let ab = monge_elkan(&ra, &rb, levenshtein_similarity);
        let ba = monge_elkan(&rb, &ra, levenshtein_similarity);
        (ab + ba) / 2.0
    }
);
runner!(
    /// `1 / (1 + len)` over the undirected shortest path in the unified
    /// tree.
    ShortestPathRunner, "shortest_path", "Shortest Path", MeasureKind::Graph, true,
    |ctx, a, b| {
        shortest_path_similarity(ctx.tree.taxonomy(), ctx.tree.node(a), ctx.tree.node(b))
    }
);
runner!(
    /// Normalized edge counting (Eq. 5).
    EdgeRunner, "edge", "Edge Counting", MeasureKind::Graph, true,
    |ctx, a, b| edge_similarity(ctx.tree.taxonomy(), ctx.tree.node(a), ctx.tree.node(b))
);
runner!(
    /// Wu & Palmer conceptual similarity (Eq. 6) — the paper's "Conceptual
    /// Similarity" column. Uses the rooted (node-counted depth) convention
    /// so cross-ontology pairs keep a small nonzero score, as in Table 1.
    WuPalmerRunner, "wu_palmer", "Conceptual Similarity", MeasureKind::Graph, true,
    |ctx, a, b| {
        wu_palmer_similarity_rooted(ctx.tree.taxonomy(), ctx.tree.node(a), ctx.tree.node(b))
    }
);
runner!(
    /// Resnik information content similarity (Eq. 7) — **unnormalized**,
    /// reported in bits.
    ResnikRunner, "resnik", "Resnik", MeasureKind::InformationTheoretic, false,
    |ctx, a, b| {
        resnik_similarity(ctx.tree.taxonomy(), ctx.ic, ctx.tree.node(a), ctx.tree.node(b))
    }
);
runner!(
    /// Lin similarity (Eq. 8).
    LinRunner, "lin", "Lin", MeasureKind::InformationTheoretic, true,
    |ctx, a, b| {
        lin_similarity(ctx.tree.taxonomy(), ctx.ic, ctx.tree.node(a), ctx.tree.node(b))
    }
);
runner!(
    /// Jiang-Conrath similarity (IC extension).
    JiangConrathRunner, "jiang_conrath", "Jiang-Conrath",
    MeasureKind::InformationTheoretic, true,
    |ctx, a, b| {
        jiang_conrath_similarity(ctx.tree.taxonomy(), ctx.ic, ctx.tree.node(a), ctx.tree.node(b))
    }
);
runner!(
    /// TF-IDF cosine over the concepts' exported full-text descriptions —
    /// the paper's Lucene-backed measure.
    TfidfRunner, "tfidf", "TFIDF", MeasureKind::FullText, true,
    |ctx, a, b| {
        let (Some(da), Some(db)) = (
            ctx.doc_ids[ctx.tree.node(a) as usize],
            ctx.doc_ids[ctx.tree.node(b) as usize],
        ) else {
            return 0.0;
        };
        ctx.index.cosine(da, db)
    }
);
runner!(
    /// Zhang-Shasha tree edit similarity of the concepts' subtrees
    /// (depth-limited to 2) — the future-work tree measure.
    TreeEditRunner, "tree_edit", "Tree Edit Distance", MeasureKind::Tree, true,
    |ctx, a, b| tree_similarity(&ctx.subtree(a, 2), &ctx.subtree(b, 2))
);
runner!(
    /// Needleman-Wunsch global alignment of the M₂ token sequences
    /// (SimPack's alignment-based sequence measure).
    NeedlemanWunschRunner, "needleman_wunsch", "Needleman-Wunsch",
    MeasureKind::Sequence, true,
    |ctx, a, b| {
        let x = ctx.token_sequence(a);
        let y = ctx.token_sequence(b);
        needleman_wunsch_similarity(&x, &y, AlignmentScoring::default())
    }
);
runner!(
    /// Smith-Waterman local alignment of the M₂ token sequences: scores the
    /// best-matching shared *subpath* (e.g. a common taxonomy fragment).
    SmithWatermanRunner, "smith_waterman", "Smith-Waterman",
    MeasureKind::Sequence, true,
    |ctx, a, b| {
        let x = ctx.token_sequence(a);
        let y = ctx.token_sequence(b);
        smith_waterman_similarity(&x, &y, AlignmentScoring::default())
    }
);

/// The default runner set, in registration order. The position of each
/// runner is its paper-style integer measure constant (see
/// `facade::measure_ids`).
pub fn default_runners() -> Vec<Box<dyn MeasureRunner>> {
    vec![
        Box::new(CosineRunner),
        Box::new(JaccardRunner),
        Box::new(OverlapRunner),
        Box::new(DiceRunner),
        Box::new(LevenshteinRunner),
        Box::new(JaroRunner),
        Box::new(JaroWinklerRunner),
        Box::new(QGramRunner),
        Box::new(MongeElkanRunner),
        Box::new(ShortestPathRunner),
        Box::new(EdgeRunner),
        Box::new(WuPalmerRunner),
        Box::new(ResnikRunner),
        Box::new(LinRunner),
        Box::new(JiangConrathRunner),
        Box::new(TfidfRunner),
        Box::new(TreeEditRunner),
        Box::new(NeedlemanWunschRunner),
        Box::new(SmithWatermanRunner),
    ]
}

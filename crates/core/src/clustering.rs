//! Concept clustering on top of the similarity services — "data clustering
//! and mining" from the paper's list of application areas.
//!
//! [`cluster`] runs agglomerative hierarchical clustering (configurable
//! linkage) over a concept set's pairwise similarity matrix and returns the
//! dendrogram; [`Dendrogram::cut`] flattens it into clusters at a
//! similarity threshold, and [`Dendrogram::render`] draws it as ASCII.

use crate::error::{Result, SstError};
use crate::facade::{ConceptSet, SstToolkit};

/// Linkage criterion for merging clusters.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Linkage {
    /// Similarity of the closest pair (single link).
    Single,
    /// Similarity of the farthest pair (complete link).
    Complete,
    /// Unweighted average pairwise similarity (UPGMA).
    Average,
}

/// A node of the dendrogram.
#[derive(Debug, Clone)]
pub enum Dendrogram {
    /// One concept, by qualified name.
    Leaf(String),
    /// A merge of two subtrees at the given similarity level.
    Merge {
        similarity: f64,
        left: Box<Dendrogram>,
        right: Box<Dendrogram>,
    },
}

impl Dendrogram {
    /// Leaves in left-to-right order.
    pub fn leaves(&self) -> Vec<&str> {
        match self {
            Dendrogram::Leaf(name) => vec![name.as_str()],
            Dendrogram::Merge { left, right, .. } => {
                let mut out = left.leaves();
                out.extend(right.leaves());
                out
            }
        }
    }

    /// Cuts the dendrogram at `threshold`: merges below the threshold are
    /// split apart, producing flat clusters.
    pub fn cut(&self, threshold: f64) -> Vec<Vec<String>> {
        match self {
            Dendrogram::Leaf(name) => vec![vec![name.clone()]],
            Dendrogram::Merge {
                similarity,
                left,
                right,
            } => {
                if *similarity >= threshold {
                    let mut members: Vec<String> =
                        self.leaves().into_iter().map(str::to_owned).collect();
                    members.sort();
                    vec![members]
                } else {
                    let mut out = left.cut(threshold);
                    out.extend(right.cut(threshold));
                    out
                }
            }
        }
    }

    /// ASCII rendering, one leaf per line with merge levels as indentation.
    pub fn render(&self) -> String {
        let mut out = String::new();
        self.render_into(&mut out, 0);
        out
    }

    fn render_into(&self, out: &mut String, depth: usize) {
        match self {
            Dendrogram::Leaf(name) => {
                out.push_str(&"  ".repeat(depth));
                out.push_str(name);
                out.push('\n');
            }
            Dendrogram::Merge {
                similarity,
                left,
                right,
            } => {
                out.push_str(&"  ".repeat(depth));
                out.push_str(&format!("┐ {similarity:.3}\n"));
                left.render_into(out, depth + 1);
                right.render_into(out, depth + 1);
            }
        }
    }
}

/// Clusters a concept set under `measure` with the given linkage. Returns
/// the dendrogram root (or an error for empty sets / unknown concepts).
pub fn cluster(
    sst: &SstToolkit,
    set: &ConceptSet,
    measure: usize,
    linkage: Linkage,
) -> Result<Dendrogram> {
    sst.metrics().inc("core.cluster.calls");
    let _span = sst.metrics().span("core.cluster.latency");
    // The pairwise matrix dominates clustering cost; build it on the
    // work-stealing parallel path (bit-identical to the serial service).
    let workers = crate::sched::default_workers();
    let (labels, matrix) = sst.similarity_matrix_parallel(set, measure, workers)?;
    if labels.is_empty() {
        return Err(SstError::InvalidArgument(
            "cannot cluster an empty concept set".into(),
        ));
    }
    cluster_matrix(&labels, &matrix, linkage)
        .ok_or_else(|| SstError::InvalidArgument("cannot cluster an empty concept set".into()))
}

/// Clustering over a precomputed similarity matrix (exposed for tests and
/// for matrices built from combined measures).
/// Returns `None` when `labels` is empty (there is nothing to cluster) or
/// when the matrix's row count does not match the label count.
pub fn cluster_matrix(
    labels: &[String],
    matrix: &[Vec<f64>],
    linkage: Linkage,
) -> Option<Dendrogram> {
    if labels.len() != matrix.len() {
        return None;
    }
    // Active clusters: dendrogram + member indices.
    let mut clusters: Vec<(Dendrogram, Vec<usize>)> = labels
        .iter()
        .enumerate()
        .map(|(i, l)| (Dendrogram::Leaf(l.clone()), vec![i]))
        .collect();

    let link = |a: &[usize], b: &[usize]| -> f64 {
        let pairs = a.iter().flat_map(|&i| b.iter().map(move |&j| matrix[i][j]));
        match linkage {
            Linkage::Single => pairs.fold(f64::NEG_INFINITY, f64::max),
            Linkage::Complete => pairs.fold(f64::INFINITY, f64::min),
            Linkage::Average => {
                let (sum, n) = pairs.fold((0.0, 0usize), |(s, n), v| (s + v, n + 1));
                sum / n as f64
            }
        }
    };

    while clusters.len() > 1 {
        // Find the most similar pair under the linkage.
        let mut best = (0usize, 1usize, f64::NEG_INFINITY);
        for i in 0..clusters.len() {
            for j in (i + 1)..clusters.len() {
                let s = link(&clusters[i].1, &clusters[j].1);
                if s > best.2 {
                    best = (i, j, s);
                }
            }
        }
        let (i, j, similarity) = best;
        let (right_tree, right_members) = clusters.remove(j);
        let (left_tree, left_members) = clusters.remove(i);
        let mut members = left_members;
        members.extend(right_members);
        clusters.push((
            Dendrogram::Merge {
                similarity,
                left: Box::new(left_tree),
                right: Box::new(right_tree),
            },
            members,
        ));
    }
    clusters.pop().map(|(tree, _)| tree)
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Two tight groups {a, b} and {c, d} with weak cross similarity.
    fn two_groups() -> (Vec<String>, Vec<Vec<f64>>) {
        let labels: Vec<String> = ["a", "b", "c", "d"].iter().map(|s| s.to_string()).collect();
        let matrix = vec![
            vec![1.0, 0.9, 0.1, 0.2],
            vec![0.9, 1.0, 0.15, 0.1],
            vec![0.1, 0.15, 1.0, 0.8],
            vec![0.2, 0.1, 0.8, 1.0],
        ];
        (labels, matrix)
    }

    #[test]
    fn recovers_two_groups_under_every_linkage() {
        let (labels, matrix) = two_groups();
        for linkage in [Linkage::Single, Linkage::Complete, Linkage::Average] {
            let tree = cluster_matrix(&labels, &matrix, linkage).expect("non-empty input");
            let clusters = tree.cut(0.5);
            assert_eq!(clusters.len(), 2, "{linkage:?}");
            assert!(clusters.contains(&vec!["a".to_owned(), "b".to_owned()]));
            assert!(clusters.contains(&vec!["c".to_owned(), "d".to_owned()]));
        }
    }

    #[test]
    fn cut_thresholds() {
        let (labels, matrix) = two_groups();
        let tree = cluster_matrix(&labels, &matrix, Linkage::Average).expect("non-empty input");
        assert_eq!(tree.cut(0.0).len(), 1); // everything merges
        assert_eq!(tree.cut(2.0).len(), 4); // nothing merges
    }

    #[test]
    fn leaves_preserved() {
        let (labels, matrix) = two_groups();
        let tree = cluster_matrix(&labels, &matrix, Linkage::Single).expect("non-empty input");
        let mut leaves: Vec<&str> = tree.leaves();
        leaves.sort_unstable();
        assert_eq!(leaves, vec!["a", "b", "c", "d"]);
    }

    #[test]
    fn single_leaf_set() {
        let labels = vec!["only".to_owned()];
        let matrix = vec![vec![1.0]];
        let tree = cluster_matrix(&labels, &matrix, Linkage::Average).expect("non-empty input");
        assert_eq!(tree.cut(0.5), vec![vec!["only".to_owned()]]);
        assert!(tree.render().contains("only"));
    }

    #[test]
    fn render_shows_merge_levels() {
        let (labels, matrix) = two_groups();
        let tree = cluster_matrix(&labels, &matrix, Linkage::Single).expect("non-empty input");
        let text = tree.render();
        assert!(text.contains("┐ 0.9"));
        assert!(text.lines().count() >= 6);
    }

    #[test]
    fn complete_linkage_is_conservative() {
        // A chain a-b-c where a~b and b~c but a!~c: single link merges all
        // at 0.9; complete link merges the triple only at 0.1.
        let labels: Vec<String> = ["a", "b", "c"].iter().map(|s| s.to_string()).collect();
        let matrix = vec![
            vec![1.0, 0.9, 0.1],
            vec![0.9, 1.0, 0.9],
            vec![0.1, 0.9, 1.0],
        ];
        let single = cluster_matrix(&labels, &matrix, Linkage::Single).expect("non-empty input");
        let complete =
            cluster_matrix(&labels, &matrix, Linkage::Complete).expect("non-empty input");
        assert_eq!(single.cut(0.5).len(), 1);
        assert_eq!(complete.cut(0.5).len(), 2);
    }
}

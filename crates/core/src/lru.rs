//! Sharded, capacity-bounded LRU map backing [`crate::cache::CachedSimilarity`].
//!
//! The memo a long-running service shares across requests must be
//! *bounded*: the old `RwLock<HashMap>` grew without limit, which is
//! exactly the memory leak the ROADMAP's "long-running services" goal
//! cannot afford. This module provides:
//!
//! * **Sharding.** Keys are hash-partitioned over independent
//!   `Mutex`-guarded shards, so concurrent writers on different keys do
//!   not serialize on one global write lock.
//! * **Bounded capacity with LRU eviction.** The configured capacity is
//!   distributed exactly over the shards (sum of shard capacities equals
//!   the total), so the total resident entry count never exceeds the
//!   configured bound. Each shard evicts its least-recently-used entry
//!   on overflow and reports the eviction to the caller.
//! * **Reserve-slot protocol.** [`ShardedLru::get_or_reserve`] closes the
//!   check-then-act race of the old cache: the first thread to miss a key
//!   *reserves* it and computes; concurrent threads missing the same key
//!   block on the shard's condvar and wake to a hit. Each key is computed
//!   (and counted as a miss) exactly once while it stays resident.
//!
//! Reservations live in a side table, not in the LRU itself, so a
//! reserved-but-uncomputed key can never be evicted and never counts
//! against the capacity bound (in-flight reservations are bounded by the
//! number of computing threads).

use std::collections::hash_map::DefaultHasher;
use std::collections::{HashMap, HashSet};
use std::hash::{Hash, Hasher};
use std::sync::{Condvar, Mutex, MutexGuard, PoisonError};

/// Sentinel index for "no node".
const NIL: usize = usize::MAX;

/// Number of shards; a small power of two — enough to spread write
/// contention across a worker pool without fragmenting tiny capacities.
const SHARD_COUNT: usize = 8;

#[derive(Debug)]
struct Node<K, V> {
    key: K,
    value: V,
    prev: usize,
    next: usize,
}

/// One shard: an intrusive-list LRU over a slab plus the reservation set.
#[derive(Debug)]
struct LruInner<K, V> {
    /// Key → slab slot.
    map: HashMap<K, usize>,
    /// Slab of list nodes; `free` holds recycled slots.
    nodes: Vec<Node<K, V>>,
    free: Vec<usize>,
    /// Most-recently-used end of the list.
    head: usize,
    /// Least-recently-used end of the list.
    tail: usize,
    /// Maximum resident entries in this shard.
    capacity: usize,
    /// Keys currently reserved by a computing thread.
    pending: HashSet<K>,
}

impl<K: Hash + Eq + Clone, V: Clone> LruInner<K, V> {
    fn new(capacity: usize) -> Self {
        LruInner {
            map: HashMap::new(),
            nodes: Vec::new(),
            free: Vec::new(),
            head: NIL,
            tail: NIL,
            capacity,
            pending: HashSet::new(),
        }
    }

    /// Unlinks node `i` from the recency list.
    fn unlink(&mut self, i: usize) {
        let (prev, next) = match self.nodes.get(i) {
            Some(n) => (n.prev, n.next),
            None => return,
        };
        match self.nodes.get_mut(prev) {
            Some(p) => p.next = next,
            None => self.head = next,
        }
        match self.nodes.get_mut(next) {
            Some(n) => n.prev = prev,
            None => self.tail = prev,
        }
    }

    /// Links node `i` at the most-recently-used end.
    fn push_front(&mut self, i: usize) {
        let old_head = self.head;
        if let Some(n) = self.nodes.get_mut(i) {
            n.prev = NIL;
            n.next = old_head;
        }
        match self.nodes.get_mut(old_head) {
            Some(h) => h.prev = i,
            None => self.tail = i,
        }
        self.head = i;
    }

    /// Looks up `key`, refreshing its recency on a hit.
    fn get_touch(&mut self, key: &K) -> Option<V> {
        let i = *self.map.get(key)?;
        self.unlink(i);
        self.push_front(i);
        self.nodes.get(i).map(|n| n.value.clone())
    }

    /// Inserts (or refreshes) `key → value`; returns `true` when an entry
    /// was evicted to make room.
    fn insert(&mut self, key: K, value: V) -> bool {
        if let Some(&i) = self.map.get(&key) {
            if let Some(n) = self.nodes.get_mut(i) {
                n.value = value;
            }
            self.unlink(i);
            self.push_front(i);
            return false;
        }
        let mut evicted = false;
        if self.capacity == 0 {
            return false;
        }
        if self.map.len() >= self.capacity {
            let lru = self.tail;
            if let Some(n) = self.nodes.get(lru) {
                let old_key = n.key.clone();
                self.unlink(lru);
                self.map.remove(&old_key);
                self.free.push(lru);
                evicted = true;
            }
        }
        let node = Node {
            key: key.clone(),
            value,
            prev: NIL,
            next: NIL,
        };
        let slot = match self.free.pop() {
            Some(slot) => {
                if let Some(n) = self.nodes.get_mut(slot) {
                    *n = node;
                }
                slot
            }
            None => {
                self.nodes.push(node);
                self.nodes.len() - 1
            }
        };
        self.map.insert(key, slot);
        self.push_front(slot);
        evicted
    }
}

#[derive(Debug)]
struct Shard<K, V> {
    inner: Mutex<LruInner<K, V>>,
    /// Wakes threads waiting on a reserved key of this shard.
    ready: Condvar,
}

impl<K: Hash + Eq + Clone, V: Clone> Shard<K, V> {
    fn lock(&self) -> MutexGuard<'_, LruInner<K, V>> {
        // The LRU holds only derived values; a panicking holder cannot
        // leave it semantically inconsistent, so poisoning is recovered.
        self.inner.lock().unwrap_or_else(PoisonError::into_inner)
    }
}

/// Outcome of [`ShardedLru::get_or_reserve`].
#[derive(Debug, PartialEq)]
pub(crate) enum Slot<V> {
    /// The key was resident (possibly after waiting for a concurrent
    /// computation); the value is attached.
    Hit(V),
    /// The key is absent and now reserved by the caller, who must follow
    /// up with [`ShardedLru::fulfill`] or [`ShardedLru::abandon`].
    Reserved,
}

/// A sharded, capacity-bounded LRU map (see module docs).
#[derive(Debug)]
pub(crate) struct ShardedLru<K, V> {
    shards: Vec<Shard<K, V>>,
    capacity: usize,
}

impl<K: Hash + Eq + Clone, V: Clone> ShardedLru<K, V> {
    /// A map holding at most `capacity` entries in total. Capacities below
    /// one are clamped to one; tiny capacities use fewer shards so the
    /// per-shard bound stays meaningful.
    pub(crate) fn with_capacity(capacity: usize) -> Self {
        let capacity = capacity.max(1);
        let shard_count = SHARD_COUNT.min(capacity);
        let shards = (0..shard_count)
            .map(|i| {
                // Distribute the capacity exactly: the first
                // `capacity % shard_count` shards take one extra entry,
                // so the shard capacities sum to `capacity`.
                let base = capacity / shard_count;
                let extra = usize::from(i < capacity % shard_count);
                Shard {
                    inner: Mutex::new(LruInner::new(base.saturating_add(extra))),
                    ready: Condvar::new(),
                }
            })
            .collect();
        ShardedLru { shards, capacity }
    }

    /// The configured total capacity bound.
    pub(crate) fn capacity(&self) -> usize {
        self.capacity
    }

    /// Total resident entries (reservations excluded).
    pub(crate) fn len(&self) -> usize {
        self.shards.iter().map(|s| s.lock().map.len()).sum()
    }

    /// Drops every resident entry. Reservations (and their waiters) are
    /// untouched: the in-flight computations complete normally.
    pub(crate) fn clear(&self) {
        for shard in &self.shards {
            // lint: allow(lock-in-loop) each iteration locks a *different* shard exactly once
            let mut inner = shard.lock();
            let capacity = inner.capacity;
            *inner = LruInner::new(capacity);
        }
    }

    fn shard(&self, key: &K) -> &Shard<K, V> {
        let mut hasher = DefaultHasher::new();
        key.hash(&mut hasher);
        // `shards` is non-empty by construction (capacity is clamped ≥ 1),
        // and the modulo keeps the index in range.
        let idx = (hasher.finish() as usize) % self.shards.len().max(1);
        &self.shards[idx]
    }

    /// Non-blocking lookup refreshing recency; never reserves.
    pub(crate) fn get(&self, key: &K) -> Option<V> {
        self.shard(key).lock().get_touch(key)
    }

    /// Looks `key` up; on a miss, reserves it for the caller. If another
    /// thread holds the reservation, blocks until that thread fulfills
    /// (→ `Hit`) or abandons (→ the caller inherits the reservation).
    pub(crate) fn get_or_reserve(&self, key: &K) -> Slot<V> {
        let shard = self.shard(key);
        let mut inner = shard.lock();
        loop {
            if let Some(value) = inner.get_touch(key) {
                return Slot::Hit(value);
            }
            if !inner.pending.contains(key) {
                inner.pending.insert(key.clone());
                return Slot::Reserved;
            }
            inner = shard
                .ready
                .wait(inner)
                .unwrap_or_else(PoisonError::into_inner);
        }
    }

    /// Publishes the value for a key previously reserved via
    /// [`ShardedLru::get_or_reserve`] and wakes its waiters. Returns `true`
    /// when an entry was evicted to make room.
    pub(crate) fn fulfill(&self, key: K, value: V) -> bool {
        let shard = self.shard(&key);
        let evicted = {
            let mut inner = shard.lock();
            inner.pending.remove(&key);
            inner.insert(key, value)
        };
        shard.ready.notify_all();
        evicted
    }

    /// Releases a reservation without publishing a value (the computation
    /// failed); one waiter inherits the reservation and retries.
    pub(crate) fn abandon(&self, key: &K) {
        let shard = self.shard(key);
        {
            let mut inner = shard.lock();
            inner.pending.remove(key);
        }
        shard.ready.notify_all();
    }

    /// Plain insert (no reservation involved), waking any waiters that
    /// were blocked on a concurrent reservation of the same key. Returns
    /// `true` when an entry was evicted to make room.
    pub(crate) fn insert(&self, key: K, value: V) -> bool {
        let shard = self.shard(&key);
        let evicted = shard.lock().insert(key, value);
        shard.ready.notify_all();
        evicted
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn insert_get_and_touch() {
        let lru: ShardedLru<u32, u32> = ShardedLru::with_capacity(16);
        assert!(!lru.insert(1, 10));
        assert!(!lru.insert(2, 20));
        assert_eq!(lru.get(&1), Some(10));
        assert_eq!(lru.get(&3), None);
        assert_eq!(lru.len(), 2);
    }

    #[test]
    fn capacity_is_a_hard_bound_and_lru_evicts() {
        // Capacity one collapses to a single one-slot shard, so eviction
        // order is fully observable.
        let lru: ShardedLru<u32, u32> = ShardedLru::with_capacity(1);
        assert!(!lru.insert(1, 10));
        assert!(lru.insert(2, 20), "inserting past capacity evicts");
        assert_eq!(lru.len(), 1);
        assert_eq!(lru.get(&1), None, "older entry was evicted");
        assert_eq!(lru.get(&2), Some(20));
    }

    #[test]
    fn recency_decides_the_victim() {
        // One shard in isolation: touching an entry shields it.
        let mut inner: LruInner<u32, u32> = LruInner::new(3);
        inner.insert(1, 10);
        inner.insert(2, 20);
        inner.insert(3, 30);
        assert_eq!(inner.get_touch(&1), Some(10)); // 1 becomes MRU; 2 is LRU
        assert!(inner.insert(4, 40));
        assert_eq!(inner.get_touch(&2), None, "least-recently-used evicted");
        assert_eq!(inner.get_touch(&1), Some(10));
        assert_eq!(inner.get_touch(&3), Some(30));
        assert_eq!(inner.get_touch(&4), Some(40));
    }

    #[test]
    fn reinsert_refreshes_instead_of_evicting() {
        let lru: ShardedLru<u32, u32> = ShardedLru::with_capacity(2);
        lru.insert(1, 10);
        lru.insert(2, 20);
        assert!(!lru.insert(1, 11), "overwrite does not evict");
        assert_eq!(lru.get(&1), Some(11));
        assert_eq!(lru.len(), 2);
    }

    #[test]
    fn shard_capacities_sum_to_total() {
        for capacity in [1, 2, 7, 8, 9, 64, 1000] {
            let lru: ShardedLru<u64, u64> = ShardedLru::with_capacity(capacity);
            let total: usize = lru.shards.iter().map(|s| s.lock().capacity).sum();
            assert_eq!(total, capacity, "capacity {capacity}");
        }
    }

    #[test]
    fn length_never_exceeds_capacity_under_churn() {
        let lru: ShardedLru<u64, u64> = ShardedLru::with_capacity(13);
        for i in 0..500 {
            lru.insert(i, i);
            assert!(lru.len() <= 13, "len {} at i {i}", lru.len());
        }
        assert_eq!(lru.len(), 13);
    }

    #[test]
    fn tiny_capacities_use_fewer_shards() {
        // Below SHARD_COUNT the shard count collapses to the capacity, so
        // no shard ends up with a zero bound (which would silently drop
        // every insert hashed to it).
        for capacity in 1..SHARD_COUNT {
            let lru: ShardedLru<u64, u64> = ShardedLru::with_capacity(capacity);
            assert_eq!(lru.shards.len(), capacity, "capacity {capacity}");
            assert!(
                lru.shards.iter().all(|s| s.lock().capacity == 1),
                "capacity {capacity}: every shard holds exactly one entry"
            );
            assert_eq!(lru.capacity(), capacity);
        }
        let lru: ShardedLru<u64, u64> = ShardedLru::with_capacity(SHARD_COUNT);
        assert_eq!(lru.shards.len(), SHARD_COUNT);
        // Zero clamps to one: a single one-entry shard, still usable.
        let lru: ShardedLru<u64, u64> = ShardedLru::with_capacity(0);
        assert_eq!(lru.shards.len(), 1);
        assert_eq!(lru.capacity(), 1);
        lru.insert(1, 10);
        assert_eq!(lru.get(&1), Some(10));
    }

    #[test]
    fn tiny_capacity_stays_bounded_and_retains_entries() {
        // capacity 3 < SHARD_COUNT: keys spread over three one-slot
        // shards; the total bound holds and lookups still work.
        let lru: ShardedLru<u64, u64> = ShardedLru::with_capacity(3);
        for i in 0..100 {
            lru.insert(i, i * 2);
            assert!(lru.len() <= 3, "len {} at i {i}", lru.len());
            assert_eq!(lru.get(&i), Some(i * 2), "fresh insert is resident");
        }
        assert!(lru.len() >= 1);
    }

    #[test]
    fn reserve_then_fulfill_wakes_waiters() {
        let lru: ShardedLru<u32, u32> = ShardedLru::with_capacity(8);
        assert_eq!(lru.get_or_reserve(&7), Slot::Reserved);
        std::thread::scope(|scope| {
            let waiter = scope.spawn(|| lru.get_or_reserve(&7));
            // Give the waiter a moment to block, then publish.
            std::thread::sleep(std::time::Duration::from_millis(20));
            assert!(!lru.fulfill(7, 70));
            assert_eq!(waiter.join().expect("waiter"), Slot::Hit(70));
        });
    }

    #[test]
    fn abandon_hands_reservation_to_a_waiter() {
        let lru: ShardedLru<u32, u32> = ShardedLru::with_capacity(8);
        assert_eq!(lru.get_or_reserve(&7), Slot::Reserved);
        std::thread::scope(|scope| {
            let waiter = scope.spawn(|| lru.get_or_reserve(&7));
            std::thread::sleep(std::time::Duration::from_millis(20));
            lru.abandon(&7);
            assert_eq!(
                waiter.join().expect("waiter"),
                Slot::Reserved,
                "a waiter inherits the abandoned reservation"
            );
        });
    }

    #[test]
    fn clear_keeps_capacity() {
        let lru: ShardedLru<u32, u32> = ShardedLru::with_capacity(4);
        for i in 0..4 {
            lru.insert(i, i);
        }
        lru.clear();
        assert_eq!(lru.len(), 0);
        for i in 0..10 {
            lru.insert(i, i);
        }
        assert_eq!(lru.len(), 4, "capacity survives clear");
    }
}

//! Similarity caching. Pairwise scores are deterministic for a built
//! toolkit (the tree, IC and index are frozen), so k-most-similar loops,
//! alignment, clustering — and above all the long-running query service
//! (`sst-server`) — which all re-query the same pairs, can share a memo.
//!
//! [`CachedSimilarity`] wraps a borrowed [`SstToolkit`] with a **sharded,
//! capacity-bounded LRU** keyed by `(measure, pair)`; pairs are stored in
//! canonical order since every registered measure is symmetric. Keys are
//! hash-partitioned over independent mutex-guarded shards, so concurrent
//! writers on different keys do not serialize on one global lock. The
//! cache is `Sync`, so parallel clients share it. Lock poisoning is
//! recovered rather than propagated: the memo holds only derived scores,
//! so a panicking writer can never leave it semantically inconsistent.
//!
//! ## Bounded memory
//!
//! [`CachedSimilarity::new`] bounds the memo at
//! [`CachedSimilarity::DEFAULT_CAPACITY`] entries; when full, each shard
//! evicts its least-recently-used pair (counted in
//! [`CachedSimilarity::evictions`] and the `core.cache.evictions`
//! counter). [`CachedSimilarity::with_capacity`] picks a custom bound and
//! [`CachedSimilarity::unbounded`] opts out for offline batch jobs that
//! prefer the pre-eviction behavior. Evicted pairs are simply recomputed
//! on the next query — scores are deterministic, so a bounded cache is
//! always bit-identical to an unbounded one (only hit/miss/eviction
//! traffic differs).
//!
//! ## Single-flight misses
//!
//! [`CachedSimilarity::get_similarity`] uses a reserve-slot protocol: the
//! first thread to miss a key reserves it and computes; concurrent
//! threads missing the same key wait and wake to a hit. Each resident
//! pair is therefore computed — and counted as a miss — exactly once
//! (the batch path of [`CachedSimilarity::most_similar`] may duplicate
//! work under concurrency but stays value-identical).

use std::borrow::Borrow;
use std::collections::HashMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

use sst_obs::Counter;
use sst_soqa::GlobalConcept;

use crate::error::Result;
use crate::facade::{rank_descending, ConceptAndSimilarity, ConceptSet, PairScorer, SstToolkit};
use crate::lru::{ShardedLru, Slot};

type Key = (usize, GlobalConcept, GlobalConcept);

/// A memoizing view over a toolkit.
///
/// Generic over *how* the toolkit is held: `T` is anything that borrows
/// an [`SstToolkit`] — a plain `&SstToolkit` for scoped use (the common
/// case; `CachedSimilarity::new(&sst)` works unchanged) or an
/// `Arc<SstToolkit>` for owning callers like the multi-tenant server,
/// whose hot-swappable corpora must outlive any one scope.
///
/// Hit/miss traffic is tracked twice on purpose: the local atomics back
/// [`CachedSimilarity::stats`] (per-cache, reset by construction), while the
/// `core.cache.hits` / `core.cache.misses` / `core.cache.evictions`
/// counters in the toolkit's metrics registry aggregate across every cache
/// built on the toolkit.
#[derive(Debug)]
pub struct CachedSimilarity<T: Borrow<SstToolkit>> {
    toolkit: T,
    memo: ShardedLru<Key, f64>,
    hits: AtomicU64,
    misses: AtomicU64,
    evictions: AtomicU64,
    hits_metric: Arc<Counter>,
    misses_metric: Arc<Counter>,
    evictions_metric: Arc<Counter>,
}

impl<T: Borrow<SstToolkit>> CachedSimilarity<T> {
    /// Default capacity bound of [`CachedSimilarity::new`], in cached
    /// pairs. Sized for serving workloads: large enough that interactive
    /// traffic over mid-size ontologies rarely evicts, small enough that a
    /// long-running service stays memory-bounded.
    pub const DEFAULT_CAPACITY: usize = 65_536;

    /// A cache bounded at [`CachedSimilarity::DEFAULT_CAPACITY`] pairs.
    pub fn new(toolkit: T) -> Self {
        Self::with_capacity(toolkit, Self::DEFAULT_CAPACITY)
    }

    /// A cache bounded at `capacity` pairs (clamped to at least one).
    /// When full, the least-recently-used pair of the key's shard is
    /// evicted to make room.
    pub fn with_capacity(toolkit: T, capacity: usize) -> Self {
        let (hits_metric, misses_metric, evictions_metric) = {
            let metrics = toolkit.borrow().metrics();
            (
                metrics.counter("core.cache.hits"),
                metrics.counter("core.cache.misses"),
                metrics.counter("core.cache.evictions"),
            )
        };
        CachedSimilarity {
            toolkit,
            memo: ShardedLru::with_capacity(capacity),
            hits: AtomicU64::new(0),
            misses: AtomicU64::new(0),
            evictions: AtomicU64::new(0),
            hits_metric,
            misses_metric,
            evictions_metric,
        }
    }

    /// The explicit opt-out: a cache that never evicts. For offline batch
    /// jobs (alignment, clustering over a fixed set) where the working set
    /// is known to fit; long-running services should prefer a bound.
    pub fn unbounded(toolkit: T) -> Self {
        Self::with_capacity(toolkit, usize::MAX)
    }

    /// The wrapped toolkit.
    pub fn toolkit(&self) -> &SstToolkit {
        self.toolkit.borrow()
    }

    /// (hits, misses) since construction.
    pub fn stats(&self) -> (u64, u64) {
        (
            self.hits.load(Ordering::Relaxed),
            self.misses.load(Ordering::Relaxed),
        )
    }

    /// Pairs evicted to uphold the capacity bound since construction.
    pub fn evictions(&self) -> u64 {
        self.evictions.load(Ordering::Relaxed)
    }

    /// The configured capacity bound ([`usize::MAX`] when unbounded).
    pub fn capacity(&self) -> usize {
        self.memo.capacity()
    }

    /// Number of cached pairs; never exceeds [`CachedSimilarity::capacity`].
    pub fn len(&self) -> usize {
        self.memo.len()
    }

    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Drops every cached pair (capacity and counters are kept).
    /// Re-registering a differently-configured toolkit is impossible —
    /// toolkits are frozen once built — so `clear` exists for memory
    /// management: unbounded caches in long-running services can shed
    /// their memo wholesale, and bounded caches can drop a cold working
    /// set at once instead of evicting it pair by pair.
    pub fn clear(&self) {
        self.memo.clear();
    }

    fn canonical(measure: usize, a: GlobalConcept, b: GlobalConcept) -> Key {
        // Symmetric measures: store each unordered pair once.
        if (a.ontology, a.concept) <= (b.ontology, b.concept) {
            (measure, a, b)
        } else {
            (measure, b, a)
        }
    }

    /// Records an eviction reported by the memo.
    fn note_evictions(&self, count: u64) {
        if count > 0 {
            self.evictions.fetch_add(count, Ordering::Relaxed);
            self.evictions_metric.add(count);
        }
    }

    /// Cached version of [`SstToolkit::get_similarity`].
    ///
    /// Misses are single-flight: concurrent callers of the same absent
    /// pair block until the first caller's computation lands, then return
    /// it as a hit — each resident pair is computed once and `misses`
    /// counts distinct computations, not racing threads.
    pub fn get_similarity(
        &self,
        first_concept: &str,
        first_ontology: &str,
        second_concept: &str,
        second_ontology: &str,
        measure: usize,
    ) -> Result<f64> {
        let a = self
            .toolkit()
            .soqa()
            .resolve(first_ontology, first_concept)?;
        let b = self
            .toolkit()
            .soqa()
            .resolve(second_ontology, second_concept)?;
        let key = Self::canonical(measure, a, b);
        match self.memo.get_or_reserve(&key) {
            Slot::Hit(cached) => {
                self.hits.fetch_add(1, Ordering::Relaxed);
                self.hits_metric.inc();
                Ok(cached)
            }
            Slot::Reserved => {
                let computed = self.toolkit().get_similarity(
                    first_concept,
                    first_ontology,
                    second_concept,
                    second_ontology,
                    measure,
                );
                match computed {
                    Ok(value) => {
                        self.misses.fetch_add(1, Ordering::Relaxed);
                        self.misses_metric.inc();
                        let evicted = self.memo.fulfill(key, value);
                        self.note_evictions(u64::from(evicted));
                        Ok(value)
                    }
                    Err(e) => {
                        // Hand the reservation to a waiter (or drop it);
                        // nothing was computed, so nothing is counted.
                        self.memo.abandon(&key);
                        Err(e)
                    }
                }
            }
        }
    }

    /// Cached version of [`SstToolkit::most_similar`]: reuses any pairs
    /// already scored and stores the rest.
    ///
    /// Misses are computed in one batch on the toolkit's prepared-context
    /// path (one [`SstToolkit::prepare`] over the missed members plus the
    /// query) instead of one naive pairwise call per member; memo keys are
    /// unchanged. Hit/miss counters move only after the whole batch has
    /// completed — an error partway through the scan (unknown measure, a
    /// member that fails to resolve) leaves every counter untouched.
    pub fn most_similar(
        &self,
        concept: &str,
        ontology: &str,
        set: &ConceptSet,
        k: usize,
        measure: usize,
    ) -> Result<Vec<ConceptAndSimilarity>> {
        let members = self.toolkit().concept_set(set)?;
        if members.is_empty() {
            return Ok(Vec::new());
        }
        let query = self.toolkit().soqa().resolve(ontology, concept)?;
        // Fail on an unknown measure *before* any accounting.
        let runner = self.toolkit().runner(measure)?;

        // Scan the memo once; misses are deduplicated into batch slots so a
        // repeated pair is computed once and the repeat counts as a hit,
        // exactly as the sequential per-member path behaved. Hits and
        // misses accumulate locally until all work has actually happened.
        let mut hits: u64 = 0;
        let mut misses: u64 = 0;
        let mut all: Vec<ConceptAndSimilarity> = Vec::with_capacity(members.len());
        let mut slot_of_row: Vec<Option<usize>> = Vec::with_capacity(members.len());
        let mut pending_keys: HashMap<Key, usize> = HashMap::new();
        let mut pending: Vec<GlobalConcept> = Vec::new();
        for gc in members {
            let other = self.toolkit().soqa().concept(gc).name.clone();
            let other_onto = self
                .toolkit()
                .soqa()
                .ontology_at(gc.ontology)
                .name()
                .to_owned();
            // Resolve by name like the pairwise service does, so duplicate
            // names keep hitting the same memo entry they always did.
            let rgc = self.toolkit().soqa().resolve(&other_onto, &other)?;
            let key = Self::canonical(measure, query, rgc);
            let (similarity, slot) = if let Some(cached) = self.memo.get(&key) {
                hits += 1;
                (cached, None)
            } else if let Some(&slot) = pending_keys.get(&key) {
                hits += 1;
                (0.0, Some(slot))
            } else {
                let slot = pending.len();
                pending_keys.insert(key, slot);
                pending.push(rgc);
                misses += 1;
                (0.0, Some(slot))
            };
            all.push(ConceptAndSimilarity {
                concept: other,
                ontology: other_onto,
                similarity,
            });
            slot_of_row.push(slot);
        }

        if !pending.is_empty() {
            let mut batch = pending.clone();
            batch.push(query);
            let prep = self.toolkit().prepare_for(&batch, runner.needs());
            let scorer = PairScorer::new(runner, &prep);
            let qpos = batch.len() - 1;
            let values: Vec<f64> = (0..pending.len())
                .map(|i| {
                    self.toolkit()
                        .timed_score(measure, || scorer.score(qpos, i))
                })
                .collect();
            let mut evicted: u64 = 0;
            for (&key, &slot) in &pending_keys {
                if self.memo.insert(key, values[slot]) {
                    evicted += 1;
                }
            }
            self.note_evictions(evicted);
            for (row, slot) in all.iter_mut().zip(&slot_of_row) {
                if let Some(slot) = *slot {
                    row.similarity = values[slot];
                }
            }
        }

        // Every pair is scored: account for the completed work.
        self.hits.fetch_add(hits, Ordering::Relaxed);
        self.hits_metric.add(hits);
        self.misses.fetch_add(misses, Ordering::Relaxed);
        self.misses_metric.add(misses);

        all.sort_by(rank_descending);
        all.truncate(k);
        Ok(all)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::facade::{measure_ids as m, SstBuilder};
    use sst_soqa::{OntologyBuilder, OntologyMetadata};

    fn toolkit() -> SstToolkit {
        let mut b = OntologyBuilder::new(OntologyMetadata {
            name: "uni".into(),
            ..OntologyMetadata::default()
        });
        let thing = b.concept("Thing");
        for name in ["Person", "Student", "Professor", "Course"] {
            let c = b.concept(name);
            b.add_subclass(c, thing);
        }
        SstBuilder::new()
            .register_ontology(b.build())
            .unwrap()
            .build()
    }

    #[test]
    fn caches_pairwise_scores() {
        let sst = toolkit();
        let cache = CachedSimilarity::new(&sst);
        let a = cache
            .get_similarity("Student", "uni", "Person", "uni", m::SHORTEST_PATH_MEASURE)
            .unwrap();
        let b = cache
            .get_similarity("Student", "uni", "Person", "uni", m::SHORTEST_PATH_MEASURE)
            .unwrap();
        assert_eq!(a, b);
        assert_eq!(cache.stats(), (1, 1));
        assert_eq!(cache.len(), 1);
    }

    #[test]
    fn symmetric_pairs_share_one_entry() {
        let sst = toolkit();
        let cache = CachedSimilarity::new(&sst);
        cache
            .get_similarity("Student", "uni", "Person", "uni", m::SHORTEST_PATH_MEASURE)
            .unwrap();
        let reversed = cache
            .get_similarity("Person", "uni", "Student", "uni", m::SHORTEST_PATH_MEASURE)
            .unwrap();
        assert_eq!(cache.stats(), (1, 1), "reverse order should hit");
        assert!(reversed > 0.0);
    }

    #[test]
    fn distinct_measures_are_distinct_keys() {
        let sst = toolkit();
        let cache = CachedSimilarity::new(&sst);
        cache
            .get_similarity("Student", "uni", "Person", "uni", m::SHORTEST_PATH_MEASURE)
            .unwrap();
        cache
            .get_similarity(
                "Student",
                "uni",
                "Person",
                "uni",
                m::CONCEPTUAL_SIMILARITY_MEASURE,
            )
            .unwrap();
        assert_eq!(cache.len(), 2);
    }

    #[test]
    fn cached_most_similar_matches_uncached() {
        let sst = toolkit();
        let cache = CachedSimilarity::new(&sst);
        let cached = cache
            .most_similar(
                "Student",
                "uni",
                &ConceptSet::All,
                3,
                m::SHORTEST_PATH_MEASURE,
            )
            .unwrap();
        let direct = sst
            .most_similar(
                "Student",
                "uni",
                &ConceptSet::All,
                3,
                m::SHORTEST_PATH_MEASURE,
            )
            .unwrap();
        assert_eq!(cached, direct);
        // Second call is fully cached.
        cache
            .most_similar(
                "Student",
                "uni",
                &ConceptSet::All,
                3,
                m::SHORTEST_PATH_MEASURE,
            )
            .unwrap();
        let (hits, misses) = cache.stats();
        assert_eq!(misses, 5); // one per concept in the set
        assert!(hits >= 5);
    }

    #[test]
    fn clear_resets_memo() {
        let sst = toolkit();
        let cache = CachedSimilarity::new(&sst);
        cache
            .get_similarity("Student", "uni", "Person", "uni", m::SHORTEST_PATH_MEASURE)
            .unwrap();
        cache.clear();
        assert!(cache.is_empty());
    }

    #[test]
    fn cache_is_shareable_across_threads() {
        let sst = toolkit();
        let cache = CachedSimilarity::new(&sst);
        std::thread::scope(|scope| {
            for _ in 0..4 {
                scope.spawn(|| {
                    for pair in [("Student", "Person"), ("Course", "Professor")] {
                        cache
                            .get_similarity(pair.0, "uni", pair.1, "uni", m::SHORTEST_PATH_MEASURE)
                            .unwrap();
                    }
                });
            }
        });
        assert_eq!(cache.len(), 2);
        let (hits, misses) = cache.stats();
        assert_eq!(hits + misses, 8);
    }

    /// The check-then-act race pin: many threads hammering the same small
    /// pair set must compute (and count) each distinct pair exactly once.
    #[test]
    fn concurrent_misses_are_single_flight() {
        let sst = toolkit();
        let cache = CachedSimilarity::new(&sst);
        let pairs = [
            ("Student", "Person"),
            ("Student", "Professor"),
            ("Student", "Course"),
            ("Person", "Professor"),
            ("Person", "Course"),
            ("Professor", "Course"),
        ];
        std::thread::scope(|scope| {
            for t in 0..8 {
                let pairs = &pairs;
                let cache = &cache;
                scope.spawn(move || {
                    for round in 0..20 {
                        for (i, pair) in pairs.iter().enumerate() {
                            // Stagger orders across threads to chase races.
                            let (a, b) = if (t + round + i) % 2 == 0 {
                                (pair.0, pair.1)
                            } else {
                                (pair.1, pair.0)
                            };
                            cache
                                .get_similarity(a, "uni", b, "uni", m::SHORTEST_PATH_MEASURE)
                                .unwrap();
                        }
                    }
                });
            }
        });
        let (hits, misses) = cache.stats();
        assert_eq!(
            misses,
            pairs.len() as u64,
            "each distinct pair is computed exactly once"
        );
        assert_eq!(hits + misses, 8 * 20 * pairs.len() as u64);
        assert_eq!(cache.len(), pairs.len());
        assert_eq!(cache.evictions(), 0);
    }

    /// Satellite pin: a failing service call must not move the counters.
    #[test]
    fn errors_leave_counters_untouched() {
        let sst = toolkit();
        let cache = CachedSimilarity::new(&sst);
        // Unknown measure: most_similar fails before any per-row work.
        cache
            .most_similar("Student", "uni", &ConceptSet::All, 3, 999)
            .unwrap_err();
        // Unknown concept: pairwise fails before any computation.
        cache
            .get_similarity("Nobody", "uni", "Person", "uni", m::SHORTEST_PATH_MEASURE)
            .unwrap_err();
        assert_eq!(cache.stats(), (0, 0), "no work happened, nothing counted");
        assert!(cache.is_empty());
    }

    /// Bounded capacity: the LRU never grows past its bound, evictions are
    /// counted, and evicted pairs recompute to bit-identical scores.
    #[test]
    fn tiny_capacity_stays_bounded_and_bit_identical() {
        let sst = toolkit();
        let cache = CachedSimilarity::with_capacity(&sst, 2);
        assert_eq!(cache.capacity(), 2);
        let concepts = ["Thing", "Person", "Student", "Professor", "Course"];
        let mut direct = Vec::new();
        for a in concepts {
            for b in concepts {
                let cached = cache
                    .get_similarity(a, "uni", b, "uni", m::LIN_MEASURE)
                    .unwrap();
                let uncached = sst
                    .get_similarity(a, "uni", b, "uni", m::LIN_MEASURE)
                    .unwrap();
                assert_eq!(cached.to_bits(), uncached.to_bits(), "{a} vs {b}");
                assert!(cache.len() <= 2, "len {} exceeds capacity", cache.len());
                direct.push(uncached);
            }
        }
        assert!(cache.evictions() > 0, "churning 15 pairs through 2 slots");
        // Second sweep still bit-identical after heavy eviction.
        for (i, a) in concepts.iter().enumerate() {
            for (j, b) in concepts.iter().enumerate() {
                let again = cache
                    .get_similarity(a, "uni", b, "uni", m::LIN_MEASURE)
                    .unwrap();
                assert_eq!(again.to_bits(), direct[i * concepts.len() + j].to_bits());
            }
        }
    }

    #[test]
    fn unbounded_opt_out_never_evicts() {
        let sst = toolkit();
        let cache = CachedSimilarity::unbounded(&sst);
        assert_eq!(cache.capacity(), usize::MAX);
        let concepts = ["Thing", "Person", "Student", "Professor", "Course"];
        for a in concepts {
            for b in concepts {
                cache
                    .get_similarity(a, "uni", b, "uni", m::JARO_MEASURE)
                    .unwrap();
            }
        }
        assert_eq!(cache.evictions(), 0);
        assert_eq!(cache.len(), 15); // C(5,2) + 5 self-pairs
    }

    #[test]
    fn eviction_counter_reaches_metrics_registry() {
        let sst = toolkit();
        let cache = CachedSimilarity::with_capacity(&sst, 1);
        for pair in [("Student", "Person"), ("Course", "Professor")] {
            cache
                .get_similarity(pair.0, "uni", pair.1, "uni", m::SHORTEST_PATH_MEASURE)
                .unwrap();
        }
        let snap = sst.metrics().snapshot();
        assert_eq!(snap.counter("core.cache.evictions"), Some(1));
        assert_eq!(snap.counter("core.cache.misses"), Some(2));
    }
}

//! Similarity caching. Pairwise scores are deterministic for a built
//! toolkit (the tree, IC and index are frozen), so k-most-similar loops,
//! alignment, and clustering — which all re-query the same pairs — can
//! share a memo table.
//!
//! [`CachedSimilarity`] wraps a borrowed [`SstToolkit`] with an interior
//! `std::sync::RwLock` memo keyed by `(measure, pair)`; pairs are stored
//! in canonical order since every registered measure is symmetric. The
//! cache is `Sync`, so parallel clients share it. Lock poisoning is
//! recovered rather than propagated: the memo holds only derived scores,
//! so a panicking writer can never leave it semantically inconsistent.

use std::collections::HashMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, PoisonError, RwLock, RwLockReadGuard, RwLockWriteGuard};

use sst_obs::Counter;
use sst_soqa::GlobalConcept;

use crate::error::Result;
use crate::facade::{rank_descending, ConceptAndSimilarity, ConceptSet, PairScorer, SstToolkit};

type Key = (usize, GlobalConcept, GlobalConcept);
type Memo = HashMap<Key, f64>;

/// A memoizing view over a toolkit.
///
/// Hit/miss traffic is tracked twice on purpose: the local atomics back
/// [`CachedSimilarity::stats`] (per-cache, reset by construction), while the
/// `core.cache.hits` / `core.cache.misses` counters in the toolkit's
/// metrics registry aggregate across every cache built on the toolkit.
#[derive(Debug)]
pub struct CachedSimilarity<'a> {
    toolkit: &'a SstToolkit,
    memo: RwLock<Memo>,
    hits: AtomicU64,
    misses: AtomicU64,
    hits_metric: Arc<Counter>,
    misses_metric: Arc<Counter>,
}

impl<'a> CachedSimilarity<'a> {
    pub fn new(toolkit: &'a SstToolkit) -> Self {
        CachedSimilarity {
            toolkit,
            memo: RwLock::new(HashMap::new()),
            hits: AtomicU64::new(0),
            misses: AtomicU64::new(0),
            hits_metric: toolkit.metrics().counter("core.cache.hits"),
            misses_metric: toolkit.metrics().counter("core.cache.misses"),
        }
    }

    fn memo_read(&self) -> RwLockReadGuard<'_, Memo> {
        self.memo.read().unwrap_or_else(PoisonError::into_inner)
    }

    fn memo_write(&self) -> RwLockWriteGuard<'_, Memo> {
        self.memo.write().unwrap_or_else(PoisonError::into_inner)
    }

    /// The wrapped toolkit.
    pub fn toolkit(&self) -> &SstToolkit {
        self.toolkit
    }

    /// (hits, misses) since construction.
    pub fn stats(&self) -> (u64, u64) {
        (
            self.hits.load(Ordering::Relaxed),
            self.misses.load(Ordering::Relaxed),
        )
    }

    /// Number of cached pairs.
    pub fn len(&self) -> usize {
        self.memo_read().len()
    }

    pub fn is_empty(&self) -> bool {
        self.memo_read().is_empty()
    }

    /// Clears the memo (e.g. after registering a differently-configured
    /// toolkit is impossible — toolkits are frozen — so this mainly serves
    /// memory management in long-running services).
    pub fn clear(&self) {
        self.memo_write().clear();
    }

    fn canonical(measure: usize, a: GlobalConcept, b: GlobalConcept) -> Key {
        // Symmetric measures: store each unordered pair once.
        if (a.ontology, a.concept) <= (b.ontology, b.concept) {
            (measure, a, b)
        } else {
            (measure, b, a)
        }
    }

    /// Cached version of [`SstToolkit::get_similarity`].
    pub fn get_similarity(
        &self,
        first_concept: &str,
        first_ontology: &str,
        second_concept: &str,
        second_ontology: &str,
        measure: usize,
    ) -> Result<f64> {
        let a = self.toolkit.soqa().resolve(first_ontology, first_concept)?;
        let b = self
            .toolkit
            .soqa()
            .resolve(second_ontology, second_concept)?;
        let key = Self::canonical(measure, a, b);
        if let Some(&cached) = self.memo_read().get(&key) {
            self.hits.fetch_add(1, Ordering::Relaxed);
            self.hits_metric.inc();
            return Ok(cached);
        }
        let value = self.toolkit.get_similarity(
            first_concept,
            first_ontology,
            second_concept,
            second_ontology,
            measure,
        )?;
        self.misses.fetch_add(1, Ordering::Relaxed);
        self.misses_metric.inc();
        self.memo_write().insert(key, value);
        Ok(value)
    }

    /// Cached version of [`SstToolkit::most_similar`]: reuses any pairs
    /// already scored and stores the rest.
    ///
    /// Misses are computed in one batch on the toolkit's prepared-context
    /// path (one [`SstToolkit::prepare`] over the missed members plus the
    /// query) instead of one naive pairwise call per member; hit/miss
    /// accounting and memo keys are unchanged.
    pub fn most_similar(
        &self,
        concept: &str,
        ontology: &str,
        set: &ConceptSet,
        k: usize,
        measure: usize,
    ) -> Result<Vec<ConceptAndSimilarity>> {
        let members = self.toolkit.concept_set(set)?;
        if members.is_empty() {
            return Ok(Vec::new());
        }
        let query = self.toolkit.soqa().resolve(ontology, concept)?;

        // Scan the memo once; misses are deduplicated into batch slots so a
        // repeated pair is computed once and the repeat counts as a hit,
        // exactly as the sequential per-member path behaved.
        let mut all: Vec<ConceptAndSimilarity> = Vec::with_capacity(members.len());
        let mut slot_of_row: Vec<Option<usize>> = Vec::with_capacity(members.len());
        let mut pending_keys: HashMap<Key, usize> = HashMap::new();
        let mut pending: Vec<GlobalConcept> = Vec::new();
        for gc in members {
            let other = self.toolkit.soqa().concept(gc).name.clone();
            let other_onto = self
                .toolkit
                .soqa()
                .ontology_at(gc.ontology)
                .name()
                .to_owned();
            // Resolve by name like the pairwise service does, so duplicate
            // names keep hitting the same memo entry they always did.
            let rgc = self.toolkit.soqa().resolve(&other_onto, &other)?;
            let key = Self::canonical(measure, query, rgc);
            let (similarity, slot) = if let Some(&cached) = self.memo_read().get(&key) {
                self.hits.fetch_add(1, Ordering::Relaxed);
                self.hits_metric.inc();
                (cached, None)
            } else if let Some(&slot) = pending_keys.get(&key) {
                self.hits.fetch_add(1, Ordering::Relaxed);
                self.hits_metric.inc();
                (0.0, Some(slot))
            } else {
                let slot = pending.len();
                pending_keys.insert(key, slot);
                pending.push(rgc);
                self.misses.fetch_add(1, Ordering::Relaxed);
                self.misses_metric.inc();
                (0.0, Some(slot))
            };
            all.push(ConceptAndSimilarity {
                concept: other,
                ontology: other_onto,
                similarity,
            });
            slot_of_row.push(slot);
        }

        if !pending.is_empty() {
            let runner = self.toolkit.runner(measure)?;
            let mut batch = pending.clone();
            batch.push(query);
            let prep = self.toolkit.prepare(&batch);
            let scorer = PairScorer::new(runner, &prep);
            let qpos = batch.len() - 1;
            let values: Vec<f64> = (0..pending.len())
                .map(|i| self.toolkit.timed_score(measure, || scorer.score(qpos, i)))
                .collect();
            {
                let mut memo = self.memo_write();
                for (&key, &slot) in &pending_keys {
                    memo.insert(key, values[slot]);
                }
            }
            for (row, slot) in all.iter_mut().zip(&slot_of_row) {
                if let Some(slot) = *slot {
                    row.similarity = values[slot];
                }
            }
        }

        all.sort_by(rank_descending);
        all.truncate(k);
        Ok(all)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::facade::{measure_ids as m, SstBuilder};
    use sst_soqa::{OntologyBuilder, OntologyMetadata};

    fn toolkit() -> SstToolkit {
        let mut b = OntologyBuilder::new(OntologyMetadata {
            name: "uni".into(),
            ..OntologyMetadata::default()
        });
        let thing = b.concept("Thing");
        for name in ["Person", "Student", "Professor", "Course"] {
            let c = b.concept(name);
            b.add_subclass(c, thing);
        }
        SstBuilder::new()
            .register_ontology(b.build())
            .unwrap()
            .build()
    }

    #[test]
    fn caches_pairwise_scores() {
        let sst = toolkit();
        let cache = CachedSimilarity::new(&sst);
        let a = cache
            .get_similarity("Student", "uni", "Person", "uni", m::SHORTEST_PATH_MEASURE)
            .unwrap();
        let b = cache
            .get_similarity("Student", "uni", "Person", "uni", m::SHORTEST_PATH_MEASURE)
            .unwrap();
        assert_eq!(a, b);
        assert_eq!(cache.stats(), (1, 1));
        assert_eq!(cache.len(), 1);
    }

    #[test]
    fn symmetric_pairs_share_one_entry() {
        let sst = toolkit();
        let cache = CachedSimilarity::new(&sst);
        cache
            .get_similarity("Student", "uni", "Person", "uni", m::SHORTEST_PATH_MEASURE)
            .unwrap();
        let reversed = cache
            .get_similarity("Person", "uni", "Student", "uni", m::SHORTEST_PATH_MEASURE)
            .unwrap();
        assert_eq!(cache.stats(), (1, 1), "reverse order should hit");
        assert!(reversed > 0.0);
    }

    #[test]
    fn distinct_measures_are_distinct_keys() {
        let sst = toolkit();
        let cache = CachedSimilarity::new(&sst);
        cache
            .get_similarity("Student", "uni", "Person", "uni", m::SHORTEST_PATH_MEASURE)
            .unwrap();
        cache
            .get_similarity(
                "Student",
                "uni",
                "Person",
                "uni",
                m::CONCEPTUAL_SIMILARITY_MEASURE,
            )
            .unwrap();
        assert_eq!(cache.len(), 2);
    }

    #[test]
    fn cached_most_similar_matches_uncached() {
        let sst = toolkit();
        let cache = CachedSimilarity::new(&sst);
        let cached = cache
            .most_similar(
                "Student",
                "uni",
                &ConceptSet::All,
                3,
                m::SHORTEST_PATH_MEASURE,
            )
            .unwrap();
        let direct = sst
            .most_similar(
                "Student",
                "uni",
                &ConceptSet::All,
                3,
                m::SHORTEST_PATH_MEASURE,
            )
            .unwrap();
        assert_eq!(cached, direct);
        // Second call is fully cached.
        cache
            .most_similar(
                "Student",
                "uni",
                &ConceptSet::All,
                3,
                m::SHORTEST_PATH_MEASURE,
            )
            .unwrap();
        let (hits, misses) = cache.stats();
        assert_eq!(misses, 5); // one per concept in the set
        assert!(hits >= 5);
    }

    #[test]
    fn clear_resets_memo() {
        let sst = toolkit();
        let cache = CachedSimilarity::new(&sst);
        cache
            .get_similarity("Student", "uni", "Person", "uni", m::SHORTEST_PATH_MEASURE)
            .unwrap();
        cache.clear();
        assert!(cache.is_empty());
    }

    #[test]
    fn cache_is_shareable_across_threads() {
        let sst = toolkit();
        let cache = CachedSimilarity::new(&sst);
        std::thread::scope(|scope| {
            for _ in 0..4 {
                scope.spawn(|| {
                    for pair in [("Student", "Person"), ("Course", "Professor")] {
                        cache
                            .get_similarity(pair.0, "uni", pair.1, "uni", m::SHORTEST_PATH_MEASURE)
                            .unwrap();
                    }
                });
            }
        });
        assert_eq!(cache.len(), 2);
        let (hits, misses) = cache.stats();
        assert_eq!(hits + misses, 8);
    }
}

//! Cache-blocked tiling and a dependency-free work-stealing scheduler for
//! the batch similarity paths.
//!
//! The similarity-matrix services traverse the upper triangle of an
//! `n × n` pair grid. Two things make the naive row loop slow at scale:
//!
//! 1. **Cache behaviour.** Scoring row `i` against columns `i..n` touches
//!    `n − i` prepared artifacts per row; by the time row `i + 1` starts,
//!    the artifacts of the early columns have been evicted. Tiling the
//!    triangle into `T × T` blocks ([`triangle_tiles`]) keeps both the row
//!    and column working sets of a tile resident while its `≤ T²` pairs
//!    are scored.
//! 2. **Load imbalance.** Round-robin row partitioning (`step_by(threads)`)
//!    hands each worker rows of wildly different suffix lengths — row 0
//!    has `n` pairs, row `n − 1` has one. Tiles are far more uniform (only
//!    diagonal tiles are triangular), and the work-stealing scheduler
//!    ([`run_tiles`]) re-balances whatever non-uniformity remains.
//!
//! ## Deque protocol
//!
//! The scheduler is dependency-free and `forbid(unsafe_code)`-clean: all
//! tiles live in one immutable slice, so a "deque" never moves data — it
//! is just an index interval `[head, tail)` into that slice, packed into a
//! single `AtomicU64` (`head` in the high 32 bits, `tail` in the low 32).
//!
//! * The **owner** pops from the front: CAS `(head, tail)` to
//!   `(head + 1, tail)` and run the tile at the old `head`.
//! * A **thief** steals from the back: CAS `(head, tail)` to
//!   `(head, tail − k)` with `k = ⌈(tail − head) / 2⌉` — steal-half — and
//!   installs the stolen interval `[tail − k, tail)` as its own deque
//!   (its own deque is empty at that point, and an empty deque admits no
//!   concurrent transitions, so a plain store is safe).
//!
//! Both transitions are single-CAS, so every tile index leaves the deque
//! system exactly once; a worker that observes every deque empty may exit
//! while a thief still runs in-flight tiles, which affects only idle time,
//! never coverage. Workers start with contiguous chunks of the tile list,
//! sized so each worker begins with locality-friendly neighbouring tiles.
//!
//! Results are collected per worker as `(tile index, value)` pairs and
//! assembled in tile order by the caller, so the output is deterministic
//! regardless of worker count or steal interleaving — the scheduler
//! determinism test pins this.

use std::sync::atomic::{AtomicU64, Ordering};
use std::time::Instant;

/// One rectangular block of the pair grid: rows `[row0, row1)` against
/// columns `[col0, col1)`. For triangle traversals the per-row column
/// start is additionally clamped to the diagonal (see
/// [`Tile::for_each_upper`]).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Tile {
    pub row0: usize,
    pub row1: usize,
    pub col0: usize,
    pub col1: usize,
}

impl Tile {
    /// Visits the tile's pairs restricted to the upper triangle
    /// (`j ≥ i`), rows outer, columns inner — the same pair order the
    /// untiled row loop uses within this block.
    pub fn for_each_upper(&self, mut f: impl FnMut(usize, usize)) {
        for i in self.row0..self.row1 {
            let start = self.col0.max(i);
            for j in start..self.col1 {
                f(i, j);
            }
        }
    }

    /// Visits every pair of the tile (rectangular traversals such as
    /// source × target alignment grids).
    pub fn for_each(&self, mut f: impl FnMut(usize, usize)) {
        for i in self.row0..self.row1 {
            for j in self.col0..self.col1 {
                f(i, j);
            }
        }
    }

    /// Number of pairs [`Tile::for_each_upper`] visits.
    pub fn upper_len(&self) -> usize {
        let mut pairs = 0;
        for i in self.row0..self.row1 {
            let start = self.col0.max(i);
            pairs += self.col1.saturating_sub(start);
        }
        pairs
    }

    /// Number of pairs [`Tile::for_each`] visits.
    pub fn len(&self) -> usize {
        let rows = self.row1.saturating_sub(self.row0);
        let cols = self.col1.saturating_sub(self.col0);
        rows * cols
    }

    /// Whether the tile covers no pairs at all.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

/// Tiles the upper triangle (including the diagonal) of an `n × n` grid
/// into `tile × tile` blocks, row-major over block coordinates. Diagonal
/// blocks are triangular under [`Tile::for_each_upper`]; off-diagonal
/// blocks are full rectangles.
pub fn triangle_tiles(n: usize, tile: usize) -> Vec<Tile> {
    let t = tile.max(1);
    let mut tiles = Vec::new();
    let mut row0 = 0;
    while row0 < n {
        let row1 = row0.saturating_add(t).min(n);
        let mut col0 = row0;
        while col0 < n {
            let col1 = col0.saturating_add(t).min(n);
            tiles.push(Tile {
                row0,
                row1,
                col0,
                col1,
            });
            col0 = col1;
        }
        row0 = row1;
    }
    tiles
}

/// Tiles a full `rows × cols` grid into `tile × tile` blocks, row-major.
pub fn rect_tiles(rows: usize, cols: usize, tile: usize) -> Vec<Tile> {
    let t = tile.max(1);
    let mut tiles = Vec::new();
    let mut row0 = 0;
    while row0 < rows {
        let row1 = row0.saturating_add(t).min(rows);
        let mut col0 = 0;
        while col0 < cols {
            let col1 = col0.saturating_add(t).min(cols);
            tiles.push(Tile {
                row0,
                row1,
                col0,
                col1,
            });
            col0 = col1;
        }
        row0 = row1;
    }
    tiles
}

/// Picks a tile edge for an `n × n` triangle run on `workers` workers:
/// the largest cache-friendly size (≤ 64) that still yields at least
/// eight tiles per worker, so steal-half always has work to move; floors
/// at 8 so tiny tiles never dominate with per-tile overhead.
pub fn tile_size(n: usize, workers: usize) -> usize {
    let workers = workers.max(1);
    let mut t = 64usize;
    while t > 8 {
        let blocks = n.div_ceil(t);
        let tiles = blocks.saturating_mul(blocks.saturating_add(1)) / 2;
        if tiles >= workers.saturating_mul(8) {
            break;
        }
        t /= 2;
    }
    t
}

/// The scheduler's default worker count: the machine's available
/// parallelism (1 if it cannot be determined).
pub fn default_workers() -> usize {
    std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1)
}

/// Per-worker execution statistics of one [`run_tiles`] call.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct WorkerStats {
    /// Tiles this worker executed.
    pub tiles: u64,
    /// Successful steal-half operations this worker performed.
    pub steals: u64,
    /// Wall time this worker spent inside tile closures, in nanoseconds.
    pub busy_ns: u64,
}

/// Aggregate statistics of one [`run_tiles`] call.
#[derive(Debug, Clone, Default)]
pub struct SchedStats {
    /// One entry per worker, in worker order.
    pub workers: Vec<WorkerStats>,
    /// Workers whose thread panicked (their results are lost; callers
    /// treat any non-zero value as a failed run).
    pub panicked: usize,
}

impl SchedStats {
    /// Total tiles executed across all workers.
    pub fn tiles(&self) -> u64 {
        self.workers.iter().map(|w| w.tiles).sum()
    }

    /// Total successful steals across all workers.
    pub fn steals(&self) -> u64 {
        self.workers.iter().map(|w| w.steals).sum()
    }

    /// Busy-time imbalance: max worker busy time over mean worker busy
    /// time. 1.0 is a perfectly balanced run; round-robin row suffixes
    /// routinely exceed 2.0 on triangular grids.
    pub fn imbalance(&self) -> f64 {
        if self.workers.is_empty() {
            return 1.0;
        }
        let max = self.workers.iter().map(|w| w.busy_ns).max().unwrap_or(0);
        let sum: u64 = self.workers.iter().map(|w| w.busy_ns).sum();
        if sum == 0 {
            return 1.0;
        }
        let mean = sum as f64 / self.workers.len() as f64;
        max as f64 / mean
    }
}

/// An index interval `[head, tail)` packed into one `AtomicU64`.
#[derive(Debug)]
struct IntervalDeque {
    state: AtomicU64,
}

fn pack(head: u32, tail: u32) -> u64 {
    (u64::from(head) << 32) | u64::from(tail)
}

fn unpack(state: u64) -> (u32, u32) {
    ((state >> 32) as u32, state as u32)
}

impl IntervalDeque {
    fn new(start: usize, end: usize) -> IntervalDeque {
        IntervalDeque {
            state: AtomicU64::new(pack(start as u32, end as u32)),
        }
    }

    /// Owner-side front pop.
    fn pop_front(&self) -> Option<usize> {
        let mut cur = self.state.load(Ordering::Acquire);
        loop {
            let (head, tail) = unpack(cur);
            if head >= tail {
                return None;
            }
            let next = head.saturating_add(1);
            match self.state.compare_exchange_weak(
                cur,
                pack(next, tail),
                Ordering::AcqRel,
                Ordering::Acquire,
            ) {
                Ok(_) => return Some(head as usize),
                Err(actual) => cur = actual,
            }
        }
    }

    /// Thief-side back steal of half the interval (at least one tile).
    /// Returns the stolen interval.
    fn steal_half(&self) -> Option<(usize, usize)> {
        let mut cur = self.state.load(Ordering::Acquire);
        loop {
            let (head, tail) = unpack(cur);
            let avail = tail.saturating_sub(head);
            if avail == 0 {
                return None;
            }
            let k = avail.div_ceil(2);
            let new_tail = tail.saturating_sub(k);
            match self.state.compare_exchange_weak(
                cur,
                pack(head, new_tail),
                Ordering::AcqRel,
                Ordering::Acquire,
            ) {
                Ok(_) => return Some((new_tail as usize, tail as usize)),
                Err(actual) => cur = actual,
            }
        }
    }

    /// Installs a stolen interval as this (empty) deque's new content.
    /// Safe as a plain store: an empty interval admits no concurrent
    /// transitions (pops and steals on it fail before their CAS), so no
    /// other thread can successfully CAS between the emptiness check and
    /// this store.
    fn install(&self, start: usize, end: usize) {
        self.state
            .store(pack(start as u32, end as u32), Ordering::Release);
    }
}

/// Runs `run` over every tile with `workers` work-stealing workers and
/// returns the per-tile results as `(tile index, value)` pairs (in
/// arbitrary order — callers assemble by index) plus scheduling stats.
///
/// Tiles are distributed as contiguous per-worker chunks; an idle worker
/// steals the back half of the richest sibling deque. Each tile executes
/// exactly once. If `workers <= 1` or there is at most one tile, the
/// tiles run inline on the calling thread (no spawn overhead).
pub fn run_tiles<T, F>(tiles: &[Tile], workers: usize, run: F) -> (Vec<(usize, T)>, SchedStats)
where
    T: Send,
    F: Fn(usize, &Tile) -> T + Sync,
{
    let workers = workers.clamp(1, tiles.len().max(1));
    if workers <= 1 {
        let mut stats = WorkerStats::default();
        let start = Instant::now();
        let results: Vec<(usize, T)> = tiles
            .iter()
            .enumerate()
            .map(|(idx, tile)| (idx, run(idx, tile)))
            .collect();
        stats.tiles = tiles.len() as u64;
        stats.busy_ns = start.elapsed().as_nanos() as u64;
        return (
            results,
            SchedStats {
                workers: vec![stats],
                panicked: 0,
            },
        );
    }

    // Contiguous initial chunks: worker w owns tiles [w*per + extra, ...),
    // with the first `rem` workers taking one extra tile.
    let n = tiles.len();
    let per = n / workers;
    let rem = n % workers;
    let mut deques: Vec<IntervalDeque> = Vec::with_capacity(workers);
    let mut cursor = 0usize;
    for w in 0..workers {
        let extra = usize::from(w < rem);
        let span = per.saturating_add(extra);
        let end = cursor.saturating_add(span);
        deques.push(IntervalDeque::new(cursor, end));
        cursor = end;
    }
    let deques = &deques;
    let run = &run;

    let mut merged: Vec<(usize, T)> = Vec::with_capacity(n);
    let mut stats = SchedStats::default();
    std::thread::scope(|scope| {
        let mut handles = Vec::with_capacity(workers);
        for me in 0..workers {
            handles.push(scope.spawn(move || {
                let mut out: Vec<(usize, T)> = Vec::new();
                let mut ws = WorkerStats::default();
                let my = match deques.get(me) {
                    Some(d) => d,
                    None => return (out, ws),
                };
                loop {
                    if let Some(idx) = my.pop_front() {
                        if let Some(tile) = tiles.get(idx) {
                            let start = Instant::now();
                            out.push((idx, run(idx, tile)));
                            ws.busy_ns =
                                ws.busy_ns.saturating_add(start.elapsed().as_nanos() as u64);
                            ws.tiles += 1;
                        }
                        continue;
                    }
                    // My deque is empty: scan siblings (starting past me,
                    // wrapping) for one to rob.
                    let mut stolen = false;
                    for step in 1..workers {
                        let victim_id = (me + step) % workers;
                        let victim = match deques.get(victim_id) {
                            Some(d) => d,
                            None => continue,
                        };
                        if let Some((start, end)) = victim.steal_half() {
                            my.install(start, end);
                            ws.steals += 1;
                            stolen = true;
                            break;
                        }
                    }
                    if !stolen {
                        return (out, ws);
                    }
                }
            }));
        }
        for handle in handles {
            match handle.join() {
                Ok((out, ws)) => {
                    merged.extend(out);
                    stats.workers.push(ws);
                }
                Err(_) => {
                    stats.panicked += 1;
                    stats.workers.push(WorkerStats::default());
                }
            }
        }
    });
    (merged, stats)
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::BTreeSet;

    #[test]
    fn triangle_tiles_cover_every_upper_pair_once() {
        for n in [0usize, 1, 2, 7, 8, 9, 33, 100] {
            for t in [1usize, 3, 8, 64] {
                let mut seen = BTreeSet::new();
                for tile in triangle_tiles(n, t) {
                    tile.for_each_upper(|i, j| {
                        assert!(i <= j && j < n);
                        assert!(seen.insert((i, j)), "pair ({i},{j}) seen twice");
                    });
                }
                assert_eq!(seen.len(), n * (n + 1) / 2, "n={n} t={t}");
            }
        }
    }

    #[test]
    fn rect_tiles_cover_every_pair_once() {
        for (rows, cols) in [(0usize, 5usize), (5, 0), (1, 1), (7, 13), (16, 16)] {
            let mut seen = BTreeSet::new();
            for tile in rect_tiles(rows, cols, 4) {
                tile.for_each(|i, j| {
                    assert!(i < rows && j < cols);
                    assert!(seen.insert((i, j)));
                });
            }
            assert_eq!(seen.len(), rows * cols);
        }
    }

    #[test]
    fn upper_len_matches_for_each_upper() {
        for tile in triangle_tiles(37, 8) {
            let mut count = 0usize;
            tile.for_each_upper(|_, _| count += 1);
            assert_eq!(count, tile.upper_len());
        }
    }

    #[test]
    fn run_tiles_executes_each_tile_exactly_once_any_worker_count() {
        let tiles = triangle_tiles(50, 8);
        for workers in [1usize, 2, 3, 4, 8, 16] {
            let (results, stats) = run_tiles(&tiles, workers, |idx, _| idx);
            assert_eq!(stats.panicked, 0);
            assert_eq!(stats.tiles(), tiles.len() as u64);
            let mut indices: Vec<usize> = results.iter().map(|&(idx, _)| idx).collect();
            indices.sort_unstable();
            let expected: Vec<usize> = (0..tiles.len()).collect();
            assert_eq!(indices, expected, "workers={workers}");
            for (idx, value) in results {
                assert_eq!(idx, value);
            }
        }
    }

    #[test]
    fn assembled_output_is_deterministic_across_worker_counts() {
        let n = 40;
        let tiles = triangle_tiles(n, 8);
        let score = |i: usize, j: usize| ((i * 31 + j * 17) % 101) as f64 / 101.0;
        let mut reference: Option<Vec<f64>> = None;
        for workers in [1usize, 2, 5, 8] {
            let (results, _) = run_tiles(&tiles, workers, |_, tile| {
                let mut vals = Vec::with_capacity(tile.upper_len());
                tile.for_each_upper(|i, j| vals.push(score(i, j)));
                vals
            });
            let mut matrix = vec![0.0f64; n * n];
            for (idx, vals) in results {
                let tile = tiles[idx];
                let mut it = vals.into_iter();
                tile.for_each_upper(|i, j| {
                    if let Some(v) = it.next() {
                        let up = i * n + j;
                        let low = j * n + i;
                        matrix[up] = v;
                        matrix[low] = v;
                    }
                });
            }
            match &reference {
                None => reference = Some(matrix),
                Some(expected) => {
                    let same = expected
                        .iter()
                        .zip(&matrix)
                        .all(|(a, b)| a.to_bits() == b.to_bits());
                    assert!(same, "matrix bits differ at workers={workers}");
                }
            }
        }
    }

    #[test]
    fn tile_size_scales_with_workers() {
        assert_eq!(tile_size(1000, 1), 64);
        assert!(tile_size(100, 8) <= 32);
        assert!(tile_size(10, 64) >= 8);
        for n in [0usize, 1, 5, 100, 5000] {
            for w in [1usize, 2, 8, 64] {
                let t = tile_size(n, w);
                assert!((8..=64).contains(&t));
            }
        }
    }

    #[test]
    fn interval_deque_steal_half_takes_ceiling_half() {
        let d = IntervalDeque::new(0, 10);
        assert_eq!(d.steal_half(), Some((5, 10)));
        assert_eq!(d.steal_half(), Some((2, 5)));
        assert_eq!(d.pop_front(), Some(0));
        assert_eq!(d.pop_front(), Some(1));
        assert_eq!(d.pop_front(), None);
        assert_eq!(d.steal_half(), None);
    }

    #[test]
    fn stats_report_imbalance_of_one_for_empty_runs() {
        let (results, stats) = run_tiles::<(), _>(&[], 4, |_, _| ());
        assert!(results.is_empty());
        assert_eq!(stats.tiles(), 0);
        assert!((stats.imbalance() - 1.0).abs() < 1e-12);
    }
}

//! Result visualization (paper §3, Fig. 5).
//!
//! The original toolkit wrote data files and scripts and shelled out to
//! Gnuplot. We preserve that pipeline — [`Chart::to_gnuplot`] emits a
//! runnable script plus its data file — and add a self-contained ASCII
//! renderer so experiments need no external binary.

/// One bar of a bar chart.
#[derive(Debug, Clone, PartialEq)]
pub struct Bar {
    pub label: String,
    pub value: f64,
}

/// A bar chart of similarity values.
#[derive(Debug, Clone, PartialEq)]
pub struct Chart {
    pub title: String,
    pub y_label: String,
    pub bars: Vec<Bar>,
}

/// The files the Gnuplot pipeline produces.
#[derive(Debug, Clone, PartialEq)]
pub struct GnuplotArtifacts {
    /// Contents for `<name>.gp` — run with `gnuplot <name>.gp`.
    pub script: String,
    /// Contents for `<name>.dat`, referenced by the script.
    pub data: String,
}

impl Chart {
    pub fn new(title: impl Into<String>, y_label: impl Into<String>) -> Self {
        Chart {
            title: title.into(),
            y_label: y_label.into(),
            bars: Vec::new(),
        }
    }

    pub fn push(&mut self, label: impl Into<String>, value: f64) {
        self.bars.push(Bar {
            label: label.into(),
            value,
        });
    }

    /// Renders the chart as horizontal ASCII bars. `width` is the maximum
    /// bar width in characters. Values are scaled to the largest magnitude
    /// (so unnormalized measures like Resnik still render sensibly).
    pub fn to_ascii(&self, width: usize) -> String {
        let mut out = format!("{}\n", self.title);
        if self.bars.is_empty() {
            out.push_str("  (no data)\n");
            return out;
        }
        let label_w = self.bars.iter().map(|b| b.label.len()).max().unwrap_or(0);
        let max = self
            .bars
            .iter()
            .map(|b| b.value.abs())
            .fold(0.0_f64, f64::max)
            .max(1e-12);
        for bar in &self.bars {
            let filled = ((bar.value.abs() / max) * width as f64).round() as usize;
            out.push_str(&format!(
                "  {:<label_w$} |{:<width$}| {:.4}\n",
                bar.label,
                "█".repeat(filled.min(width)),
                bar.value,
            ));
        }
        out.push_str(&format!("  ({})\n", self.y_label));
        out
    }

    /// Emits the Gnuplot script + data file pair for a bar chart, exactly
    /// the artifacts the Java toolkit handed to `gnuplot`.
    pub fn to_gnuplot(&self, basename: &str) -> GnuplotArtifacts {
        let mut data = String::new();
        for (i, bar) in self.bars.iter().enumerate() {
            data.push_str(&format!(
                "{}\t\"{}\"\t{}\n",
                i,
                bar.label.replace('"', "'"),
                bar.value
            ));
        }
        let script = format!(
            "set title \"{title}\"\n\
             set ylabel \"{ylabel}\"\n\
             set style fill solid 0.8\n\
             set boxwidth 0.7\n\
             set xtics rotate by -45\n\
             set yrange [0:*]\n\
             set terminal png size 900,520\n\
             set output \"{basename}.png\"\n\
             plot \"{basename}.dat\" using 1:3:xtic(2) with boxes notitle\n",
            title = self.title.replace('"', "'"),
            ylabel = self.y_label.replace('"', "'"),
        );
        GnuplotArtifacts { script, data }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> Chart {
        let mut c = Chart::new("Ten most similar", "similarity");
        c.push("Professor", 1.0);
        c.push("AssistantProfessor", 0.32);
        c.push("Human", 0.02);
        c
    }

    #[test]
    fn ascii_bars_scale_to_max() {
        let text = sample().to_ascii(40);
        let lines: Vec<&str> = text.lines().collect();
        assert!(lines[1].contains("Professor"));
        // Largest value fills the width; small one nearly empty.
        let full = lines[1].matches('█').count();
        let tiny = lines[3].matches('█').count();
        assert_eq!(full, 40);
        assert!(tiny <= 2);
        assert!(text.contains("1.0000"));
    }

    #[test]
    fn ascii_handles_empty_and_unnormalized() {
        let empty = Chart::new("t", "y");
        assert!(empty.to_ascii(10).contains("no data"));
        let mut resnik = Chart::new("resnik", "bits");
        resnik.push("self", 12.7);
        resnik.push("other", 3.1);
        let text = resnik.to_ascii(20);
        assert!(text.contains("12.7000"));
    }

    #[test]
    fn gnuplot_script_references_data() {
        let art = sample().to_gnuplot("figure5");
        assert!(art.script.contains("plot \"figure5.dat\""));
        assert!(art.script.contains("set output \"figure5.png\""));
        assert_eq!(art.data.lines().count(), 3);
        assert!(art.data.contains("\"AssistantProfessor\"\t0.32"));
    }

    #[test]
    fn quotes_are_sanitized() {
        let mut c = Chart::new("a \"quoted\" title", "y");
        c.push("la\"bel", 1.0);
        let art = c.to_gnuplot("x");
        assert!(!art.script.contains("a \"quoted\""));
        assert!(!art.data.contains("la\"bel"));
    }
}

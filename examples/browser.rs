//! The SOQA-SimPack Toolkit Browser (paper §4, Fig. 6), as a text-mode
//! application: inspect ontologies independent of their language, run
//! SOQA-QL queries, and drive every SST similarity service from the
//! "Similarity Tab".
//!
//! Run with:
//! ```text
//! cargo run -p sst-examples --bin browser -- --demo      # scripted tour (Fig. 6)
//! cargo run -p sst-examples --bin browser                # interactive shell
//! ```

use std::io::{self, BufRead, Write};

use sst_bench::{load_corpus, names};
use sst_core::{ConceptRef, ConceptSet, SstToolkit, TreeMode};

const HELP: &str = "\
commands:
  ontologies                         list registered ontologies
  tree <ontology>                    show the concept hierarchy pane
  meta <ontology>                    show the metadata pane
  stats <ontology>                   show the structural statistics pane
  stats                              show toolkit metrics (calls, latency, cache)
  concept <ontology> <name>          show the concept detail pane
  measures                           list similarity measures
  sim <o1> <c1> <o2> <c2> <measure>  similarity of two concepts
  top <k> <ontology> <concept> <measure>      k most similar (Similarity Tab)
  bottom <k> <ontology> <concept> <measure>   k most dissimilar
  query <SOQA-QL>                    run a SOQA-QL query
  help                               this text
  quit                               leave the browser
";

fn run_command(sst: &SstToolkit, line: &str) -> String {
    let mut parts = line.split_whitespace();
    let Some(cmd) = parts.next() else {
        return String::new();
    };
    let args: Vec<&str> = parts.collect();
    let result = match (cmd, args.as_slice()) {
        ("ontologies", []) => Ok(sst
            .soqa()
            .ontology_names()
            .iter()
            .map(|n| {
                let o = sst.soqa().ontology(n).unwrap();
                format!(
                    "{n} [{}] — {} concepts",
                    o.metadata.language,
                    o.concept_count()
                )
            })
            .collect::<Vec<_>>()
            .join("\n")),
        ("tree", [ontology]) => sst
            .render_ontology_tree(ontology)
            .map_err(|e| e.to_string()),
        ("meta", [ontology]) => sst.render_metadata(ontology).map_err(|e| e.to_string()),
        ("stats", [ontology]) => sst
            .soqa()
            .ontology(ontology)
            .map(|o| sst_soqa::ontology_stats(o).render())
            .map_err(|e| e.to_string()),
        // Bare `stats`: the observability pane — everything the toolkit's
        // metrics registry has recorded this session.
        ("stats", []) => Ok(sst.metrics().render_text()),
        ("concept", [ontology, name]) => sst
            .render_concept(name, ontology)
            .map_err(|e| e.to_string()),
        ("measures", []) => Ok(sst
            .measures()
            .iter()
            .enumerate()
            .map(|(i, info)| {
                format!(
                    "{i:>2}  {:<16} {:<22} [{}]{}",
                    info.name,
                    info.display,
                    info.kind,
                    if info.normalized {
                        ""
                    } else {
                        "  (unnormalized)"
                    }
                )
            })
            .collect::<Vec<_>>()
            .join("\n")),
        ("sim", [o1, c1, o2, c2, measure]) => sst
            .measure_id(measure)
            .and_then(|mid| sst.get_similarity(c1, o1, c2, o2, mid))
            .map(|v| format!("sim({o1}:{c1}, {o2}:{c2}) = {v:.4}"))
            .map_err(|e| e.to_string()),
        ("top", [k, ontology, concept, measure]) | ("bottom", [k, ontology, concept, measure]) => {
            (|| {
                let k: usize = k.parse().map_err(|_| "k must be a number".to_owned())?;
                let mid = sst.measure_id(measure).map_err(|e| e.to_string())?;
                let rows = if cmd == "top" {
                    sst.most_similar(concept, ontology, &ConceptSet::All, k, mid)
                } else {
                    sst.most_dissimilar(concept, ontology, &ConceptSet::All, k, mid)
                }
                .map_err(|e| e.to_string())?;
                Ok(rows
                    .iter()
                    .map(|r| {
                        format!(
                            "  {:<44} {:.4}",
                            format!("{}:{}", r.ontology, r.concept),
                            r.similarity
                        )
                    })
                    .collect::<Vec<_>>()
                    .join("\n"))
            })()
        }
        ("query", _) if !args.is_empty() => {
            let q = line.trim_start_matches("query").trim();
            sst.query(q)
                .map(|t| t.to_ascii())
                .map_err(|e| e.to_string())
        }
        ("help", _) => Ok(HELP.to_owned()),
        _ => Err(format!("unknown command `{line}` — try `help`")),
    };
    match result {
        Ok(text) => text,
        Err(e) => format!("error: {e}"),
    }
}

/// The scripted tour reproducing Figure 6: survey the ontologies, then use
/// the Similarity Tab to compute the k most similar concepts for
/// `univ-bench_owl:Person` under TFIDF.
fn demo(sst: &SstToolkit) {
    let script = [
        "ontologies".to_owned(),
        format!("meta {}", names::COURSES),
        format!("stats {}", names::SUMO),
        format!("concept {} Professor", names::DAML_UNIV),
        "measures".to_owned(),
        format!("top 10 {} Person tfidf", names::UNIV_BENCH),
        format!(
            "query SELECT name, depth FROM concepts OF '{}' WHERE name LIKE 'P%' ORDER BY depth",
            names::UNIV_BENCH
        ),
        // Close the tour with the observability pane: every service above
        // has left call counts and latency histograms in the registry.
        "stats".to_owned(),
    ];
    for cmd in script {
        println!("sst-browser> {cmd}");
        println!("{}\n", run_command(sst, &cmd));
    }
    // Fig. 6's result table is the `top` output above.
    let chart = sst
        .most_similar_plot(
            "Person",
            names::UNIV_BENCH,
            &ConceptSet::Subtree(ConceptRef::new("Thing", names::UNIV_BENCH)),
            5,
            sst.measure_id("tfidf").unwrap(),
        )
        .expect("plot");
    println!("{}", chart.to_ascii(44));
}

fn main() {
    let sst = load_corpus(TreeMode::SuperThing, true);
    if std::env::args().any(|a| a == "--demo") {
        demo(&sst);
        return;
    }
    println!(
        "SOQA-SimPack Toolkit Browser — {} ontologies, {} concepts. Type `help`.",
        sst.soqa().ontology_count(),
        sst.soqa().total_concept_count()
    );
    let stdin = io::stdin();
    loop {
        print!("sst-browser> ");
        io::stdout().flush().ok();
        let mut line = String::new();
        if stdin.lock().read_line(&mut line).unwrap_or(0) == 0 {
            break;
        }
        let line = line.trim();
        if line == "quit" || line == "exit" {
            break;
        }
        if !line.is_empty() {
            println!("{}", run_command(&sst, line));
        }
    }
}

//! Quickstart: load two ontologies written in *different* ontology
//! languages, compute similarities between their concepts under several
//! measures, and render a comparison chart — the toolkit's elevator pitch.
//!
//! Run with: `cargo run -p sst-examples --bin quickstart`

use sst_core::{measure_ids as m, ConceptSet, SstBuilder};
use sst_wrappers::{parse_owl, parse_powerloom};

const UNIVERSITY_OWL: &str = r##"<?xml version="1.0"?>
<rdf:RDF xmlns:rdf="http://www.w3.org/1999/02/22-rdf-syntax-ns#"
         xmlns:rdfs="http://www.w3.org/2000/01/rdf-schema#"
         xmlns:owl="http://www.w3.org/2002/07/owl#"
         xml:base="http://example.org/university">
  <owl:Class rdf:ID="Person">
    <rdfs:comment>Any human being at the university.</rdfs:comment>
  </owl:Class>
  <owl:Class rdf:ID="Student">
    <rdfs:comment>A person enrolled for study.</rdfs:comment>
    <rdfs:subClassOf rdf:resource="#Person"/>
  </owl:Class>
  <owl:Class rdf:ID="Professor">
    <rdfs:comment>A person who teaches courses and conducts research.</rdfs:comment>
    <rdfs:subClassOf rdf:resource="#Person"/>
  </owl:Class>
  <owl:DatatypeProperty rdf:ID="name">
    <rdfs:domain rdf:resource="#Person"/>
    <rdfs:range rdf:resource="http://www.w3.org/2001/XMLSchema#string"/>
  </owl:DatatypeProperty>
</rdf:RDF>"##;

const COURSES_PLOOM: &str = r#"
(defmodule "MINI-COURSES" :documentation "A minimal course ontology.")
(in-module "MINI-COURSES")
(defconcept PERSON :documentation "A human being in course administration.")
(defconcept STUDENT (?s PERSON) :documentation "A person attending courses for study.")
(defconcept LECTURER (?l PERSON) :documentation "A person who teaches and lectures courses.")
(defrelation full-name ((?p PERSON) (?n STRING)))
"#;

fn main() {
    // 1. Parse each source with its language wrapper — this is all the
    //    language-specific code you will ever see.
    let owl = parse_owl(
        UNIVERSITY_OWL,
        "university_owl",
        "http://example.org/university",
    )
    .expect("parse OWL");
    let ploom = parse_powerloom(COURSES_PLOOM, "MINI-COURSES").expect("parse PowerLoom");

    // 2. Build the toolkit: one unified tree under Super Thing.
    let sst = SstBuilder::new()
        .register_ontology(owl)
        .expect("register OWL ontology")
        .register_ontology(ploom)
        .expect("register PowerLoom ontology")
        .build();

    println!("Registered ontologies: {:?}", sst.soqa().ontology_names());
    println!("Available measures:    {}\n", sst.measure_count());

    // 3. (S1) Pairwise similarity — across ontology languages.
    for measure in [
        m::CONCEPTUAL_SIMILARITY_MEASURE,
        m::SHORTEST_PATH_MEASURE,
        m::TFIDF_MEASURE,
        m::LEVENSHTEIN_MEASURE,
    ] {
        let info = sst.measure_info(measure).unwrap();
        let sim = sst
            .get_similarity(
                "Student",
                "university_owl",
                "STUDENT",
                "MINI-COURSES",
                measure,
            )
            .expect("similarity");
        println!(
            "sim(university_owl:Student, MINI-COURSES:STUDENT) [{:<22}] = {sim:.4}",
            info.display
        );
    }

    // 4. (S2) The most similar concepts anywhere for the OWL Professor.
    let ranked = sst
        .most_similar(
            "Professor",
            "university_owl",
            &ConceptSet::All,
            4,
            m::TFIDF_MEASURE,
        )
        .expect("most similar");
    println!("\nMost similar to university_owl:Professor (TFIDF):");
    for row in &ranked {
        println!(
            "  {:<28} {:.4}",
            format!("{}:{}", row.ontology, row.concept),
            row.similarity
        );
    }

    // 5. (S3) A chart comparing two concepts under several measures.
    let chart = sst
        .similarity_plot(
            "Professor",
            "university_owl",
            "LECTURER",
            "MINI-COURSES",
            &[
                m::CONCEPTUAL_SIMILARITY_MEASURE,
                m::SHORTEST_PATH_MEASURE,
                m::TFIDF_MEASURE,
            ],
        )
        .expect("plot");
    println!("\n{}", chart.to_ascii(40));
}

//! Cross-language ontology alignment: produce an alignment table between
//! two ontologies written in different languages (OWL vs PowerLoom vs
//! WordNet), the application area the paper's §3 highlights
//! ("Student from the PowerLoom Course Ontology can be compared with
//! Researcher from WordNet").
//!
//! For every concept of the source ontology the example proposes the best
//! counterpart in the target ontology, with an agreement check across two
//! measure families (structural + lexical) as a confidence signal.
//!
//! Run with: `cargo run -p sst-examples --bin cross_language_alignment`

use sst_bench::{load_corpus, names};
use sst_core::{measure_ids as m, ConceptRef, ConceptSet, SstToolkit, TreeMode};

fn best_match(
    sst: &SstToolkit,
    concept: &str,
    source: &str,
    target_set: &ConceptSet,
    measure: usize,
) -> Option<(String, f64)> {
    sst.most_similar(concept, source, target_set, 1, measure)
        .ok()?
        .into_iter()
        .next()
        .map(|r| (r.concept, r.similarity))
}

fn main() {
    let sst = load_corpus(TreeMode::SuperThing, true);
    let source = names::COURSES; // PowerLoom
    let target = names::WORDNET; // WordNet lexical ontology

    // The target set: all concepts under the WordNet root.
    let target_root = sst
        .soqa()
        .ontology(target)
        .expect("wordnet registered")
        .roots()[0];
    let root_name = sst
        .soqa()
        .ontology(target)
        .unwrap()
        .concept(target_root)
        .name
        .clone();
    let target_set = ConceptSet::Subtree(ConceptRef::new(root_name, target));

    println!("Alignment proposal: {source} (PowerLoom) → {target} (WordNet)\n");
    println!(
        "{:<22} {:<26} {:<9} {:<26} {:<9} agree?",
        "source concept", "lexical best (TFIDF)", "score", "structural best (W&P)", "score",
    );
    println!("{}", "-".repeat(105));

    let source_concepts: Vec<String> = {
        let o = sst.soqa().ontology(source).expect("courses registered");
        o.concept_ids()
            .map(|id| o.concept(id).name.clone())
            .collect()
    };
    let mut agreements = 0usize;
    let mut total = 0usize;
    for concept in &source_concepts {
        let lexical = best_match(&sst, concept, source, &target_set, m::TFIDF_MEASURE);
        let structural = best_match(
            &sst,
            concept,
            source,
            &target_set,
            m::CONCEPTUAL_SIMILARITY_MEASURE,
        );
        if let (Some((lex, ls)), Some((stru, ss))) = (lexical, structural) {
            let agree = lex == stru;
            total += 1;
            if agree {
                agreements += 1;
            }
            println!(
                "{concept:<22} {lex:<26} {ls:<9.4} {stru:<26} {ss:<9.4} {}",
                if agree { "yes" } else { "" }
            );
        }
    }
    println!(
        "\n{agreements}/{total} concepts get the same proposal from both measure families;\n\
         agreement across families is the usual confidence heuristic in alignment pipelines."
    );

    // And the paper's concrete example pair:
    let sim = sst
        .get_similarity(
            "STUDENT",
            source,
            "researcher",
            target,
            m::SHORTEST_PATH_MEASURE,
        )
        .expect("student vs researcher");
    println!(
        "\nPaper §3 example — sim(COURSES:STUDENT, wordnet:researcher) under Shortest Path: {sim:.4}"
    );
}

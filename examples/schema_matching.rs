//! The paper's §1 motivating scenario: a developer of an integrated
//! university information system has database schema elements linked to
//! concepts of five different ontologies (OWL, DAML, PowerLoom) and needs
//! to find semantically related elements among the 943 concepts.
//!
//! This example takes a handful of "schema elements" (column names linked
//! to ontology concepts), and for each one ranks candidate matches from
//! the *other* ontologies, combining a structural and a text measure.
//!
//! Run with: `cargo run -p sst-examples --bin schema_matching`
//! (run `cargo run -p sst-bench --bin gen_ontologies` once beforehand)

use sst_bench::{load_corpus, names};
use sst_core::{measure_ids as m, ConceptSet, SstToolkit, TreeMode};

/// A schema element and the ontology concept it is linked to.
struct SchemaElement {
    table: &'static str,
    column: &'static str,
    concept: &'static str,
    ontology: &'static str,
}

const SCHEMA: &[SchemaElement] = &[
    SchemaElement {
        table: "staff",
        column: "prof_id",
        concept: "Professor",
        ontology: names::DAML_UNIV,
    },
    SchemaElement {
        table: "enrollment",
        column: "student_nr",
        concept: "STUDENT",
        ontology: names::COURSES,
    },
    SchemaElement {
        table: "payroll",
        column: "employee_id",
        concept: "Employee",
        ontology: names::SWRC,
    },
    SchemaElement {
        table: "catalog",
        column: "course_code",
        concept: "Course",
        ontology: names::UNIV_BENCH,
    },
];

/// Combined score: the average of Wu-Palmer (structure) and TFIDF (text) —
/// an example of the "combined measures" the paper leaves as future work,
/// built with nothing but the public API.
fn combined_candidates(
    sst: &SstToolkit,
    concept: &str,
    ontology: &str,
    k: usize,
) -> Vec<(String, f64)> {
    let structural = sst
        .similarity_to_set(
            concept,
            ontology,
            &ConceptSet::All,
            m::CONCEPTUAL_SIMILARITY_MEASURE,
        )
        .expect("structural scores");
    let textual = sst
        .similarity_to_set(concept, ontology, &ConceptSet::All, m::TFIDF_MEASURE)
        .expect("textual scores");
    let mut combined: Vec<(String, f64)> = structural
        .iter()
        .zip(&textual)
        .filter(|(s, _)| s.ontology != ontology) // only matches from *other* ontologies
        .map(|(s, t)| {
            (
                format!("{}:{}", s.ontology, s.concept),
                (s.similarity + t.similarity) / 2.0,
            )
        })
        .collect();
    combined.sort_by(|a, b| b.1.partial_cmp(&a.1).unwrap().then(a.0.cmp(&b.0)));
    combined.truncate(k);
    combined
}

fn main() {
    let sst = load_corpus(TreeMode::SuperThing, false);
    println!(
        "Loaded {} ontologies / {} concepts — the paper's integration scenario.\n",
        sst.soqa().ontology_count(),
        sst.soqa().total_concept_count()
    );

    for element in SCHEMA {
        println!(
            "schema element {}.{}  (linked to {}:{})",
            element.table, element.column, element.ontology, element.concept
        );
        for (name, score) in combined_candidates(&sst, element.concept, element.ontology, 5) {
            println!("    candidate match {:<42} score {score:.4}", name);
        }
        println!();
    }

    println!("Scores combine Wu-Palmer (structure) and TFIDF (text) — an example of");
    println!("the combined measures the paper describes as an SST extension point.");
}

//! Cross-language ontology converter: read any supported ontology file
//! (OWL, DAML, PowerLoom, WordNet) through its SOQA wrapper and write it
//! back as OWL — in RDF/XML, Turtle, or N-Triples. The "semantics-aware
//! universal data management" utility built from the workspace's pieces.
//!
//! Run with:
//! ```text
//! cargo run -p sst-examples --bin convert -- data/ontologies/course.ploom
//! cargo run -p sst-examples --bin convert -- data/ontologies/univ1.0.daml --format turtle
//! cargo run -p sst-examples --bin convert -- data/wordnet/data.noun --format ntriples -o /tmp/wn.nt
//! ```

use std::path::PathBuf;

use sst_soqa::{ontology_stats, ontology_to_graph};
use sst_wrappers::WrapperRegistry;

fn usage() -> ! {
    eprintln!(
        "usage: convert <ontology-file> [--format rdfxml|turtle|ntriples] [-o <output-file>]"
    );
    std::process::exit(2);
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    if args.is_empty() {
        usage();
    }
    let input = PathBuf::from(&args[0]);
    let mut format = "rdfxml".to_owned();
    let mut output: Option<PathBuf> = None;
    let mut i = 1;
    while i < args.len() {
        match args[i].as_str() {
            "--format" if i + 1 < args.len() => {
                format = args[i + 1].clone();
                i += 2;
            }
            "-o" if i + 1 < args.len() => {
                output = Some(PathBuf::from(&args[i + 1]));
                i += 2;
            }
            _ => usage(),
        }
    }

    let registry = WrapperRegistry::new();
    let base = format!(
        "http://example.org/converted/{}",
        input
            .file_stem()
            .and_then(|s| s.to_str())
            .unwrap_or("ontology")
    );
    let ontology = match registry.load_file(&input, None, &base) {
        Ok(o) => o,
        Err(e) => {
            eprintln!("error: {e}");
            std::process::exit(1);
        }
    };
    eprintln!(
        "read {} [{}]: {} concepts, {} attributes, {} relationships, {} instances",
        ontology.name(),
        ontology.metadata.language,
        ontology.concept_count(),
        ontology.attributes().len(),
        ontology.relationships().len(),
        ontology.instances().len()
    );
    eprintln!("{}", ontology_stats(&ontology).render());

    let graph = ontology_to_graph(&ontology, &base);
    let text = match format.as_str() {
        "rdfxml" | "owl" | "xml" => sst_rdf::write_rdfxml(&graph),
        "turtle" | "ttl" => sst_rdf::write_turtle(&graph),
        "ntriples" | "nt" => sst_rdf::write_ntriples(&graph),
        other => {
            eprintln!("unknown format `{other}`");
            std::process::exit(2);
        }
    };
    match output {
        Some(path) => {
            std::fs::write(&path, text).expect("write output");
            eprintln!("wrote {} ({} triples)", path.display(), graph.len());
        }
        None => print!("{text}"),
    }
}

//! k-most-similar / k-most-dissimilar from the command line, over any of
//! the corpus ontologies and any registered measure — a thin CLI over the
//! paper's (S2) service, including chart output.
//!
//! Run with:
//! ```text
//! cargo run -p sst-examples --bin kmost -- base1_0_daml Professor
//! cargo run -p sst-examples --bin kmost -- univ-bench_owl Person --measure lin -k 5
//! cargo run -p sst-examples --bin kmost -- COURSES STUDENT --dissimilar --chart
//! ```

use sst_bench::load_corpus;
use sst_core::{ConceptSet, TreeMode};

fn usage() -> ! {
    eprintln!(
        "usage: kmost <ontology> <concept> [--measure <name>] [-k <n>] [--dissimilar] [--chart]"
    );
    std::process::exit(2);
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    if args.len() < 2 {
        usage();
    }
    let ontology = &args[0];
    let concept = &args[1];
    let mut measure_name = "tfidf".to_owned();
    let mut k = 10usize;
    let mut dissimilar = false;
    let mut chart_output = false;
    let mut i = 2;
    while i < args.len() {
        match args[i].as_str() {
            "--measure" if i + 1 < args.len() => {
                measure_name = args[i + 1].clone();
                i += 2;
            }
            "-k" if i + 1 < args.len() => {
                k = args[i + 1].parse().unwrap_or_else(|_| usage());
                i += 2;
            }
            "--dissimilar" => {
                dissimilar = true;
                i += 1;
            }
            "--chart" => {
                chart_output = true;
                i += 1;
            }
            _ => usage(),
        }
    }

    let sst = load_corpus(TreeMode::SuperThing, true);
    let measure = match sst.measure_id(&measure_name) {
        Ok(id) => id,
        Err(_) => {
            eprintln!(
                "unknown measure `{measure_name}`; available: {}",
                sst.measures()
                    .iter()
                    .map(|info| info.name.clone())
                    .collect::<Vec<_>>()
                    .join(", ")
            );
            std::process::exit(2);
        }
    };

    let result = if dissimilar {
        sst.most_dissimilar(concept, ontology, &ConceptSet::All, k, measure)
    } else {
        sst.most_similar(concept, ontology, &ConceptSet::All, k, measure)
    };
    let rows = match result {
        Ok(rows) => rows,
        Err(e) => {
            eprintln!("error: {e}");
            std::process::exit(1);
        }
    };

    if chart_output {
        let chart = sst
            .most_similar_plot(concept, ontology, &ConceptSet::All, k, measure)
            .expect("chart");
        println!("{}", chart.to_ascii(48));
    } else {
        let direction = if dissimilar { "dissimilar" } else { "similar" };
        println!("The {k} most {direction} concepts for {ontology}:{concept} ({measure_name}):");
        for row in rows {
            println!(
                "  {:<46} {:.4}",
                format!("{}:{}", row.ontology, row.concept),
                row.similarity
            );
        }
    }
}

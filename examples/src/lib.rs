//! Shared helpers for the SST examples (corpus loading lives in
//! `sst-bench::corpus`; this crate only hosts the example binaries).

#![forbid(unsafe_code)]

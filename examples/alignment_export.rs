//! Ontology alignment end to end: align two of the corpus ontologies with
//! a combined measure, print the proposal, and export it as CSV and JSON —
//! the "ontology alignment and integration" application area from the
//! paper's introduction, built entirely on the public API.
//!
//! Run with:
//! ```text
//! cargo run -p sst-examples --bin alignment_export -- [source] [target] [threshold]
//! cargo run -p sst-examples --bin alignment_export -- univ-bench_owl swrc_owl 0.3
//! ```

use sst_bench::{data_dir, load_corpus, names};
use sst_core::{
    align, alignment_to_csv, alignment_to_json, measure_ids as m, AlignmentConfig, TreeMode,
};
use sst_simpack::Amalgamation;

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let source = args.first().map(String::as_str).unwrap_or(names::DAML_UNIV);
    let target = args.get(1).map(String::as_str).unwrap_or(names::UNIV_BENCH);
    let threshold: f64 = args
        .get(2)
        .map(|t| t.parse().expect("threshold"))
        .unwrap_or(0.3);

    let sst = load_corpus(TreeMode::SuperThing, false);
    let config = AlignmentConfig {
        measures: vec![m::CONCEPTUAL_SIMILARITY_MEASURE, m::TFIDF_MEASURE],
        strategy: Amalgamation::WeightedAverage,
        threshold,
        ..AlignmentConfig::default()
    };
    let proposal = align(&sst, source, target, &config).expect("alignment");

    println!(
        "Alignment {source} → {target}  (Wu-Palmer + TFIDF, threshold {threshold}, {} matching):\n",
        config.mode.name()
    );
    for c in &proposal {
        println!(
            "  {:<28} ≈ {:<28} {:.4}",
            c.source_concept, c.target_concept, c.similarity
        );
    }
    println!("\n{} correspondences proposed.", proposal.len());

    let results = data_dir().join("../results");
    std::fs::create_dir_all(&results).expect("results dir");
    std::fs::write(results.join("alignment.csv"), alignment_to_csv(&proposal)).expect("write csv");
    std::fs::write(results.join("alignment.json"), alignment_to_json(&proposal))
        .expect("write json");
    println!("(exported to results/alignment.csv and results/alignment.json)");
}

//! Concept clustering over the five-ontology corpus — the "data clustering
//! and mining" application from the paper's introduction. Clusters the
//! person-related concepts of all ontologies by a combined similarity and
//! prints the dendrogram plus flat clusters at a threshold.
//!
//! Run with:
//! ```text
//! cargo run -p sst-examples --bin clustering [-- <measure> <threshold>]
//! cargo run -p sst-examples --bin clustering -- tfidf 0.35
//! ```

use sst_bench::{load_corpus, names};
use sst_core::{cluster, ConceptRef, ConceptSet, Linkage, TreeMode};

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let measure_name = args.first().map(String::as_str).unwrap_or("tfidf");
    let threshold: f64 = args
        .get(1)
        .map(|t| t.parse().expect("threshold"))
        .unwrap_or(0.3);

    let sst = load_corpus(TreeMode::SuperThing, false);
    let measure = sst.measure_id(measure_name).expect("measure");

    // Person-ish concepts from several ontologies.
    let set = ConceptSet::List(
        [
            ("Person", names::UNIV_BENCH),
            ("Student", names::UNIV_BENCH),
            ("Professor", names::UNIV_BENCH),
            ("Course", names::UNIV_BENCH),
            ("Person", names::DAML_UNIV),
            ("Student", names::DAML_UNIV),
            ("Professor", names::DAML_UNIV),
            ("Course", names::DAML_UNIV),
            ("PERSON", names::COURSES),
            ("STUDENT", names::COURSES),
            ("PROFESSOR", names::COURSES),
            ("COURSE", names::COURSES),
            ("Person", names::SWRC),
            ("Student", names::SWRC),
        ]
        .iter()
        .map(|&(c, o)| ConceptRef::new(c, o))
        .collect(),
    );

    let tree = cluster(&sst, &set, measure, Linkage::Average).expect("clustering");
    println!(
        "Agglomerative clustering (average link, {measure_name}) of 14 concepts from 4 ontologies:\n"
    );
    println!("{}", tree.render());

    println!("Flat clusters at similarity ≥ {threshold}:");
    for (i, cluster) in tree.cut(threshold).iter().enumerate() {
        println!("  cluster {}: {}", i + 1, cluster.join(", "));
    }

    // Heatmap view of the same matrix (future-work visualization).
    let heatmap = sst.similarity_heatmap(&set, measure).expect("heatmap");
    println!("\n{}", heatmap.to_ascii());
}

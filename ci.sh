#!/bin/sh
# Repo CI gate: fmt-check, static-analysis lint, clippy -D warnings,
# release build, tests. Thin wrapper over `cargo xtask ci` so local runs
# and automation share one definition of "green".
set -eu
cd "$(dirname "$0")"
exec cargo xtask ci

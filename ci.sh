#!/bin/sh
# Repo CI gate: fmt-check, static-analysis lint, clippy -D warnings,
# release build, tests. Thin wrapper over `cargo xtask ci` so local runs
# and automation share one definition of "green", plus the batch-engine
# smoke gate (prepared-context matrices must stay bit-identical to the
# naive path on every measure), the fault-injection smoke gate (no
# corrupted or hostile input may panic, overflow the stack, or blow past
# the resource limits in any parser), the server smoke gate (the
# query service answers every concurrent request 200/429, sheds instead
# of queueing unboundedly, and drains cleanly on shutdown), and the ANN
# smoke gate (exact vector-store rankings bit-identical to the naive
# scan, approximate recall@10 at least 0.95; writes
# results/BENCH_ann.json), and the alignment smoke gate (blocked
# candidate generation never materializes n*m and leaves no source
# without candidates, stable-matching F1 at least greedy F1 at every
# blocking width and strictly better on average, stable precision above
# its floor; writes results/BENCH_align.json), and the snapshot smoke
# gate (SSTSNAP1 round trip bit-identical on every measure and faster
# than a cold parse; the full run writes results/BENCH_snapshot.json).
set -eu
cd "$(dirname "$0")"
# Archive the machine-readable findings document first (written even
# when the gate is red — the artifact is the diagnosis); the lint exits
# nonzero on any non-audited finding and prints per-rule counts.
mkdir -p results
cargo xtask lint --json > results/LINT.json
cargo xtask ci
cargo run --release -p sst-bench --bin matrix_bench -- --smoke
cargo run --release -p sst-bench --bin fault_smoke -- --smoke
cargo run --release -p sst-bench --bin server_smoke -- --smoke
cargo run --release -p sst-bench --bin ann_bench -- --smoke
cargo run --release -p sst-bench --bin align_bench -- --smoke
cargo run --release -p sst-bench --bin snapshot_bench -- --smoke
# The archived full-run matrix benchmark must agree with the smoke gate:
# every measure row records an honest bit_identical flag, and a stale or
# regressed archive with any false flag fails the build.
if [ -f results/BENCH_matrix.json ] && grep -q '"bit_identical":false' results/BENCH_matrix.json; then
    echo "ci.sh: results/BENCH_matrix.json records a bit_identical:false measure" >&2
    exit 1
fi
# Likewise the archived snapshot benchmark: a round trip that is not
# bit-identical must fail the build, stale archive or not.
if [ -f results/BENCH_snapshot.json ] && grep -q '"identity": false' results/BENCH_snapshot.json; then
    echo "ci.sh: results/BENCH_snapshot.json records identity: false" >&2
    exit 1
fi

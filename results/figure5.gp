set title "The 10 most similar concepts for base1_0_daml:Professor (TFIDF)"
set ylabel "similarity"
set style fill solid 0.8
set boxwidth 0.7
set xtics rotate by -45
set yrange [0:*]
set terminal png size 900,520
set output "figure5.png"
plot "figure5.dat" using 1:3:xtic(2) with boxes notitle
